"""Ablation — incremental ε-Link maintenance vs re-clustering from scratch.

Quantifies what :class:`repro.core.incremental.IncrementalEpsLink` buys: the
amortised cost of inserting one object into a live clustering of a full OL
workload, against re-running ε-Link over everything per update.  Insertion
is a single localized range query, so the gap widens with workload size.
"""

from __future__ import annotations

import random

import pytest

from repro.core.epslink import EpsLink
from repro.core.incremental import IncrementalEpsLink

from benchmarks._workloads import get_workload

K = 10
UPDATES = 50


def _live_clustering(network, points, eps) -> IncrementalEpsLink:
    live = IncrementalEpsLink(network, eps=eps, min_sup=2)
    for p in points:
        live.insert(p.u, p.v, p.offset, point_id=p.point_id, label=p.label)
    return live


@pytest.mark.benchmark(group="ablation-incremental")
def bench_incremental_inserts(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)
    live = _live_clustering(network, points, eps)
    rng = random.Random(7)
    edges = list(network.edges())
    next_id = max(points.point_ids()) + 1

    def run():
        nonlocal next_id
        for _ in range(UPDATES):
            u, v, w = edges[rng.randrange(len(edges))]
            live.insert(u, v, rng.uniform(0.0, w), point_id=next_id)
            next_id += 1
        return live.num_clusters

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"updates": UPDATES, "points_after": len(live.points)}
    )


@pytest.mark.benchmark(group="ablation-incremental")
def bench_recluster_per_insert(benchmark):
    """The naive alternative: one full ε-Link run per insertion (measured
    for a handful of updates and normalised in extra_info)."""
    from repro.network.points import PointSet

    network, cached_points, spec, eps = get_workload("OL", k=K)
    # Copy: the cached workload must not be mutated for other benchmarks.
    points = PointSet.from_points(network, list(cached_points))
    rng = random.Random(7)
    edges = list(network.edges())
    next_id = max(points.point_ids()) + 1
    reruns = 5  # a full recluster is far costlier than one insert

    def run():
        nonlocal next_id
        for _ in range(reruns):
            u, v, w = edges[rng.randrange(len(edges))]
            points.add(u, v, rng.uniform(0.0, w), point_id=next_id)
            next_id += 1
            EpsLink(network, points, eps=eps, min_sup=2).run()

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"updates": reruns})


def test_incremental_matches_recluster_on_full_workload():
    network, points, spec, eps = get_workload("OL", k=K)
    live = _live_clustering(network, points, eps)
    rng = random.Random(11)
    edges = list(network.edges())
    next_id = max(points.point_ids()) + 1
    for _ in range(10):
        u, v, w = edges[rng.randrange(len(edges))]
        live.insert(u, v, rng.uniform(0.0, w), point_id=next_id)
        next_id += 1
    scratch = EpsLink(network, live.points, eps=eps, min_sup=2).run()
    assert live.result().same_clustering(scratch)