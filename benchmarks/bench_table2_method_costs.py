"""Table 2 — execution cost of the four methods on NA / SF / TG / OL.

The paper's cost ordering on every network:

    k-medoids  >>  DBSCAN  >  Single-Link  ~  eps-Link

with k-medoids counting only the convergence to *one* local optimum, DBSCAN
run with MinPts = 2 and the same (cluster-recovering) eps as eps-Link, and
Single-Link computing the whole dendrogram with delta = 0.7 * eps.
"""

from __future__ import annotations

import pytest

from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.core.singlelink import SingleLink

from benchmarks._workloads import get_workload

K = 10
NETWORKS = ["NA", "SF", "TG", "OL"]


def _make(method: str, network, points, eps):
    if method == "k-medoids":
        return NetworkKMedoids(network, points, k=K, seed=0, max_bad_swaps=15)
    if method == "dbscan":
        return NetworkDBSCAN(network, points, eps=eps, min_pts=2)
    if method == "eps-link":
        return EpsLink(network, points, eps=eps, min_sup=2)
    if method == "single-link":
        return SingleLink(network, points, delta=0.7 * eps)
    raise ValueError(method)


@pytest.mark.benchmark(group="table2-method-costs")
@pytest.mark.parametrize("name", NETWORKS)
@pytest.mark.parametrize("method", ["k-medoids", "dbscan", "eps-link", "single-link"])
def bench_table2(benchmark, name, method):
    network, points, spec, eps = get_workload(name, k=K)

    def run():
        return _make(method, network, points, eps).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "network": name,
            "method": method,
            "nodes": network.num_nodes,
            "points": len(points),
            "clusters": result.num_clusters,
        }
    )


@pytest.mark.benchmark(group="table2-method-costs")
@pytest.mark.parametrize("name", NETWORKS)
def bench_table2_cost_ordering(benchmark, name):
    """One measured pass asserting the paper's per-network cost ordering."""
    import time

    network, points, spec, eps = get_workload(name, k=K)

    def run():
        timings = {}
        for method in ("k-medoids", "dbscan", "eps-link", "single-link"):
            start = time.perf_counter()
            _make(method, network, points, eps).run()
            timings[method] = time.perf_counter() - start
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {m: round(t, 4) for m, t in timings.items()} | {"network": name}
    )
    # The headline relationships of Table 2.
    assert timings["k-medoids"] > timings["eps-link"], "k-medoids must be slowest"
    assert timings["dbscan"] > timings["eps-link"], (
        "eps-link's systematic traversal must beat per-point range queries"
    )
