"""Ablation (Section 3.2) — the precomputed-distance-matrix strawman.

The paper argues that precomputing all pairwise distances "is high for
large graphs [and] this matrix could be prohibitively large to store".
This benchmark makes the argument concrete on the TG analogue: it times

* the O(N^2) point-distance matrix precomputation (plus its memory size),
* classic PAM-style k-medoids *on* the precomputed matrix,
* our network k-medoids and eps-Link, which need no precomputation,

showing the traversal algorithms beat even the precomputation step alone.
A reduced point count keeps the quadratic baseline affordable.
"""

from __future__ import annotations

import pytest

from repro.baselines.classic import matrix_kmedoids
from repro.baselines.matrix import DistanceMatrix
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids

from benchmarks._workloads import get_workload

K = 10
N_POINTS = 1200  # quadratic baseline: keep N modest


@pytest.mark.benchmark(group="ablation-matrix-baseline")
def bench_matrix_precomputation(benchmark):
    network, points, spec, eps = get_workload("TG", k=K, n_points=N_POINTS)

    def run():
        return DistanceMatrix.from_points(network, points)

    dm = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "points": len(points),
            "matrix_bytes": dm.nbytes(),
            "matrix_mb": round(dm.nbytes() / 2**20, 2),
        }
    )


@pytest.mark.benchmark(group="ablation-matrix-baseline")
def bench_matrix_kmedoids_after_precompute(benchmark):
    network, points, spec, eps = get_workload("TG", k=K, n_points=N_POINTS)
    dm = DistanceMatrix.from_points(network, points)

    def run():
        return matrix_kmedoids(dm, k=K, seed=0, max_bad_swaps=15)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["R"] = round(result.stats["R"], 2)


@pytest.mark.benchmark(group="ablation-matrix-baseline")
def bench_network_kmedoids_no_precompute(benchmark):
    network, points, spec, eps = get_workload("TG", k=K, n_points=N_POINTS)

    def run():
        return NetworkKMedoids(network, points, k=K, seed=0, max_bad_swaps=15).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["R"] = round(result.stats["R"], 2)


@pytest.mark.benchmark(group="ablation-matrix-baseline")
def bench_epslink_no_precompute(benchmark):
    network, points, spec, eps = get_workload("TG", k=K, n_points=N_POINTS)

    def run():
        return EpsLink(network, points, eps=eps, min_sup=2).run()

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_matrix_precompute_dominates_epslink():
    """The strawman's precomputation alone costs more than clustering with
    the traversal-based method end to end."""
    import time

    network, points, spec, eps = get_workload("TG", k=K, n_points=N_POINTS)
    start = time.perf_counter()
    DistanceMatrix.from_points(network, points)
    t_matrix = time.perf_counter() - start
    start = time.perf_counter()
    EpsLink(network, points, eps=eps, min_sup=2).run()
    t_epslink = time.perf_counter() - start
    assert t_matrix > 3 * t_epslink
