"""Figure 11 — clustering effectiveness on the OL workload.

The paper visualises the discovered structures; this benchmark quantifies
the same comparison with external indices (recorded in ``extra_info``):

(a) k-medoids with random initial medoids: splits/merges planted clusters
    and swallows outliers — ARI markedly below the density-based methods;
(b) k-medoids with the ideal initialisation (first point of each planted
    cluster) — better, yet still imperfect ("even in this case the
    algorithm cannot discover all clusters exactly");
(c) DBSCAN and ε-Link with eps = 1.5 * s_init * F, MinPts = 2: identical,
    correct clusters;
(d-f) Single-Link with the δ heuristic: far fewer initial clusters, and the
    cut at distance ε reproduces ε-Link exactly.
"""

from __future__ import annotations

import pytest

from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.core.singlelink import SingleLink
from repro.eval.metrics import adjusted_rand_index, normalized_mutual_information, purity

from benchmarks._workloads import get_workload, ground_truth, ideal_initial_medoids

K = 10


def quality(truth, result) -> dict:
    predicted = dict(result.assignment)
    return {
        "clusters": result.num_clusters,
        "outliers": len(result.outliers()),
        "ari": round(adjusted_rand_index(truth, predicted, noise="drop"), 4),
        "nmi": round(normalized_mutual_information(truth, predicted, noise="drop"), 4),
        "purity": round(purity(truth, predicted, noise="drop"), 4),
    }


@pytest.mark.benchmark(group="fig11-effectiveness")
def bench_fig11a_kmedoids_random_init(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)
    truth = ground_truth(points)

    def run():
        return NetworkKMedoids(network, points, k=K, seed=0).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(quality(truth, result))


@pytest.mark.benchmark(group="fig11-effectiveness")
def bench_fig11b_kmedoids_ideal_init(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)
    truth = ground_truth(points)
    init = ideal_initial_medoids(points, K)

    def run():
        return NetworkKMedoids(
            network, points, k=K, seed=0, initial_medoids=init
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(quality(truth, result))


@pytest.mark.benchmark(group="fig11-effectiveness")
def bench_fig11c_dbscan(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)
    truth = ground_truth(points)

    def run():
        return NetworkDBSCAN(network, points, eps=eps, min_pts=2).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(quality(truth, result))
    # The paper's claim: density-based methods recover the planted clusters.
    assert benchmark.extra_info["ari"] > 0.95


@pytest.mark.benchmark(group="fig11-effectiveness")
def bench_fig11c_epslink(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)
    truth = ground_truth(points)

    def run():
        return EpsLink(network, points, eps=eps, min_sup=2).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(quality(truth, result))
    assert benchmark.extra_info["ari"] > 0.95
    # "the results of the algorithms are identical" (DBSCAN, MinPts=2).
    dbscan = NetworkDBSCAN(network, points, eps=eps, min_pts=2).run()
    assert result.same_clustering(dbscan)


@pytest.mark.benchmark(group="fig11-effectiveness")
def bench_fig11def_single_link(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)
    truth = ground_truth(points)
    delta = spec.s_final  # the paper's Fig. 11d: small delta = s_init * F

    def run():
        sl = SingleLink(network, points, delta=delta)
        return sl, sl.build_dendrogram()

    sl, dendrogram = benchmark.pedantic(run, rounds=1, iterations=1)
    # (d) The delta heuristic shrinks the initial cluster count by ~10x.
    initial = sl.last_stats["initial_clusters"]
    benchmark.extra_info["initial_clusters"] = initial
    assert initial < len(points) / 5
    # (e) Cutting at eps reproduces eps-Link exactly (Section 5.1).
    cut = dendrogram.cut_distance(eps)
    linked = EpsLink(network, points, eps=eps).run()
    assert cut.as_partition() == linked.as_partition()
    benchmark.extra_info.update(quality(truth, cut))
