"""Figure 15 — merge distance of the last Single-Link merges & interesting
levels (Section 5.3).

The paper plots the merge distance of the last 49 cluster pairs popped
while Single-Link clusters the Oldenburg dataset and spots "three merge
instances where the distance difference between consecutive merges changes
significantly ... the first one has the sharpest distance change and occurs
when the merge distance has reached eps, i.e., when the original clusters
have been discovered".

This benchmark builds the dendrogram on the OL analogue, records the last
49 merge distances, runs the automatic interesting-level detector, and
asserts the paper's headline claims: at least one sharp level exists, and
the level at which the planted clusters are recovered sits near eps.
"""

from __future__ import annotations

import pytest

from repro.core.singlelink import SingleLink
from repro.eval.metrics import adjusted_rand_index

from benchmarks._workloads import get_workload, ground_truth

K = 10


@pytest.mark.benchmark(group="fig15-merge-distances")
def bench_fig15_merge_distance_series(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)

    def run():
        sl = SingleLink(network, points, delta=0.7 * eps)
        return sl.build_dendrogram()

    dendrogram = benchmark.pedantic(run, rounds=1, iterations=1)
    distances = dendrogram.merge_distances()
    last = distances[-49:]
    benchmark.extra_info["last_49_merge_distances"] = [round(d, 4) for d in last]

    levels = dendrogram.interesting_levels(window=10, factor=3.0)
    benchmark.extra_info["interesting_levels"] = levels
    assert levels, "the planted clusters must produce at least one sharp jump"

    # The paper: the sharpest change occurs when the merge distance reaches
    # eps.  Find the first flagged level whose distance exceeds eps and
    # check the clustering just before it recovers the planted clusters.
    truth = ground_truth(points)
    recovered = None
    for idx in levels:
        if distances[idx] > eps:
            recovered = dendrogram.clusters_before_merge(idx)
            break
    assert recovered is not None, "a flagged jump must cross eps"
    ari = adjusted_rand_index(truth, dict(recovered.assignment), noise="drop")
    benchmark.extra_info["ari_at_first_level"] = round(ari, 4)
    assert ari > 0.9, (
        "the first interesting level past eps must correspond to the "
        "planted clustering"
    )
