"""CSR traversal backend vs the dict-of-dicts oracle.

One measurement: batched single-source shortest-path trees over the SF
workload, dict backend vs :class:`repro.network.CSRNetwork`.  The CSR
backend's acceptance bar is a >= 3x wall-clock speedup while returning
*bit-identical* distance maps (values and settle order) — the same
"same bits, less work" contract as the perf layer.

The timing loop disables :mod:`repro.obs` around the traversals: the
suite-wide conftest enables it for the metrics sidecar, but an enabled
observer routes both backends onto their (python) counted twins, which
would measure instrumentation, not the array kernel.
"""

from __future__ import annotations

import random
import time

import pytest

from repro import obs
from repro.network.csr import CSRNetwork
from repro.network.dijkstra import single_source

from benchmarks._workloads import get_workload

K = 10
N_SOURCES = 60
SPEEDUP_BAR = 3.0


@pytest.mark.benchmark(group="csr-backend")
def bench_csr_single_source_speedup(benchmark):
    """Full shortest-path trees from sampled sources, dict vs CSR."""
    network, points, spec, eps = get_workload("SF", k=K)
    csr = CSRNetwork.freeze(network)
    rng = random.Random(23)
    sources = rng.sample(list(network.nodes()), N_SOURCES)

    def timed(net):
        t0 = time.perf_counter()
        trees = [single_source(net, s) for s in sources]
        return time.perf_counter() - t0, trees

    def run():
        obs.disable()  # measure the plain twins, not the counted ones
        try:
            dict_s, dict_trees = timed(network)
            csr_s, csr_trees = timed(csr)
        finally:
            # Hand the sidecar fixture a live observer back, keeping any
            # counters other fixtures accumulated (fresh=True would wipe).
            obs.enable(fresh=False)
        for a, b in zip(dict_trees, csr_trees):
            assert a == b and list(a) == list(b)  # bit-identical, in order
        return {"dict_s": dict_s, "csr_s": csr_s, "speedup": dict_s / csr_s}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "kernel_backend": csr.kernel_backend,
            "n_sources": N_SOURCES,
            "nodes": network.num_nodes,
            "edges": network.num_edges,
            "dict_s": round(result["dict_s"], 4),
            "csr_s": round(result["csr_s"], 4),
            "speedup": round(result["speedup"], 2),
        }
    )
    if csr.kernel_backend == "scipy":
        # The acceptance bar: the array kernel is at least 3x faster.
        assert result["speedup"] >= SPEEDUP_BAR
    else:
        # Python-loop fallback (no scipy in the environment): correctness
        # still holds above, but the speed bar does not apply.
        pytest.skip("scipy unavailable; CSR python fallback has no speed bar")
