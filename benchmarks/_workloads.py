"""Shared, cached workloads and metrics plumbing for the benchmark suite.

Benchmarks run the paper's experiments at reduced scale (pure Python is
orders of magnitude slower than the paper's 2002 C++ setup); every scale
choice is recorded here and in EXPERIMENTS.md.  Workloads are cached
per-process so parametrised benchmarks share the generation cost.

This module also owns the *metrics sidecar* plumbing: ``conftest.py``
enables :mod:`repro.obs` around every benchmark and collects one counter /
span snapshot per test, and :func:`sidecar_path` / the re-exported
``write_metrics_sidecar`` decide where that JSON lands so
``make_report.py`` can pick it up next to the ``--benchmark-json`` output.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.obs import write_metrics_sidecar  # noqa: F401  (re-export for conftest)
from repro.datagen import (
    ClusterSpec,
    generate_clustered_points,
    load_network,
    suggest_eps,
)
from repro.datagen.clusters import well_separated_seed_edges
from repro.eval.metrics import NOISE

# Scale factors per network analogue: chosen so each holds a few thousand
# nodes (the largest that keeps the full suite in minutes on a laptop).
BENCH_SCALES = {"NA": 1 / 48, "SF": 1 / 48, "TG": 1 / 8, "OL": 1 / 2}
# The paper populates each network with roughly 3x its node count.
POINTS_PER_NODE = 3.0

_cache: dict = {}


def get_workload(name: str, k: int = 10, n_points: int | None = None, seed: int = 0):
    """(network, points, spec, eps) for a named paper-network analogue."""
    key = (name, k, n_points, seed)
    if key in _cache:
        return _cache[key]
    network = load_network(name, scale=BENCH_SCALES[name], seed=seed)
    if n_points is None:
        n_points = int(POINTS_PER_NODE * network.num_nodes)
    spec = cluster_spec_for(network, n_points, k)
    seeds = well_separated_seed_edges(network, k, seed=seed + 2)
    points = generate_clustered_points(
        network, n_points, spec, seed=seed + 1, seed_edges=seeds
    )
    eps = suggest_eps(spec)
    _cache[key] = (network, points, spec, eps)
    return _cache[key]


def cluster_spec_for(network, n_points: int, k: int) -> ClusterSpec:
    """The paper's generator parameters sized to the network.

    s_init is chosen so the k clusters jointly spread over roughly a fifth
    of the total edge length (dense cores, sparse boundaries, F = 5) —
    compact enough that well-separated seeds keep the planted clusters
    apart, as in the paper's Figure 11 datasets.
    """
    total_length = network.total_weight()
    avg_gap = 0.2 * total_length / max(1, n_points)
    # The mean generated gap is s_cur averaged over the ramp: 3 * s_init.
    s_init = max(avg_gap / 3.0, 1e-9)
    return ClusterSpec(k=k, s_init=s_init, magnification=5.0, outlier_fraction=0.01)


#: Environment override for the sidecar location.
SIDECAR_ENV = "REPRO_METRICS_SIDECAR"
#: Fallback sidecar name when pytest-benchmark writes no JSON.
DEFAULT_SIDECAR = "benchmarks-metrics.json"


def sidecar_path(config) -> Path:
    """Where the metrics sidecar of this benchmark session goes.

    Priority: the ``REPRO_METRICS_SIDECAR`` env var, then
    ``<--benchmark-json path>.metrics.json`` (so the sidecar always sits
    next to the timing JSON it annotates), then ``benchmarks-metrics.json``
    in the pytest rootdir.
    """
    env = os.environ.get(SIDECAR_ENV)
    if env:
        return Path(env)
    try:
        bench_json = config.getoption("--benchmark-json")
    except (ValueError, KeyError):
        bench_json = None
    # pytest-benchmark declares the option as argparse.FileType: the value
    # is an already-open file object whose .name is the path.
    bench_json = getattr(bench_json, "name", bench_json)
    if bench_json:
        return Path(f"{bench_json}.metrics.json")
    return Path(str(config.rootpath)) / DEFAULT_SIDECAR


def ground_truth(points) -> dict[int, int]:
    """Planted labels per point id."""
    return {p.point_id: p.label for p in points}


def ideal_initial_medoids(points, k: int) -> list[int]:
    """The paper's Figure 11b 'best' initialisation: the first generated
    point of each planted cluster (generation order == ascending ids)."""
    first: dict[int, int] = {}
    for p in points:
        if p.label == NOISE:
            continue
        if p.label not in first or p.point_id < first[p.label]:
            first[p.label] = p.point_id
    if len(first) != k:
        raise ValueError(f"expected {k} planted clusters, found {len(first)}")
    return [first[label] for label in sorted(first)]
