"""Full-paper-scale runs: the OL and TG experiments at the paper's sizes.

Most benchmarks run scale-reduced workloads so the whole suite stays fast;
this module runs the paper's two smaller configurations at **full size** —
OL (6,105 nodes / 7,035 edges analogue, 20,000 points) and TG (18,263
nodes / 23,874 edges analogue, 50,000 points), k = 10, 1% outliers — to
demonstrate that the pure-Python implementation genuinely handles the
paper's data scale on a laptop, and that the density methods still recover
the planted clusters there.

(NA and SF at 175K nodes / 500K points also run, but in minutes, not
seconds; they are left to the user — `python -m repro generate --workload
SF --scale 1.0 ...`.)
"""

from __future__ import annotations

import pytest

from repro.core.epslink import EpsLink, EpsLinkEdgewise
from repro.core.singlelink import SingleLink
from repro.datagen import generate_clustered_points, load_network, suggest_eps
from repro.datagen.clusters import well_separated_seed_edges
from repro.eval.metrics import adjusted_rand_index

from benchmarks._workloads import cluster_spec_for, ground_truth

K = 10
FULL = {"OL": 20_000, "TG": 50_000}

_cache: dict = {}


def _full_workload(name: str):
    if name in _cache:
        return _cache[name]
    network = load_network(name, scale=1.0, seed=0)
    n_points = FULL[name]
    spec = cluster_spec_for(network, n_points, K)
    seeds = well_separated_seed_edges(network, K, seed=2)
    points = generate_clustered_points(
        network, n_points, spec, seed=1, seed_edges=seeds
    )
    _cache[name] = (network, points, suggest_eps(spec))
    return _cache[name]


@pytest.mark.benchmark(group="full-scale")
@pytest.mark.parametrize("name", ["OL", "TG"])
def bench_full_scale_epslink(benchmark, name):
    network, points, eps = _full_workload(name)

    def run():
        return EpsLink(network, points, eps=eps, min_sup=2).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    truth = ground_truth(points)
    ari = adjusted_rand_index(truth, dict(result.assignment), noise="drop")
    benchmark.extra_info.update(
        {
            "network": name,
            "nodes": network.num_nodes,
            "points": len(points),
            "clusters": result.num_clusters,
            "ari": round(ari, 4),
        }
    )
    assert ari > 0.95


@pytest.mark.benchmark(group="full-scale")
@pytest.mark.parametrize("name", ["OL", "TG"])
def bench_full_scale_epslink_edgewise(benchmark, name):
    network, points, eps = _full_workload(name)

    def run():
        return EpsLinkEdgewise(network, points, eps=eps, min_sup=2).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"network": name, "points": len(points), "clusters": result.num_clusters}
    )


@pytest.mark.benchmark(group="full-scale")
@pytest.mark.parametrize("name", ["OL", "TG"])
def bench_full_scale_single_link(benchmark, name):
    network, points, eps = _full_workload(name)

    def run():
        sl = SingleLink(network, points, delta=0.7 * eps)
        return sl, sl.build_dendrogram()

    sl, dendrogram = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "network": name,
            "points": len(points),
            "initial_clusters": sl.last_stats["initial_clusters"],
            "merges": len(dendrogram.merges),
        }
    )
    # The delta heuristic's order-of-magnitude reduction at real scale.
    assert sl.last_stats["initial_clusters"] < len(points) / 5
