"""Figure 12 — speedup of incremental medoid replacement vs k.

The paper: "the speedup achieved by the incremental medoid replacement over
the naive assignment of points to clusters from scratch ... increases with
k, since the number of network nodes (and points) that are re-located to
another cluster becomes smaller" (~4x at k = 10 on SF with 500K points).

This benchmark measures, on the SF analogue, the time of one incremental
swap evaluation (``Inc_Medoid_Update`` + Equation 1 assignment) for a range
of k; the corresponding from-scratch evaluation (``Medoid_Dist_Find`` +
assignment) is timed alongside and the speedup recorded in ``extra_info``.
The expected shape: speedup grows with k.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.kmedoids import NetworkKMedoids

from benchmarks._workloads import get_workload

SWAPS_PER_MEASUREMENT = 5


def _measure(network, points, k: int, seed: int = 0):
    """(incremental_seconds, scratch_seconds) averaged over a few swaps.

    The incremental side is the production path: in-place
    ``Inc_Medoid_Update`` plus the incremental Equation-1 re-scan of the
    touched edges; the scratch side is a full ``Medoid_Dist_Find`` plus a
    full point scan.
    """
    rng = random.Random(seed)
    km = NetworkKMedoids(network, points, k=k, seed=seed)
    incident = km._incident_populated_edges()
    all_ids = sorted(points.point_ids())
    medoid_ids = rng.sample(all_ids, k)
    medoids = [points.get(pid) for pid in medoid_ids]
    state = km.medoid_dist_find(medoids)
    assignment, distance = km.assign_points(medoids, state)

    t_inc = 0.0
    t_scratch = 0.0
    for _ in range(SWAPS_PER_MEASUREMENT):
        old_id = rng.choice(medoid_ids)
        new_id = rng.choice([pid for pid in all_ids if pid not in medoid_ids])
        old_medoid, new_medoid = points.get(old_id), points.get(new_id)
        survivors = [points.get(pid) for pid in medoid_ids if pid != old_id]
        new_ids = sorted(set(medoid_ids) - {old_id} | {new_id})
        new_medoids = [points.get(pid) for pid in new_ids]

        start = time.perf_counter()
        state_log = km.inc_medoid_update_inplace(
            state, old_medoid, new_medoid, survivors
        )
        changed = {node for node, _, _ in state_log}
        assign_log = km.assign_points_incremental(
            new_medoids, state, changed,
            (old_medoid.edge, new_medoid.edge),
            assignment, distance, incident,
        )
        sum(distance.values())  # the evaluation function R
        t_inc += time.perf_counter() - start
        km.rollback_assignment(assignment, distance, assign_log)
        km.rollback_update(state, state_log)

        start = time.perf_counter()
        scratch_state = km.medoid_dist_find(new_medoids)
        _, scratch_distance = km.assign_points(new_medoids, scratch_state)
        sum(scratch_distance.values())
        t_scratch += time.perf_counter() - start

        # Commit the swap so each measurement sees a fresh configuration.
        medoid_ids = new_ids
        state = scratch_state
        assignment, distance = km.assign_points(new_medoids, state)
    return t_inc / SWAPS_PER_MEASUREMENT, t_scratch / SWAPS_PER_MEASUREMENT


@pytest.mark.benchmark(group="fig12-incremental-speedup")
@pytest.mark.parametrize("k", [2, 4, 8, 16, 32])
def bench_fig12_speedup(benchmark, k):
    network, points, spec, eps = get_workload("SF", k=10)

    def run():
        return _measure(network, points, k)

    t_inc, t_scratch = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "k": k,
            "incremental_ms": round(t_inc * 1e3, 2),
            "scratch_ms": round(t_scratch * 1e3, 2),
            "speedup": round(t_scratch / t_inc, 2) if t_inc > 0 else None,
        }
    )
