"""Ablation (Section 4.4.2) — the δ pre-merge heuristic of Single-Link.

The paper: "we immediately merge points on an edge whose distance is at
most δ ... the number of clusters to start with and the sizes of the queues
significantly reduce.  The price to pay is that we lose the first merges of
the dendrogram, [which] are not usually important to the data analyst."
Its Figure 11d uses δ = s_init * F ("the number of clusters to start with
is one order of magnitude smaller than N"), and its Table 2 runs use
δ = 0.7 ε.

This ablation sweeps δ over {0, 0.35 ε, 0.7 ε} on the OL workload and
records the initial cluster count (the heap-size proxy) and dendrogram
size, asserting that merges above δ are untouched.
"""

from __future__ import annotations

import pytest

from repro.core.singlelink import SingleLink

from benchmarks._workloads import get_workload

K = 10
DELTA_FACTORS = [0.0, 0.35, 0.7]


@pytest.mark.benchmark(group="ablation-delta")
@pytest.mark.parametrize("factor", DELTA_FACTORS)
def bench_single_link_delta(benchmark, factor):
    network, points, spec, eps = get_workload("OL", k=K)
    delta = factor * eps

    def run():
        sl = SingleLink(network, points, delta=delta)
        return sl, sl.build_dendrogram()

    sl, dendrogram = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "delta_factor": factor,
            "initial_clusters": sl.last_stats["initial_clusters"],
            "recorded_merges": len(dendrogram.merges),
            "points": len(points),
        }
    )


def test_delta_shrinks_initial_clusters_and_preserves_tail():
    network, points, spec, eps = get_workload("OL", k=K)
    plain = SingleLink(network, points)
    plain_dendrogram = plain.build_dendrogram()
    plain_initial = plain.last_stats["initial_clusters"]

    heavy = SingleLink(network, points, delta=0.7 * eps)
    heavy_dendrogram = heavy.build_dendrogram()
    heavy_initial = heavy.last_stats["initial_clusters"]

    # "one order of magnitude smaller than N" on a clustered workload.
    assert heavy_initial < plain_initial / 5
    # Everything above delta is byte-identical.
    above = [d for d in plain_dendrogram.merge_distances() if d > 0.7 * eps]
    assert heavy_dendrogram.merge_distances() == pytest.approx(above)
