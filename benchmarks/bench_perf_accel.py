"""Distance-acceleration layer: landmark bounds + shared distance cache.

Three measurements for the ``repro.perf`` subsystem:

* corridor-pruned point-to-point search vs plain Dijkstra — the landmark
  upper bound caps how far the search may wander, so it settles a
  fraction of the vertices while returning bit-identical distances;
* range queries with the landmark candidate prefilter vs the plain
  expansion;
* warm repeated queries through :class:`repro.serve.QueryService` with
  the shared distance cache on vs off.

All variants assert exact equality with the unaccelerated answers — the
acceleration contract is "same bits, less work".  The ``perf.*`` obs
counters land in the metrics sidecar (see ``conftest.py``).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.network.augmented import AugmentedView
from repro.network.queries import range_query
from repro.perf import DistanceAccelerator, unaccelerated_point_distance
from repro.serve import QueryService

from benchmarks._workloads import get_workload

K = 10
LANDMARKS = 8
N_PAIRS = 40


@pytest.mark.benchmark(group="perf-accel")
def bench_landmark_p2p_vs_dijkstra(benchmark):
    """Settled-vertex counts for corridor-pruned vs plain p2p search."""
    network, points, spec, eps = get_workload("SF", k=K)
    aug = AugmentedView(network, points)
    accel = DistanceAccelerator(aug, landmarks=LANDMARKS, cache_mb=0.0)
    rng = random.Random(7)
    pts = list(points)
    pairs = [tuple(rng.sample(pts, 2)) for _ in range(N_PAIRS)]

    def run():
        settled = 0
        for p, q in pairs:
            _, s = accel._point_distance_search(p, q)
            settled += s
        return settled / len(pairs)

    accel_avg = benchmark.pedantic(run, rounds=1, iterations=1)
    plain_settled = 0
    for p, q in pairs:
        d_plain, s = unaccelerated_point_distance(aug, p, q)
        d_accel, _ = accel._point_distance_search(p, q)
        assert d_accel == d_plain  # bit-identical, not approximately equal
        plain_settled += s
    plain_avg = plain_settled / len(pairs)
    benchmark.extra_info.update(
        {
            "landmarks": LANDMARKS,
            "accel_avg_settled": round(accel_avg, 1),
            "plain_avg_settled": round(plain_avg, 1),
            "settled_ratio": round(accel_avg / plain_avg, 3),
        }
    )
    # The acceptance bar: at least 30% fewer settled vertices.
    assert accel_avg <= 0.7 * plain_avg


@pytest.mark.benchmark(group="perf-accel")
def bench_landmark_range_vs_plain(benchmark):
    """Range queries with the landmark candidate prefilter."""
    network, points, spec, eps = get_workload("SF", k=K)
    aug = AugmentedView(network, points)
    accel = DistanceAccelerator(aug, landmarks=LANDMARKS, cache_mb=0.0)
    rng = random.Random(11)
    queries = rng.sample(list(points), 20)

    def run():
        return [accel.range_query(q, eps) for q in queries]

    accelerated = benchmark.pedantic(run, rounds=1, iterations=1)
    for q, hits in zip(queries, accelerated):
        assert hits == range_query(aug, q, eps)
    benchmark.extra_info.update(
        {
            "landmarks": LANDMARKS,
            "eps": round(eps, 3),
            "total_hits": sum(len(h) for h in accelerated),
        }
    )


@pytest.mark.benchmark(group="perf-accel")
@pytest.mark.parametrize("cache_mb", [0.0, 16.0])
def bench_serve_warm_repeats(benchmark, cache_mb):
    """Repeated identical queries through the service, cache on vs off."""
    network, points, spec, eps = get_workload("OL", k=K)
    rng = random.Random(13)
    ids = [p.point_id for p in rng.sample(list(points), 10)]
    requests = [
        {"op": "range", "point_id": pid, "eps": eps} for pid in ids
    ] + [{"op": "knn", "point_id": pid, "k": 5} for pid in ids]
    service = QueryService(
        network, points, workers=2,
        landmarks=LANDMARKS if cache_mb else 0,
        distance_cache_mb=cache_mb,
    )
    try:
        cold = [service.call(dict(r)) for r in requests]  # warm the cache

        def run():
            t0 = time.perf_counter()
            warm = [service.call(dict(r)) for r in requests]
            assert warm == cold
            return time.perf_counter() - t0

        warm_s = benchmark.pedantic(run, rounds=1, iterations=1)
        info = {"cache_mb": cache_mb, "warm_repeat_s": round(warm_s, 4)}
        if service._distance_cache is not None:
            info["cache"] = service._distance_cache.stats()
        benchmark.extra_info.update(info)
    finally:
        service.close()
