"""Cold-start cost of landmark acceleration: persisted index vs in-process
build.

A serve worker that builds its :class:`~repro.perf.LandmarkIndex` from
scratch pays L Dijkstra sweeps over the whole network before it can answer
its first request.  One that mmaps a persisted ``RLIX`` artifact pays a
header + CRC pass over the file.  This benchmark measures time-to-first-
response both ways on the same workload and asserts the answers are
bit-identical — the artifact is a cache of the exact arithmetic, not an
approximation of it.

The ``perf.index.build`` span and ``perf.landmarks.built`` counter land in
the metrics sidecar (see ``conftest.py``).
"""

from __future__ import annotations

import random
import time

import pytest

pytest.importorskip("numpy")

from repro.network.augmented import AugmentedView
from repro.perf import DistanceAccelerator, build_index_file, load_index

from benchmarks._workloads import get_workload

K = 10
LANDMARKS = 8


@pytest.mark.benchmark(group="perf-index")
def bench_cold_start_persisted_vs_built(benchmark, tmp_path):
    """Time-to-first-response: mmap a persisted index vs build one.

    The first response is a corridor-pruned point-to-point distance — the
    cheapest accelerated operation, so the measurement isolates startup
    cost (L Dijkstra sweeps vs one CRC-verified load) instead of burying
    it under a full-scan query that both variants pay identically.
    """
    network, points, spec, eps = get_workload("SF", k=K)
    rng = random.Random(3)
    probe, target = rng.sample(list(points), 2)
    artifact = str(tmp_path / "sf.rlix")
    build_summary = build_index_file(
        artifact, network, num_landmarks=LANDMARKS
    )

    def cold_built():
        t0 = time.perf_counter()
        accel = DistanceAccelerator(
            AugmentedView(network, points), landmarks=LANDMARKS,
            cache_mb=0.0,
        )
        first, _settled = accel._point_distance_search(probe, target)
        return time.perf_counter() - t0, first

    def cold_mmap():
        t0 = time.perf_counter()
        index = load_index(artifact, network)
        accel = DistanceAccelerator(
            AugmentedView(network, points), landmarks=0, cache_mb=0.0,
            index=index,
        )
        first, _settled = accel._point_distance_search(probe, target)
        return time.perf_counter() - t0, first, index

    built_s, built_first = cold_built()

    def run():
        mmap_s, mmap_first, index = cold_mmap()
        index.close()
        assert mmap_first == built_first  # bit-identical first response
        return mmap_s

    mmap_s = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "landmarks": LANDMARKS,
            "artifact_bytes": build_summary["bytes"],
            "cold_start_built_s": round(built_s, 4),
            "cold_start_mmap_s": round(mmap_s, 4),
            "speedup": round(built_s / mmap_s, 1) if mmap_s else None,
        }
    )
    # The acceptance bar: loading the artifact reaches first response in
    # at most half the in-process build time.
    assert mmap_s <= 0.5 * built_s
