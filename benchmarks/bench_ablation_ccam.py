"""Ablation (Section 4.1) — CCAM page layout vs random page layout.

The paper adopts a CCAM-style disk organisation where "network nodes with
their adjacency lists ... are grouped into disk pages based on their
connectivity ...; neighbor nodes are placed in the same page with high
probability".  This ablation quantifies what that buys: the same ε-Link run
against two on-disk copies of the same network — one laid out with the
connectivity-clustered order, one with a random order — under a small
buffer.  The clusterings are identical; the page-miss counts are not.
"""

from __future__ import annotations

import os

import pytest

from repro.core.epslink import EpsLink
from repro.storage.netstore import NetworkStore
from repro.storage.ccam import random_order

from benchmarks._workloads import get_workload

K = 10
BUFFER_BYTES = 24 * 4096  # deliberately small so locality is visible


def _build_store(tmp_path, layout: str):
    network, points, spec, eps = get_workload("TG", k=K)
    order = "ccam" if layout == "ccam" else random_order(network, seed=1)
    path = os.path.join(tmp_path, f"net-{layout}.db")
    store = NetworkStore.build(
        path, network, points, buffer_bytes=BUFFER_BYTES, node_order=order
    )
    return store, eps


@pytest.mark.benchmark(group="ablation-ccam")
@pytest.mark.parametrize("layout", ["ccam", "random"])
def bench_epslink_on_layout(benchmark, layout, tmp_path):
    store, eps = _build_store(tmp_path, layout)
    try:
        def run():
            store.drop_caches()
            store.reset_stats()
            return EpsLink(store, store.points(), eps=eps, min_sup=2).run()

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        stats = store.stats()
        hits = stats["buffer_hits"]
        misses = stats["buffer_misses"]
        benchmark.extra_info.update(
            {
                "layout": layout,
                "clusters": result.num_clusters,
                "page_misses": misses,
                "buffer_hits": hits,
                "hit_rate": round(hits / max(1, hits + misses), 4),
            }
        )
    finally:
        store.close()


def test_ccam_reduces_page_misses(tmp_path):
    """Same clusters, fewer page faults under the CCAM layout."""
    ccam_store, eps = _build_store(tmp_path, "ccam")
    rand_store, _ = _build_store(tmp_path, "random")
    try:
        results = {}
        for name, store in (("ccam", ccam_store), ("random", rand_store)):
            store.drop_caches()
            store.reset_stats()
            results[name] = (
                EpsLink(store, store.points(), eps=eps, min_sup=2).run(),
                store.stats()["buffer_misses"],
            )
        ccam_result, ccam_misses = results["ccam"]
        rand_result, rand_misses = results["random"]
        assert ccam_result.same_clustering(rand_result)
        assert ccam_misses < rand_misses, (
            f"CCAM layout must fault less: {ccam_misses} vs {rand_misses}"
        )
    finally:
        ccam_store.close()
        rand_store.close()
