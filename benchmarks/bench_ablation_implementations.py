"""Ablation — implementation variants and the extension algorithms.

Three comparisons beyond the paper's own tables:

* the two ε-Link traversals — the augmented-graph expansion vs the
  paper-literal Figure 6 edge scanning — produce identical clusters at
  comparable cost;
* OPTICS (the paper's cited remedy for ε selection) vs DBSCAN: one OPTICS
  ordering costs about one DBSCAN run but serves every ε ≤ max_eps;
* A* (Euclidean-bounded) vs Dijkstra point-to-point distance: the [16]-style
  bound settles a fraction of the vertices.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink, EpsLinkEdgewise
from repro.core.optics import NetworkOPTICS
from repro.network.astar import point_distance_astar
from repro.network.augmented import AugmentedView, point_vertex
from repro.network.distance import network_distance

from benchmarks._workloads import get_workload

K = 10


@pytest.mark.benchmark(group="ablation-implementations")
@pytest.mark.parametrize("variant", ["augmented", "edgewise"])
def bench_epslink_variants(benchmark, variant):
    network, points, spec, eps = get_workload("OL", k=K)
    cls = EpsLink if variant == "augmented" else EpsLinkEdgewise

    def run():
        return cls(network, points, eps=eps, min_sup=2).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"variant": variant, "clusters": result.num_clusters}
    )


def test_epslink_variants_identical():
    network, points, spec, eps = get_workload("OL", k=K)
    a = EpsLink(network, points, eps=eps, min_sup=2).run()
    b = EpsLinkEdgewise(network, points, eps=eps, min_sup=2).run()
    assert a.same_clustering(b)


@pytest.mark.benchmark(group="ablation-implementations")
def bench_optics_ordering(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)

    def run():
        return NetworkOPTICS(network, points, max_eps=eps, min_pts=2).compute()

    ordering = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["ordered_points"] = len(ordering)


@pytest.mark.benchmark(group="ablation-implementations")
def bench_dbscan_single_eps(benchmark):
    network, points, spec, eps = get_workload("OL", k=K)

    def run():
        return NetworkDBSCAN(network, points, eps=eps, min_pts=2).run()

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="ablation-implementations")
def bench_astar_vs_dijkstra_distances(benchmark):
    """Average settled-vertex counts for 40 random point pairs."""
    network, points, spec, eps = get_workload("SF", k=K)
    aug = AugmentedView(network, points)
    rng = random.Random(7)
    pts = list(points)
    pairs = [tuple(rng.sample(pts, 2)) for _ in range(40)]

    def run():
        astar_settled = 0
        for p, q in pairs:
            _, settled = point_distance_astar(aug, p, q)
            astar_settled += settled
        return astar_settled / len(pairs)

    astar_avg = benchmark.pedantic(run, rounds=1, iterations=1)
    # Dijkstra reference: count settled vertices via an instrumented run.
    import heapq

    dijkstra_settled = 0
    for p, q in pairs:
        target = point_vertex(q.point_id)
        dist: dict = {}
        heap = [(0.0, point_vertex(p.point_id))]
        while heap:
            d, v = heapq.heappop(heap)
            if v in dist:
                continue
            dist[v] = d
            if v == target:
                break
            for nbr, seg in aug.neighbors(v):
                if nbr not in dist:
                    heapq.heappush(heap, (d + seg, nbr))
        dijkstra_settled += len(dist)
    dijkstra_avg = dijkstra_settled / len(pairs)
    benchmark.extra_info.update(
        {
            "astar_avg_settled": round(astar_avg, 1),
            "dijkstra_avg_settled": round(dijkstra_avg, 1),
            "settled_ratio": round(dijkstra_avg / astar_avg, 2),
        }
    )
    # Distances must agree; the bound must help on Euclidean-weighted nets.
    for p, q in pairs[:5]:
        d_astar, _ = point_distance_astar(aug, p, q)
        assert abs(d_astar - network_distance(aug, p, q)) < 1e-9
    assert astar_avg < dijkstra_avg
