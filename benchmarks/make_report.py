#!/usr/bin/env python3
"""Regenerate the paper's tables and figures from the benchmark suite.

Runs ``pytest benchmarks/ --benchmark-only --benchmark-json=...`` and
formats the recorded measurements into the same rows/series the paper
reports: Table 1, Table 2, and the Figure 11/12/13/14/15 series, plus the
ablations.  Absolute times differ from the paper's 2002 C++/disk setup by
construction; the *shapes* (who wins, by what factor, where curves bend)
are the reproduction target (see EXPERIMENTS.md).

Alongside the timing JSON every run emits a :mod:`repro.obs` *metrics
sidecar* (``<benchmark-json>.metrics.json``, written by
``benchmarks/conftest.py``) holding the hardware-independent cost counters
— heap pops, page faults, swap iterations — which are reported after the
timing tables.

Run:  python benchmarks/make_report.py [--json existing-results.json]
                                       [--metrics existing.metrics.json]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from collections import defaultdict
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.obs import load_metrics_sidecar  # noqa: E402


def run_benchmarks(json_path: Path) -> None:
    cmd = [
        sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only",
        "-q", f"--benchmark-json={json_path}",
    ]
    print(f"$ {' '.join(cmd)}", flush=True)
    subprocess.run(cmd, check=True, cwd=_ROOT)


def load(json_path: Path) -> dict:
    """group -> list of (test name, mean seconds, extra_info)."""
    raw = json.loads(json_path.read_text())
    groups: dict[str, list] = defaultdict(list)
    for bench in raw["benchmarks"]:
        groups[bench.get("group") or "ungrouped"].append(
            (bench["name"], bench["stats"]["mean"], bench.get("extra_info", {}))
        )
    return groups


def header(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def report_fig11(entries) -> None:
    header("Figure 11 - clustering effectiveness (OL analogue, k=10)")
    print(f"{'variant':<34}{'clusters':>9}{'outliers':>9}{'ARI':>8}{'NMI':>8}")
    for name, _, info in sorted(entries):
        if "ari" not in info:
            continue
        label = name.replace("bench_", "").replace("_", " ")
        print(f"{label:<34}{info['clusters']:>9}{info['outliers']:>9}"
              f"{info['ari']:>8.3f}{info['nmi']:>8.3f}")
    print("\npaper: k-medoids splits/merges clusters and absorbs outliers;"
          "\n       DBSCAN/eps-Link identical and correct; Single-Link cut at"
          " eps == eps-Link.")


def report_fig12(entries) -> None:
    header("Figure 12 - speedup of incremental medoid replacement (SF analogue)")
    print(f"{'k':>4}{'incremental':>14}{'from scratch':>14}{'speedup':>9}")
    rows = sorted((info["k"], info) for _, _, info in entries if "k" in info)
    for k, info in rows:
        print(f"{k:>4}{info['incremental_ms']:>12.1f}ms"
              f"{info['scratch_ms']:>12.1f}ms{info['speedup']:>9.2f}")
    print("\npaper: speedup increases with k (~4x at k=10 on SF/500K pts).")


def report_table1(entries) -> None:
    header("Table 1 - k-medoids convergence cost (k=10, N ~ 3|V|)")
    print(f"{'network':<9}{'|V|':>7}{'N':>8}{'iters':>7}{'first it':>11}"
          f"{'incr it':>10}{'ratio':>7}")
    order = {"NA": 0, "SF": 1, "TG": 2, "OL": 3}
    rows = sorted(
        (e for e in entries if "network" in e[2]),
        key=lambda e: order.get(e[2]["network"], 9),
    )
    for _, _, info in rows:
        print(f"{info['network']:<9}{info['nodes']:>7}{info['points']:>8}"
              f"{info['iterations']:>7}{info['first_iteration_s']:>10.3f}s"
              f"{info['incremental_iteration_s']:>9.3f}s"
              f"{info['first_over_incremental']:>7.1f}")
    print("\npaper: incremental iteration ~4x cheaper than the first;"
          " converges in 4-8 improvements + 15 failed swaps.")


def report_table2(entries) -> None:
    header("Table 2 - execution cost of the four methods (seconds)")
    methods = ["k-medoids", "dbscan", "eps-link", "single-link"]
    per_network: dict[str, dict[str, float]] = defaultdict(dict)
    for name, mean, info in entries:
        if "method" in info:
            per_network[info["network"]][info["method"]] = mean
    print(f"{'network':<9}" + "".join(f"{m:>13}" for m in methods))
    for net in ("NA", "SF", "TG", "OL"):
        row = per_network.get(net, {})
        print(f"{net:<9}" + "".join(f"{row.get(m, float('nan')):>12.3f}s" for m in methods))
    print("\npaper: k-medoids slowest on every network; eps-Link beats DBSCAN"
          " via its systematic traversal; Single-Link pays for the full"
          " dendrogram.")


def report_series(entries, key: str, title: str, note: str) -> None:
    header(title)
    methods = ["k-medoids", "dbscan", "eps-link", "single-link"]
    rows = sorted(
        (info[key], info) for _, _, info in entries if key in info
    )
    print(f"{key:>10}" + "".join(f"{m:>13}" for m in methods))
    for value, info in rows:
        print(f"{value:>10}" + "".join(f"{info.get(m, float('nan')):>12.3f}s" for m in methods))
    print(f"\npaper: {note}")


def report_fig15(entries) -> None:
    header("Figure 15 - Single-Link merge distances & interesting levels (OL)")
    for _, _, info in entries:
        series = info.get("last_49_merge_distances")
        if not series:
            continue
        print("last 49 merge distances (oldest -> newest):")
        for i in range(0, len(series), 7):
            print("  " + "  ".join(f"{d:8.3f}" for d in series[i : i + 7]))
        print(f"interesting levels (merge indices): {info['interesting_levels']}")
        print(f"ARI of the clustering before the first level past eps: "
              f"{info['ari_at_first_level']:.3f}")
    print("\npaper: sharp distance jumps mark interesting levels; the first"
          " occurs when the merge distance reaches eps (clusters discovered).")


def report_ablation_matrix(entries) -> None:
    header("Ablation (Sec 3.2) - precomputed distance matrix strawman (TG)")
    for name, mean, info in sorted(entries):
        label = name.replace("bench_", "").replace("_", " ")
        extra = ""
        if "matrix_mb" in info:
            extra = f"  (matrix: {info['matrix_mb']} MB for {info['points']} pts)"
        print(f"{label:<44}{mean:>9.3f}s{extra}")
    print("\npaper: O(N^2) precomputation dominates; traversal methods avoid it.")


def report_ablation_ccam(entries) -> None:
    header("Ablation (Sec 4.1) - CCAM vs random page layout (TG, eps-Link)")
    print(f"{'layout':<10}{'page misses':>12}{'buffer hits':>13}{'hit rate':>10}")
    for _, _, info in sorted(entries, key=lambda e: e[2].get("layout", "")):
        if "layout" not in info:
            continue
        print(f"{info['layout']:<10}{info['page_misses']:>12}"
              f"{info['buffer_hits']:>13}{info['hit_rate']:>10.1%}")
    print("\nCCAM-style connectivity clustering of pages cuts page faults;"
          " the clustering itself is identical.")


def report_full_scale(entries) -> None:
    header("Full-paper-scale runs (the paper's exact OL/TG sizes)")
    print(f"{'run':<42}{'time':>9}  details")
    for name, mean, info in sorted(entries):
        label = name.replace("bench_full_scale_", "").replace("_", " ")
        details = ", ".join(
            f"{k}={v}" for k, v in info.items() if k not in ("network",)
        )
        net = info.get("network", "?")
        print(f"{label + ' [' + net + ']':<42}{mean:>8.3f}s  {details}")
    print("\npaper OL (20K pts): eps-Link 2.1s, Single-Link 12s;"
          " paper TG (50K pts): eps-Link 5.1s, Single-Link 28s"
          " (2002 C++/disk).")


def report_ablation_implementations(entries) -> None:
    header("Ablation - implementation variants and extensions (OL/SF)")
    for name, mean, info in sorted(entries):
        label = name.replace("bench_", "").replace("_", " ")
        extra = ", ".join(f"{k}={v}" for k, v in info.items())
        print(f"{label:<42}{mean:>8.3f}s  {extra}")
    print("\nedgewise (Figure 6) eps-Link beats the augmented traversal;"
          " one OPTICS ordering ~ one DBSCAN run but serves every eps;"
          " the Euclidean bound (A*) settles a fraction of the vertices.")


def report_ablation_incremental(entries) -> None:
    header("Ablation - incremental maintenance vs recluster-per-insert (OL)")
    for name, mean, info in sorted(entries):
        label = name.replace("bench_", "").replace("_", " ")
        updates = info.get("updates", 1)
        per_update = mean / max(1, updates)
        print(f"{label:<34}{mean:>8.3f}s total "
              f"({per_update * 1e3:8.3f} ms per update)")
    print("\ninsertion into a live clustering is a localized range query;"
          " re-clustering repeats the whole traversal per update.")


def report_ablation_delta(entries) -> None:
    header("Ablation (Sec 4.4.2) - Single-Link delta pre-merge heuristic (OL)")
    print(f"{'delta/eps':>10}{'initial clusters':>18}{'recorded merges':>17}{'time':>9}")
    rows = sorted(
        (info["delta_factor"], mean, info)
        for _, mean, info in entries
        if "delta_factor" in info
    )
    for factor, mean, info in rows:
        print(f"{factor:>10.2f}{info['initial_clusters']:>18}"
              f"{info['recorded_merges']:>17}{mean:>8.3f}s")
    print("\npaper: delta shrinks the initial cluster count (heap sizes) by"
          " an order of magnitude; merges above delta are unchanged.")


def report_obs(payload: dict) -> None:
    runs = payload.get("runs", [])
    header(f"repro.obs counters - aggregated over {len(runs)} benchmark runs")
    totals: dict[str, int] = defaultdict(int)
    span_time: dict[str, float] = defaultdict(float)
    for run in runs:
        for name, value in run.get("counters", {}).items():
            totals[name] += value
        for name, agg in run.get("spans", {}).items():
            span_time[name] += agg.get("total_s", 0.0)
    print(f"{'counter':<52}{'total':>16}")
    for name in sorted(totals):
        print(f"{name:<52}{totals[name]:>16}")
    if span_time:
        print(f"\n{'phase':<52}{'total time':>16}")
        for name, total in sorted(span_time.items(), key=lambda kv: -kv[1]):
            print(f"{name:<52}{total:>15.3f}s")
    print("\nthese counts are the hardware-independent cost measure of the"
          "\npaper's experiments; per-run snapshots live in the sidecar JSON.")


REPORTERS = {
    "fig11-effectiveness": report_fig11,
    "fig12-incremental-speedup": report_fig12,
    "table1-kmedoids": report_table1,
    "table2-method-costs": report_table2,
    "fig13-scalability-n": lambda e: report_series(
        e, "n_points",
        "Figure 13 - scalability with N (SF analogue, seconds)",
        "DBSCAN/eps-Link cost ~ N; k-medoids/Single-Link nearly flat in N.",
    ),
    "fig14-scalability-v": lambda e: report_series(
        e, "nodes",
        "Figure 14 - scalability with |V| (SF fractions, seconds)",
        "k-medoids/Single-Link cost ~ |V|; density-based methods grow slowly.",
    ),
    "fig15-merge-distances": report_fig15,
    "ablation-matrix-baseline": report_ablation_matrix,
    "ablation-ccam": report_ablation_ccam,
    "ablation-delta": report_ablation_delta,
    "ablation-implementations": report_ablation_implementations,
    "ablation-incremental": report_ablation_incremental,
    "full-scale": report_full_scale,
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", type=Path, default=None,
        help="reuse an existing --benchmark-json file instead of re-running",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None,
        help="repro.obs metrics sidecar (default: <benchmark-json>.metrics.json)",
    )
    args = parser.parse_args()
    if args.json is not None:
        json_path = args.json
    else:
        json_path = Path(tempfile.mkdtemp()) / "benchmarks.json"
        run_benchmarks(json_path)
    groups = load(json_path)
    for group, reporter in REPORTERS.items():
        if group in groups:
            reporter(groups[group])
        else:
            print(f"\n[missing group: {group}]")
    metrics_path = args.metrics or Path(f"{json_path}.metrics.json")
    if metrics_path.exists():
        report_obs(load_metrics_sidecar(metrics_path))
    else:
        print(f"\n[no metrics sidecar at {metrics_path}]")


if __name__ == "__main__":
    main()
