"""Figure 13 — scalability with the number of points N (SF network, k=10).

The paper (100K..1M points on SF): "The costs of DBSCAN and eps-Link are
directly proportional to N ... the costs of k-medoids and Single-Link
increase very slowly, appearing to depend mainly on the size of the
network."

Scaled reproduction: the SF analogue is fixed and N sweeps over a 1:8
range; per-method times land in ``extra_info`` for the series, and the
shape assertions compare the cost growth of the density-based methods
against the traversal-bound ones.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.core.singlelink import SingleLink

from benchmarks._workloads import get_workload

K = 10
N_VALUES = [2000, 4000, 8000, 16000]


def _run_all(network, points, eps) -> dict[str, float]:
    methods = {
        # One iteration's worth of swaps keeps k-medoids comparable across N
        # (the paper also reports "the cost of finding only one local
        # optimum"); a fixed small swap budget isolates the per-iteration
        # scaling.
        "k-medoids": NetworkKMedoids(network, points, k=K, seed=0, max_bad_swaps=3),
        "dbscan": NetworkDBSCAN(network, points, eps=eps, min_pts=2),
        "eps-link": EpsLink(network, points, eps=eps, min_sup=2),
        "single-link": SingleLink(network, points, delta=0.7 * eps),
    }
    timings = {}
    for name, algo in methods.items():
        start = time.perf_counter()
        algo.run()
        timings[name] = time.perf_counter() - start
    return timings


@pytest.mark.benchmark(group="fig13-scalability-n")
@pytest.mark.parametrize("n_points", N_VALUES)
def bench_fig13_point_scalability(benchmark, n_points):
    network, points, spec, eps = get_workload("SF", k=K, n_points=n_points)

    def run():
        return _run_all(network, points, eps)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"n_points": n_points} | {m: round(t, 4) for m, t in timings.items()}
    )


def test_fig13_shape():
    """Density-based cost grows ~linearly with N; k-medoids and Single-Link
    grow sublinearly (they are bound by the fixed network size)."""
    lo, hi = N_VALUES[0], N_VALUES[-1]
    ratio_n = hi / lo
    net_lo, pts_lo, _, eps_lo = get_workload("SF", k=K, n_points=lo)
    net_hi, pts_hi, _, eps_hi = get_workload("SF", k=K, n_points=hi)
    t_lo = _run_all(net_lo, pts_lo, eps_lo)
    t_hi = _run_all(net_hi, pts_hi, eps_hi)
    growth = {m: t_hi[m] / t_lo[m] for m in t_lo}
    # DBSCAN tracks N (within generous tolerance for timer noise: measured
    # growth is ~3.3-3.6x over an 8x N sweep at this scale).
    assert growth["dbscan"] > 0.3 * ratio_n
    # k-medoids is bound by |V|: far slower growth than N (measured
    # ~1.6-2.7x; the bound is deliberately loose against timer noise).
    assert growth["k-medoids"] < 0.6 * ratio_n
