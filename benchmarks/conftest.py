"""Benchmark-suite hooks: capture repro.obs metrics for every bench run.

Every test in ``benchmarks/`` runs with :mod:`repro.obs` enabled; after each
test its counter/span snapshot is appended to a session-wide list, and at
session end the list is written as a *metrics sidecar* JSON next to the
pytest-benchmark timing JSON (see :func:`_workloads.sidecar_path`).  The
sidecar carries the hardware-independent cost measures (heap pops, page
faults, swap iterations, ...) that the paper reports alongside wall time;
``make_report.py --metrics`` renders them.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Benchmarks are run from the repo root with `pytest benchmarks/`; make both
# the src/ layout and the `benchmarks` namespace package importable without
# requiring an editable install or a particular invocation style.
_ROOT = Path(__file__).resolve().parent.parent
for _p in (str(_ROOT / "src"), str(_ROOT)):
    if _p not in sys.path:
        sys.path.insert(0, _p)

import pytest  # noqa: E402

from repro import obs  # noqa: E402

from benchmarks._workloads import sidecar_path, write_metrics_sidecar  # noqa: E402


def pytest_configure(config):
    config._repro_obs_runs = []


@pytest.fixture(autouse=True)
def _obs_capture(request):
    """Record one obs snapshot per benchmark test."""
    obs.enable(fresh=True)
    try:
        yield
    finally:
        snap = obs.snapshot()
        obs.disable()
        if snap["counters"] or snap["spans"]:
            request.config._repro_obs_runs.append(
                {"test": request.node.nodeid, **snap}
            )


def pytest_sessionfinish(session, exitstatus):
    runs = getattr(session.config, "_repro_obs_runs", None)
    if not runs:
        return
    path = sidecar_path(session.config)
    write_metrics_sidecar(path, runs)
    tr = session.config.pluginmanager.get_plugin("terminalreporter")
    if tr is not None:
        tr.write_line(f"repro.obs metrics sidecar: {path} ({len(runs)} runs)")
