"""Table 1 — k-medoids convergence cost on NA / SF / TG / OL.

The paper's table reports, per network (points ~ 3x nodes, k = 10):

* the number of iterations to converge to a local optimum
  (4-8 committed improvements plus 15 unsuccessful replacements),
* the execution time of the first iteration (a full ``Medoid_Dist_Find``),
* the execution time of subsequent (incremental) iterations — roughly 4x
  cheaper than the first.

The measured analogues are recorded in ``extra_info``; the benchmark times
the full convergence run.
"""

from __future__ import annotations

import pytest

from repro.core.kmedoids import NetworkKMedoids

from benchmarks._workloads import get_workload

K = 10


@pytest.mark.benchmark(group="table1-kmedoids")
@pytest.mark.parametrize("name", ["NA", "SF", "TG", "OL"])
def bench_table1_kmedoids(benchmark, name):
    network, points, spec, eps = get_workload(name, k=K)

    def run():
        return NetworkKMedoids(
            network, points, k=K, seed=0, max_bad_swaps=15
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = result.stats
    inc_iters = max(1, stats["incremental_iterations"])
    first = stats["first_iteration_time_s"]
    inc_avg = stats["incremental_iteration_time_s"] / inc_iters
    benchmark.extra_info.update(
        {
            "network": name,
            "nodes": network.num_nodes,
            "points": len(points),
            "iterations": stats["iterations"],
            "committed_swaps": stats["committed_swaps"],
            "first_iteration_s": round(first, 4),
            "incremental_iteration_s": round(inc_avg, 4),
            "first_over_incremental": round(first / inc_avg, 2) if inc_avg else None,
            "R": round(stats["R"], 2),
        }
    )
    # The paper's shape: an incremental iteration is substantially cheaper
    # than the first full one.
    assert inc_avg < first
