"""Figure 14 — scalability with the network size |V| (SF subnetworks).

The paper extracts connected components of SF with 10% / 20% / 50% / 100%
of the nodes, places 200K points on each, and observes: "the costs of
k-medoids and Single-Link increase proportionally to |V|, since the methods
traverse the whole network.  On the other hand, the part of the network
traversed by the density-based algorithms increases slowly."

Scaled reproduction: BFS-grown connected fractions of the SF analogue with
a fixed point count, timings per method in ``extra_info``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.core.singlelink import SingleLink
from repro.datagen import generate_clustered_points, load_network
from repro.datagen.clusters import well_separated_seed_edges
from repro.network.components import extract_fraction

from benchmarks._workloads import BENCH_SCALES, cluster_spec_for
from repro.datagen import suggest_eps

K = 10
N_POINTS = 4000
FRACTIONS = [0.1, 0.2, 0.5, 1.0]

_cache: dict = {}


def _fraction_workload(fraction: float):
    if fraction in _cache:
        return _cache[fraction]
    base = load_network("SF", scale=BENCH_SCALES["SF"], seed=0)
    network = base if fraction == 1.0 else extract_fraction(base, fraction)
    spec = cluster_spec_for(network, N_POINTS, K)
    seeds = well_separated_seed_edges(network, K, seed=2)
    points = generate_clustered_points(
        network, N_POINTS, spec, seed=1, seed_edges=seeds
    )
    eps = suggest_eps(spec)
    _cache[fraction] = (network, points, eps)
    return _cache[fraction]


def _run_all(network, points, eps) -> dict[str, float]:
    methods = {
        "k-medoids": NetworkKMedoids(network, points, k=K, seed=0, max_bad_swaps=3),
        "dbscan": NetworkDBSCAN(network, points, eps=eps, min_pts=2),
        "eps-link": EpsLink(network, points, eps=eps, min_sup=2),
        "single-link": SingleLink(network, points, delta=0.7 * eps),
    }
    timings = {}
    for name, algo in methods.items():
        start = time.perf_counter()
        algo.run()
        timings[name] = time.perf_counter() - start
    return timings


@pytest.mark.benchmark(group="fig14-scalability-v")
@pytest.mark.parametrize("fraction", FRACTIONS)
def bench_fig14_network_scalability(benchmark, fraction):
    network, points, eps = _fraction_workload(fraction)

    def run():
        return _run_all(network, points, eps)

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"fraction": fraction, "nodes": network.num_nodes}
        | {m: round(t, 4) for m, t in timings.items()}
    )


def test_fig14_shape():
    """k-medoids cost tracks |V|; eps-Link barely reacts (it only visits
    the populated region, whose size is set by N, not |V|)."""
    net_lo, pts_lo, eps_lo = _fraction_workload(0.1)
    net_hi, pts_hi, eps_hi = _fraction_workload(1.0)
    ratio_v = net_hi.num_nodes / net_lo.num_nodes
    t_lo = _run_all(net_lo, pts_lo, eps_lo)
    t_hi = _run_all(net_hi, pts_hi, eps_hi)
    growth = {m: t_hi[m] / t_lo[m] for m in t_lo}
    assert growth["k-medoids"] > growth["eps-link"], (
        "whole-graph traversal must be more |V|-sensitive than eps-link"
    )
    assert growth["eps-link"] < 0.7 * ratio_v
