#!/usr/bin/env python3
"""Lint: every literal metric/span name in src/ stays in its namespace.

The observability docs (docs/observability.md) promise a stable metric-name
taxonomy: dotted lowercase names whose first segment is one of the known
subsystem namespaces (``serve.*``, ``perf.cache.*``, ``breaker.*``, ...).
Dashboards, the stats wire op, and the metrics exporter all key on those
names, so a typo'd or off-taxonomy name literal is a silent contract break:
nothing crashes, the series just never shows up where monitoring looks.

This tool walks every ``src/repro/**/*.py`` AST and checks the first
argument of each instrumentation call:

* counter adds — ``add("...")``, ``_obs_add("...")``, ``obs.add("...")``
* spans — ``span("...")``, ``_span("...")``, ``_obs_span("...")``,
  ``obs.span("...")``
* histograms/gauges — ``*.histogram("...")``, ``*.gauge("...")``,
  ``observe("...", v)``

Literal string names must match ``NAME_RE`` and open with an allowed
namespace segment.  f-string names are checked on their literal prefix
(``f"breaker.transitions.{state}"`` validates ``breaker.transitions.``).
Dynamic names with no literal prefix are skipped — they cannot be checked
statically.  Spans may be single-segment (a whole phase, e.g.
``"evaluate"``); counters, histograms, and gauges must carry at least one
dot so the subsystem prefix is explicit.

Exit status: 0 when every checkable name conforms, 1 otherwise (one
``file:line: message`` per violation, ruff-style).  Run by the CI lint job
next to ruff.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

#: First-segment namespaces a metric or span name may open with.  Extending
#: the taxonomy means adding the namespace here AND documenting it in
#: docs/observability.md — the lint exists to force that second step.
ALLOWED_NAMESPACES = frozenset({
    "augmented",
    "breaker",
    "budget",
    "checkpoint",
    "cluster",
    "dbscan",
    "dijkstra",
    "epslink",
    "evaluate",
    "faults",
    "kmedoids",
    "live",
    "netstore",
    "ops",
    "optics",
    "perf",
    "queries",
    "repair",
    "resilience",
    "retry",
    "serve",
    "singlelink",
    "storage",
    "wal",
})

#: Second segments allowed under ``serve.`` — the serve tier's names are a
#: wire contract (the stats op and dashboards key on them), so this one
#: namespace is pinned a level deeper than the rest.  ``supervisor`` covers
#: the process-supervision counters (``serve.supervisor.worker_deaths``,
#: ``.restarts``, ``.failovers``, ``.quarantined``, ``.degraded``,
#: ``.hangs``).
SERVE_SEGMENTS = frozenset({
    "completed",
    "deadline_exceeded",
    "dequeue",
    "epoch",
    "errors",
    "exec",
    "inflight",
    "latency",
    "queue_depth",
    "queue_wait",
    "request",
    "shed",
    "submitted",
    "supervisor",
    "worker",
    "workers_live",
})

#: Full-name shape: lowercase dotted segments; segments may carry ``_`` and
#: ``-`` (algorithm names like ``eps-link`` appear in span names).
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_-]+)*$")

#: Bare-callable names that record a counter / open a span.
COUNTER_FUNCS = frozenset({"add", "_obs_add"})
SPAN_FUNCS = frozenset({"span", "_span", "_obs_span"})
#: Attribute callables keyed on the attribute name alone: ``obs.add``,
#: ``REGISTRY.histogram``, ``_METRICS.gauge``.
COUNTER_ATTRS = frozenset({"add"})
SPAN_ATTRS = frozenset({"span"})
INSTRUMENT_ATTRS = frozenset({"histogram", "gauge"})
OBSERVE_FUNCS = frozenset({"observe"})


def _call_kind(node: ast.Call) -> str | None:
    """``"counter"`` / ``"span"`` / ``"instrument"`` for instrumentation
    calls, ``None`` for everything else."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id in COUNTER_FUNCS or func.id in OBSERVE_FUNCS:
            return "counter"
        if func.id in SPAN_FUNCS:
            return "span"
        return None
    if isinstance(func, ast.Attribute):
        # Only dotted access on a plain name (obs.add, _METRICS.gauge):
        # method calls on arbitrary expressions (results.add, set.add)
        # are not instrumentation.
        if not isinstance(func.value, ast.Name):
            return None
        base = func.value.id
        if func.attr in COUNTER_ATTRS and base == "obs":
            return "counter"
        if func.attr in SPAN_ATTRS and base == "obs":
            return "span"
        if func.attr in INSTRUMENT_ATTRS:
            return "instrument"
    return None


def _literal_name(node: ast.expr) -> tuple[str, bool] | None:
    """``(name_text, is_prefix)`` for a checkable first argument.

    A plain string constant checks in full; an f-string checks its leading
    literal prefix (``is_prefix`` True).  Anything else returns ``None`` —
    not statically checkable.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, True
    return None


def _check_name(
    name: str, *, kind: str, is_prefix: bool
) -> str | None:
    """The violation message for ``name``, or ``None`` when it conforms."""
    text = name.rstrip(".") if is_prefix else name
    if not text:
        return "metric name f-string has no literal namespace prefix"
    if not NAME_RE.match(text):
        return f"metric name {name!r} is not lowercase dotted ([a-z0-9_.-])"
    first = text.split(".", 1)[0]
    if first not in ALLOWED_NAMESPACES:
        return (
            f"metric name {name!r} opens with unknown namespace {first!r} "
            f"(document it in docs/observability.md and add it to "
            f"{Path(__file__).name})"
        )
    if kind != "span" and not is_prefix and "." not in text:
        return (
            f"{kind} name {name!r} needs a dotted subsystem prefix "
            f"(single-segment names are reserved for spans)"
        )
    if first == "serve" and "." in text:
        second = text.split(".")[1]
        if second and second not in SERVE_SEGMENTS:
            return (
                f"metric name {name!r} uses unknown serve.* segment "
                f"{second!r} (document it in docs/observability.md and add "
                f"it to SERVE_SEGMENTS in {Path(__file__).name})"
            )
    return None


def check_file(path: Path) -> list[str]:
    """All violations in one source file, as ``path:line: message``."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:  # pragma: no cover - src must parse to ship
        return [f"{path}:{exc.lineno}: syntax error: {exc.msg}"]
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        kind = _call_kind(node)
        if kind is None:
            continue
        checkable = _literal_name(node.args[0])
        if checkable is None:
            continue
        name, is_prefix = checkable
        message = _check_name(name, kind=kind, is_prefix=is_prefix)
        if message:
            violations.append(f"{path}:{node.lineno}: {message}")
    return violations


def main(argv: list[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    if not root.exists():
        print(f"{root}: no such directory", file=sys.stderr)
        return 2
    files = sorted(root.rglob("*.py"))
    violations: list[str] = []
    checked = 0
    for path in files:
        checked += 1
        violations.extend(check_file(path))
    for line in violations:
        print(line)
    if violations:
        print(
            f"{len(violations)} metric-name violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print(f"metric names OK across {checked} file(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
