"""Tests for the network DBSCAN adaptation.

Oracle: classic DBSCAN on the precomputed exact distance matrix
(:func:`repro.baselines.classic.matrix_dbscan`), which shares the control
flow but none of the traversal code.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.classic import matrix_dbscan
from repro.baselines.matrix import DistanceMatrix
from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

from tests.strategies import clustering_instance


class TestValidation:
    def test_bad_eps(self, small_network, small_points):
        with pytest.raises(ParameterError):
            NetworkDBSCAN(small_network, small_points, eps=-1.0)

    def test_bad_min_pts(self, small_network, small_points):
        with pytest.raises(ParameterError):
            NetworkDBSCAN(small_network, small_points, eps=1.0, min_pts=0)


class TestSmallNetwork:
    def test_min_pts_two_matches_epslink(self, small_network, small_points):
        for eps in (1.0, 1.5, 2.5, 4.0):
            dbscan = NetworkDBSCAN(small_network, small_points, eps=eps, min_pts=2).run()
            epslink = EpsLink(small_network, small_points, eps=eps, min_sup=2).run()
            assert dbscan.as_partition() == epslink.as_partition()

    def test_noise_detection(self, small_network, small_points):
        # eps=1.0: only p0,p1 are mutually close; p2, p3 become noise.
        result = NetworkDBSCAN(small_network, small_points, eps=1.0, min_pts=2).run()
        assert result.as_partition() == {frozenset({0, 1})}
        assert result.outliers() == [2, 3]

    def test_min_pts_three_needs_density(self, small_network, small_points):
        # With min_pts=3, eps=1.5: p1's neighbourhood is {p0,p1,p2} -> core.
        result = NetworkDBSCAN(small_network, small_points, eps=1.5, min_pts=3).run()
        assert result.as_partition() == {frozenset({0, 1, 2})}
        assert result.outliers() == [3]

    def test_min_pts_too_high_all_noise(self, small_network, small_points):
        result = NetworkDBSCAN(small_network, small_points, eps=1.0, min_pts=4).run()
        assert result.num_clusters == 0
        assert len(result.outliers()) == 4

    def test_range_query_count_recorded(self, small_network, small_points):
        result = NetworkDBSCAN(small_network, small_points, eps=1.5, min_pts=2).run()
        # DBSCAN issues at least one range query per point in the worst case;
        # here all four points are visited.
        assert result.stats["range_queries"] >= 3


class TestBorderPoints:
    def test_border_point_joins_core_cluster(self):
        """A point within eps of a core point but itself not core becomes a
        border member, not noise."""
        net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
        ps = PointSet(net)
        ps.add(1, 2, 1.0, point_id=0)
        ps.add(1, 2, 1.5, point_id=1)
        ps.add(1, 2, 2.0, point_id=2)
        ps.add(1, 2, 2.9, point_id=3)  # within 1.0 of p2 only
        result = NetworkDBSCAN(net, ps, eps=1.0, min_pts=3).run()
        # p1 is core (nbh {0,1,2}); p0, p2 border-or-core; p3 is border via p2
        # only if p2 is core: p2's nbh is {1,2,3} -> core. So all clustered.
        assert result.num_clusters == 1
        assert result.outliers() == []

    def test_true_noise_stays_noise(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 20.0)])
        ps = PointSet(net)
        ps.add(1, 2, 1.0, point_id=0)
        ps.add(1, 2, 1.5, point_id=1)
        ps.add(1, 2, 15.0, point_id=2)
        result = NetworkDBSCAN(net, ps, eps=1.0, min_pts=2).run()
        assert result.outliers() == [2]


@settings(max_examples=50, deadline=None)
@given(clustering_instance(), st.integers(min_value=1, max_value=4))
def test_property_matches_matrix_dbscan(data, min_pts):
    """Invariant 6: network DBSCAN == classic DBSCAN on exact distances."""
    net, points, seed = data
    dm = DistanceMatrix.from_points(net, points)
    finite = sorted(
        dm.values[i, j]
        for i in range(len(dm.ids))
        for j in range(i + 1, len(dm.ids))
        if dm.values[i, j] < float("inf")
    )
    candidates = [0.75]
    if finite:
        candidates.append(finite[len(finite) // 2] * 1.0001)
    for eps in candidates:
        if eps <= 0:
            continue
        got = NetworkDBSCAN(net, points, eps=eps, min_pts=min_pts).run()
        want = matrix_dbscan(dm, eps=eps, min_pts=min_pts)
        # Core clusters must match exactly; border points visited in the
        # same (point id) order match too since both use identical control
        # flow and seed order.
        assert got.same_clustering(want), f"seed={seed} eps={eps} minpts={min_pts}"
