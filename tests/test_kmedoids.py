"""Tests for network k-medoids: Medoid_Dist_Find, Equation 1 assignment,
Inc_Medoid_Update, and the swap loop.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.classic import assign_to_medoids
from repro.baselines.matrix import DistanceMatrix
from repro.core.kmedoids import NetworkKMedoids
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError, PointNotFoundError
from repro.network.augmented import AugmentedView
from repro.network.distance import network_distance
from repro.network.dijkstra import single_source
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

from tests.conftest import make_random_connected_network, scatter_points
from tests.strategies import clustering_instance


class TestValidation:
    def test_k_bounds(self, small_network, small_points):
        with pytest.raises(ParameterError):
            NetworkKMedoids(small_network, small_points, k=0)
        with pytest.raises(ParameterError):
            NetworkKMedoids(small_network, small_points, k=5)

    def test_bad_restarts(self, small_network, small_points):
        with pytest.raises(ParameterError):
            NetworkKMedoids(small_network, small_points, k=2, n_restarts=0)

    def test_initial_medoids_must_be_distinct(self, small_network, small_points):
        with pytest.raises(ParameterError):
            NetworkKMedoids(
                small_network, small_points, k=2, initial_medoids=[0, 0]
            )

    def test_initial_medoids_must_exist(self, small_network, small_points):
        with pytest.raises(PointNotFoundError):
            NetworkKMedoids(
                small_network, small_points, k=2, initial_medoids=[0, 42]
            )


class TestMedoidDistFind:
    def brute_force(self, network, points, medoids):
        """Per-medoid Dijkstra + direct distances: nearest medoid per node."""
        best_dist = {}
        best_med = {}
        for m in medoids:
            weight = network.edge_weight(m.u, m.v)
            for seed_node, d0 in ((m.u, m.offset), (m.v, weight - m.offset)):
                for node, d in single_source(network, seed_node).items():
                    total = d0 + d
                    if total < best_dist.get(node, math.inf):
                        best_dist[node] = total
                        best_med[node] = m.point_id
        return best_dist, best_med

    def test_matches_bruteforce_small(self, small_network, small_points):
        km = NetworkKMedoids(small_network, small_points, k=2, seed=0)
        medoids = [small_points.get(0), small_points.get(3)]
        state = km.medoid_dist_find(medoids)
        want_dist, _ = self.brute_force(small_network, small_points, medoids)
        assert state.node_dist == pytest.approx(want_dist)

    def test_matches_bruteforce_random(self):
        rng = random.Random(5)
        for _ in range(5):
            net = make_random_connected_network(rng, 30, extra_edges=15)
            points = scatter_points(rng, net, 12)
            km = NetworkKMedoids(net, points, k=3, seed=1)
            medoids = [points.get(pid) for pid in rng.sample(sorted(points.point_ids()), 3)]
            state = km.medoid_dist_find(medoids)
            want_dist, want_med = self.brute_force(net, points, medoids)
            assert state.node_dist == pytest.approx(want_dist)
            for node, med in state.node_medoid.items():
                # The chosen medoid must achieve the minimal distance
                # (ties may resolve differently than brute force).
                m = points.get(med)
                w = net.edge_weight(m.u, m.v)
                via_u = m.offset + single_source(net, m.u)[node]
                via_v = (w - m.offset) + single_source(net, m.v)[node]
                assert min(via_u, via_v) == pytest.approx(want_dist[node])


class TestAssignPoints:
    def test_matches_matrix_argmin(self, small_network, small_points):
        dm = DistanceMatrix.from_points(small_network, small_points)
        km = NetworkKMedoids(small_network, small_points, k=2, seed=0)
        for medoid_ids in ([0, 3], [1, 2], [0, 2]):
            medoids = [small_points.get(pid) for pid in medoid_ids]
            state = km.medoid_dist_find(medoids)
            assignment, distance = km.assign_points(medoids, state)
            want_assignment, want_distance = assign_to_medoids(dm, medoid_ids)
            assert distance == pytest.approx(want_distance)
            for pid in assignment:
                assert dm.distance(pid, assignment[pid]) == pytest.approx(
                    want_distance[pid]
                )

    def test_same_edge_medoid_direct_assignment(self):
        """A medoid on the point's own edge must be considered directly
        (third term of Equation 1)."""
        # Single long edge: node-based terms alone would give wrong results.
        net = SpatialNetwork.from_edge_list([(1, 2, 100.0)])
        ps = PointSet(net)
        m1 = ps.add(1, 2, 10.0, point_id=0)
        m2 = ps.add(1, 2, 90.0, point_id=1)
        p = ps.add(1, 2, 49.0, point_id=2)
        km = NetworkKMedoids(net, ps, k=2, seed=0)
        state = km.medoid_dist_find([m1, m2])
        assignment, distance = km.assign_points([m1, m2], state)
        assert assignment[2] == 0  # 39 to m1 vs 41 to m2
        assert distance[2] == pytest.approx(39.0)

    def test_unreachable_points_get_noise(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        m = ps.add(1, 2, 0.5, point_id=0)
        ps.add(3, 4, 0.5, point_id=1)
        km = NetworkKMedoids(net, ps, k=1, seed=0, initial_medoids=[0])
        state = km.medoid_dist_find([m])
        assignment, distance = km.assign_points([m], state)
        assert assignment[1] == NOISE
        assert math.isinf(distance[1])


class TestIncMedoidUpdate:
    def test_single_swap_equals_scratch(self, small_network, small_points):
        km = NetworkKMedoids(small_network, small_points, k=2, seed=0)
        medoids = [small_points.get(0), small_points.get(3)]
        state = km.medoid_dist_find(medoids)
        new_state = km.inc_medoid_update(
            state, small_points.get(3), small_points.get(2), [small_points.get(0)]
        )
        scratch = km.medoid_dist_find([small_points.get(0), small_points.get(2)])
        assert new_state.node_dist == pytest.approx(scratch.node_dist)

    def test_input_state_not_mutated(self, small_network, small_points):
        km = NetworkKMedoids(small_network, small_points, k=2, seed=0)
        medoids = [small_points.get(0), small_points.get(3)]
        state = km.medoid_dist_find(medoids)
        before = dict(state.node_dist)
        km.inc_medoid_update(
            state, small_points.get(3), small_points.get(2), [small_points.get(0)]
        )
        assert state.node_dist == before

    def test_inplace_rollback_restores_state(self, small_network, small_points):
        km = NetworkKMedoids(small_network, small_points, k=2, seed=0)
        medoids = [small_points.get(0), small_points.get(3)]
        state = km.medoid_dist_find(medoids)
        before_dist = dict(state.node_dist)
        before_med = dict(state.node_medoid)
        log = km.inc_medoid_update_inplace(
            state, small_points.get(3), small_points.get(2), [small_points.get(0)]
        )
        # The in-place update really changed something...
        assert state.node_dist != before_dist or state.node_medoid != before_med
        km.rollback_update(state, log)
        # ...and the rollback restored it exactly.
        assert state.node_dist == before_dist
        assert state.node_medoid == before_med

    def test_inplace_equals_pure_variant(self, small_network, small_points):
        km = NetworkKMedoids(small_network, small_points, k=2, seed=0)
        medoids = [small_points.get(0), small_points.get(3)]
        state = km.medoid_dist_find(medoids)
        pure = km.inc_medoid_update(
            state, small_points.get(3), small_points.get(2), [small_points.get(0)]
        )
        km.inc_medoid_update_inplace(
            state, small_points.get(3), small_points.get(2), [small_points.get(0)]
        )
        assert state.node_dist == pure.node_dist
        assert state.node_medoid == pure.node_medoid


class TestFullRun:
    def test_k_equals_n(self, small_network, small_points):
        result = NetworkKMedoids(small_network, small_points, k=4, seed=0).run()
        # Every point is its own medoid: perfect partitioning with R = 0.
        assert result.num_clusters == 4
        assert result.stats["R"] == pytest.approx(0.0)

    def test_k_one_single_cluster(self, small_network, small_points):
        result = NetworkKMedoids(small_network, small_points, k=1, seed=0).run()
        assert result.num_clusters == 1
        assert result.num_points == 4

    def test_reproducible_with_seed(self, small_network, small_points):
        a = NetworkKMedoids(small_network, small_points, k=2, seed=42).run()
        b = NetworkKMedoids(small_network, small_points, k=2, seed=42).run()
        assert a.assignment == b.assignment
        assert a.stats["R"] == b.stats["R"]

    def test_incremental_and_scratch_same_result(self, small_network, small_points):
        inc = NetworkKMedoids(
            small_network, small_points, k=2, seed=7, incremental=True
        ).run()
        scratch = NetworkKMedoids(
            small_network, small_points, k=2, seed=7, incremental=False
        ).run()
        assert inc.assignment == scratch.assignment
        assert inc.stats["R"] == pytest.approx(scratch.stats["R"])

    def test_restarts_never_worse(self):
        rng = random.Random(3)
        net = make_random_connected_network(rng, 25, extra_edges=12)
        points = scatter_points(rng, net, 20)
        single = NetworkKMedoids(net, points, k=3, seed=11, n_restarts=1).run()
        multi = NetworkKMedoids(net, points, k=3, seed=11, n_restarts=4).run()
        assert multi.stats["R"] <= single.stats["R"] + 1e-9

    def test_initial_medoids_respected(self, small_network, small_points):
        km = NetworkKMedoids(
            small_network,
            small_points,
            k=2,
            seed=0,
            max_bad_swaps=0,  # no swaps: clusters come from the init only
            initial_medoids=[0, 3],
        )
        result = km.run()
        assert set(result.stats["medoids"]) == {0, 3}

    def test_medoid_in_own_cluster(self):
        rng = random.Random(9)
        net = make_random_connected_network(rng, 20, extra_edges=10)
        points = scatter_points(rng, net, 15)
        result = NetworkKMedoids(net, points, k=3, seed=2).run()
        for med in result.stats["medoids"]:
            assert result.cluster_of(med) == med

    def test_r_equals_sum_of_distances_to_medoids(self):
        rng = random.Random(13)
        net = make_random_connected_network(rng, 15, extra_edges=8)
        points = scatter_points(rng, net, 10)
        result = NetworkKMedoids(net, points, k=2, seed=4).run()
        aug = AugmentedView(net, points)
        total = 0.0
        for pid, med in result.assignment.items():
            total += network_distance(aug, points.get(pid), points.get(med))
        assert result.stats["R"] == pytest.approx(total)


@settings(max_examples=40, deadline=None)
@given(
    clustering_instance(connected_only=True, min_points=4, max_points=10),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=1000),
)
def test_property_incremental_equals_scratch(data, k, swap_seed):
    """Invariant 4: Inc_Medoid_Update == Medoid_Dist_Find after any swap."""
    net, points, seed = data
    ids = sorted(points.point_ids())
    if k >= len(ids):
        k = len(ids) - 1
    rng = random.Random(swap_seed)
    medoid_ids = rng.sample(ids, k)
    non_medoids = [pid for pid in ids if pid not in medoid_ids]
    old_id = rng.choice(medoid_ids)
    new_id = rng.choice(non_medoids)

    km = NetworkKMedoids(net, points, k=k, seed=0)
    medoids = [points.get(pid) for pid in medoid_ids]
    state = km.medoid_dist_find(medoids)
    survivors = [points.get(pid) for pid in medoid_ids if pid != old_id]
    incremental = km.inc_medoid_update(
        state, points.get(old_id), points.get(new_id), survivors
    )
    new_ids = sorted(set(medoid_ids) - {old_id} | {new_id})
    scratch = km.medoid_dist_find([points.get(pid) for pid in new_ids])

    assert incremental.node_dist.keys() == scratch.node_dist.keys()
    for node in scratch.node_dist:
        assert incremental.node_dist[node] == pytest.approx(
            scratch.node_dist[node], rel=1e-9, abs=1e-9
        ), f"seed={seed} node={node}"


@settings(max_examples=25, deadline=None)
@given(
    clustering_instance(connected_only=True, min_points=4, max_points=12),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)
def test_property_full_run_incremental_equals_scratch(data, k, run_seed):
    """The whole optimizer — in-place Fig. 5 updates + incremental Eq. 1
    re-scans with rollbacks — follows the exact same trajectory as the
    recompute-everything variant."""
    net, points, seed = data
    k = min(k, len(points) - 1) or 1
    inc = NetworkKMedoids(
        net, points, k=k, seed=run_seed, incremental=True, max_bad_swaps=6
    ).run()
    scratch = NetworkKMedoids(
        net, points, k=k, seed=run_seed, incremental=False, max_bad_swaps=6
    ).run()
    assert inc.assignment == scratch.assignment, f"seed={seed}"
    assert inc.stats["R"] == scratch.stats["R"]
    assert inc.stats["medoids"] == scratch.stats["medoids"]


@settings(max_examples=30, deadline=None)
@given(clustering_instance(connected_only=True, min_points=4, max_points=9))
def test_property_assignment_matches_matrix(data):
    """Invariant 3: Eq. 1 + Medoid_Dist_Find == brute-force argmin."""
    net, points, seed = data
    ids = sorted(points.point_ids())
    dm = DistanceMatrix.from_points(net, points)
    rng = random.Random(seed)
    k = min(3, len(ids) - 1) or 1
    medoid_ids = rng.sample(ids, k)
    km = NetworkKMedoids(net, points, k=k, seed=0)
    medoids = [points.get(pid) for pid in medoid_ids]
    state = km.medoid_dist_find(medoids)
    _, distance = km.assign_points(medoids, state)
    _, want_distance = assign_to_medoids(dm, medoid_ids)
    assert distance == pytest.approx(want_distance, rel=1e-9, abs=1e-9)
