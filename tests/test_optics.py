"""Tests for network OPTICS and DBSCAN-extraction equivalence."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import NetworkDBSCAN
from repro.core.optics import NetworkOPTICS
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.network.queries import range_query

from tests.strategies import clustering_instance


@pytest.fixture
def line_points():
    """Two dense groups on one long edge, with a straggler."""
    net = SpatialNetwork.from_edge_list([(1, 2, 100.0)])
    ps = PointSet(net)
    for off in (1.0, 1.5, 2.0, 2.5):  # dense group A
        ps.add(1, 2, off)
    for off in (50.0, 50.4, 50.8):  # dense group B
        ps.add(1, 2, off)
    ps.add(1, 2, 80.0)  # straggler
    return net, ps


class TestValidation:
    def test_bad_max_eps(self, small_network, small_points):
        with pytest.raises(ParameterError):
            NetworkOPTICS(small_network, small_points, max_eps=0.0)

    def test_bad_min_pts(self, small_network, small_points):
        with pytest.raises(ParameterError):
            NetworkOPTICS(small_network, small_points, max_eps=1.0, min_pts=0)

    def test_extract_above_max_eps(self, small_network, small_points):
        result = NetworkOPTICS(small_network, small_points, max_eps=1.0).compute()
        with pytest.raises(ParameterError):
            result.extract_dbscan(2.0)


class TestOrdering:
    def test_all_points_ordered_once(self, line_points):
        net, ps = line_points
        result = NetworkOPTICS(net, ps, max_eps=5.0, min_pts=2).compute()
        ids = [o.point_id for o in result.ordering]
        assert sorted(ids) == sorted(ps.point_ids())
        assert len(ids) == len(set(ids))

    def test_first_point_has_inf_reachability(self, line_points):
        net, ps = line_points
        result = NetworkOPTICS(net, ps, max_eps=5.0, min_pts=2).compute()
        assert math.isinf(result.ordering[0].reachability)

    def test_dense_groups_are_contiguous_valleys(self, line_points):
        """Members of one dense group appear consecutively with small
        reachability; the jump to the next group is large."""
        net, ps = line_points
        result = NetworkOPTICS(net, ps, max_eps=100.0, min_pts=2).compute()
        group_a = {0, 1, 2, 3}
        positions = [i for i, o in enumerate(result.ordering) if o.point_id in group_a]
        assert positions == list(range(positions[0], positions[0] + 4))

    def test_core_distances(self, line_points):
        net, ps = line_points
        result = NetworkOPTICS(net, ps, max_eps=5.0, min_pts=2).compute()
        by_id = {o.point_id: o for o in result.ordering}
        # Point 0 at offset 1.0: nearest neighbour at 1.5 -> core dist 0.5.
        assert by_id[0].core_distance == pytest.approx(0.5)
        # The straggler at 80.0 has no neighbour within 5 -> not core.
        assert math.isinf(by_id[7].core_distance)

    def test_reachability_plot_shape(self, line_points):
        net, ps = line_points
        result = NetworkOPTICS(net, ps, max_eps=5.0, min_pts=2).compute()
        plot = result.reachability_plot()
        assert len(plot) == len(ps)
        finite = [r for _, r in plot if not math.isinf(r)]
        assert all(r <= 5.0 for r in finite)


class TestExtractDBSCAN:
    def test_two_clusters_and_noise(self, line_points):
        net, ps = line_points
        result = NetworkOPTICS(net, ps, max_eps=5.0, min_pts=2).compute()
        flat = result.extract_dbscan(1.0)
        assert flat.num_clusters == 2
        assert flat.cluster_of(7) == NOISE

    def test_extraction_at_multiple_eps_without_recompute(self, line_points):
        net, ps = line_points
        result = NetworkOPTICS(net, ps, max_eps=60.0, min_pts=2).compute()
        tight = result.extract_dbscan(1.0)
        loose = result.extract_dbscan(50.0)
        assert tight.num_clusters == 2
        assert loose.num_clusters == 1  # 48-unit hop links the groups

    def test_run_interface(self, line_points):
        net, ps = line_points
        flat = NetworkOPTICS(net, ps, max_eps=1.0, min_pts=2).run()
        assert flat.algorithm == "optics"
        assert flat.num_clusters == 2


def _core_ids(net, points, eps, min_pts) -> set[int]:
    aug = AugmentedView(net, points)
    return {
        p.point_id
        for p in points
        if len(range_query(aug, p, eps)) >= min_pts
    }


@settings(max_examples=40, deadline=None)
@given(clustering_instance(), st.integers(min_value=2, max_value=4))
def test_property_extract_matches_dbscan_on_core_points(data, min_pts):
    """OPTICS extraction at eps equals DBSCAN at eps on the core points
    (border points may tie-break differently, per the original papers)."""
    net, points, seed = data
    max_eps = 8.0
    eps = 3.1  # off the distance distribution to avoid exact ties
    optics = NetworkOPTICS(net, points, max_eps=max_eps, min_pts=min_pts).compute()
    extracted = optics.extract_dbscan(eps)
    direct = NetworkDBSCAN(net, points, eps=eps, min_pts=min_pts).run()
    core = _core_ids(net, points, eps, min_pts)

    # Noise agreement is exact on core points; a core point is never noise.
    for pid in core:
        assert extracted.cluster_of(pid) != NOISE
        assert direct.cluster_of(pid) != NOISE
    # The partitions restricted to core points are identical.
    def core_partition(result):
        groups: dict[int, set[int]] = {}
        for pid in core:
            groups.setdefault(result.cluster_of(pid), set()).add(pid)
        return {frozenset(g) for g in groups.values()}

    assert core_partition(extracted) == core_partition(direct), f"seed={seed}"
    # Non-core points: a point DBSCAN calls noise (no core within eps) has
    # reachability > eps from every core, so extraction must call it noise
    # too.  The converse does not hold — per the original OPTICS paper the
    # extraction may differ from DBSCAN "for some border objects" (a border
    # point processed before its cluster's cores keeps inf reachability).
    for p in points:
        if p.point_id not in core and direct.cluster_of(p.point_id) == NOISE:
            assert extracted.cluster_of(p.point_id) == NOISE
