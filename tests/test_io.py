"""Tests for the JSON interchange format."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.result import ClusteringResult
from repro.io import (
    FormatError,
    load_result_file,
    load_workload_file,
    result_from_dict,
    result_to_dict,
    save_result,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)

from tests.conftest import make_random_connected_network, scatter_points
import random


class TestWorkloadRoundtrip:
    def test_network_and_points(self, small_network, small_points):
        doc = workload_to_dict(small_network, small_points)
        net2, pts2 = workload_from_dict(doc)
        assert sorted(net2.edges()) == sorted(small_network.edges())
        assert net2.name == small_network.name
        for node in small_network.nodes():
            assert net2.node_coords(node) == small_network.node_coords(node)
        assert len(pts2) == len(small_points)
        for p in small_points:
            q = pts2.get(p.point_id)
            assert (q.edge, q.offset, q.label) == (p.edge, p.offset, p.label)

    def test_network_only(self, small_network):
        doc = workload_to_dict(small_network)
        net2, pts2 = workload_from_dict(doc)
        assert net2.num_edges == small_network.num_edges
        assert len(pts2) == 0

    def test_nodes_without_coords(self):
        from repro.network.graph import SpatialNetwork

        net = SpatialNetwork.from_edge_list([(1, 2, 3.0)])
        net2, _ = workload_from_dict(workload_to_dict(net))
        assert not net2.has_coords(1)
        assert net2.edge_weight(1, 2) == 3.0

    def test_labels_roundtrip(self, small_network):
        from repro.network.points import PointSet

        ps = PointSet(small_network)
        ps.add(1, 2, 0.5, label=7)
        ps.add(1, 2, 1.0, label=-1)
        ps.add(2, 3, 1.0)  # unlabeled
        _, pts2 = workload_from_dict(workload_to_dict(small_network, ps))
        assert pts2.get(0).label == 7
        assert pts2.get(1).label == -1
        assert pts2.get(2).label is None

    def test_file_roundtrip(self, tmp_path, small_network, small_points):
        path = tmp_path / "w.json"
        save_workload(path, small_network, small_points)
        net2, pts2 = load_workload_file(path)
        assert len(pts2) == len(small_points)
        # The file is genuine JSON.
        json.loads(path.read_text())

    def test_bad_format_rejected(self):
        with pytest.raises(FormatError):
            workload_from_dict({"format": "something-else"})
        with pytest.raises(FormatError):
            workload_from_dict({"format": "repro-workload", "version": 99})


class TestResultRoundtrip:
    def test_roundtrip(self):
        result = ClusteringResult(
            {0: 0, 1: 0, 2: -1},
            algorithm="eps-link",
            params={"eps": 1.5},
            stats={"wall_time_s": 0.01, "medoids": [1, 2]},
        )
        back = result_from_dict(result_to_dict(result))
        assert back.assignment == result.assignment
        assert back.algorithm == "eps-link"
        assert back.params["eps"] == 1.5

    def test_non_jsonable_stats_degrade_to_repr(self):
        result = ClusteringResult({}, algorithm="x", stats={"obj": object()})
        doc = result_to_dict(result)
        json.dumps(doc)  # must not raise
        assert isinstance(doc["stats"]["obj"], str)

    def test_file_roundtrip(self, tmp_path):
        result = ClusteringResult({5: 1}, algorithm="dbscan")
        path = tmp_path / "r.json"
        save_result(path, result)
        back = load_result_file(path)
        assert back.assignment == {5: 1}

    def test_bad_format_rejected(self):
        with pytest.raises(FormatError):
            result_from_dict({"format": "repro-workload", "version": 1})


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_property_workload_roundtrip_random(seed):
    rng = random.Random(seed)
    net = make_random_connected_network(rng, rng.randint(2, 20), extra_edges=5)
    points = scatter_points(rng, net, rng.randint(0, 15))
    net2, pts2 = workload_from_dict(workload_to_dict(net, points))
    assert sorted(net2.edges()) == pytest.approx(sorted(net.edges()))
    assert {p.point_id for p in pts2} == {p.point_id for p in points}
    for p in points:
        assert pts2.get(p.point_id).offset == pytest.approx(p.offset)
