"""Tests for ε-Link, including the component-equivalence property test.

The oracle: ε-Link's clusters are exactly the connected components of the
graph on points with an edge wherever the network distance is at most ε
(the paper's MinPts=2 sufficient condition, applied transitively).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.baselines.classic import threshold_components
from repro.baselines.matrix import DistanceMatrix
from repro.core.epslink import EpsLink, EpsLinkEdgewise
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

from tests.strategies import clustering_instance


class TestValidation:
    def test_bad_eps(self, small_network, small_points):
        with pytest.raises(ParameterError):
            EpsLink(small_network, small_points, eps=0.0)

    def test_bad_min_sup(self, small_network, small_points):
        with pytest.raises(ParameterError):
            EpsLink(small_network, small_points, eps=1.0, min_sup=0)

    def test_foreign_point_set(self, small_network, small_points):
        other = SpatialNetwork.from_edge_list([(1, 2, 1.0)])
        with pytest.raises(ParameterError):
            EpsLink(other, small_points, eps=1.0)


class TestSmallNetwork:
    """Distances in the fixture: d(p0,p1)=1, d(p1,p2)=1.5, d(p0,p2)=2.5,
    d(p2,p3)=4, d(p0,p3)=5.5, d(p1,p3)=5.5."""

    def test_tight_eps_pairs(self, small_network, small_points):
        result = EpsLink(small_network, small_points, eps=1.0).run()
        assert result.as_partition() == {
            frozenset({0, 1}),
            frozenset({2}),
            frozenset({3}),
        }

    def test_chain_through_middle_point(self, small_network, small_points):
        # eps=1.5 chains p0-p1-p2 even though d(p0,p2)=2.5 > eps.
        result = EpsLink(small_network, small_points, eps=1.5).run()
        assert result.as_partition() == {frozenset({0, 1, 2}), frozenset({3})}

    def test_everything_linked(self, small_network, small_points):
        result = EpsLink(small_network, small_points, eps=4.0).run()
        assert result.num_clusters == 1

    def test_min_sup_marks_outliers(self, small_network, small_points):
        result = EpsLink(small_network, small_points, eps=1.0, min_sup=2).run()
        assert result.outliers() == [2, 3]
        assert result.as_partition() == {frozenset({0, 1})}

    def test_stats_recorded(self, small_network, small_points):
        result = EpsLink(small_network, small_points, eps=1.0).run()
        assert result.stats["vertices_visited"] > 0
        assert "wall_time_s" in result.stats


class TestSameEdgeShortcut:
    def test_cluster_through_detour(self):
        """Two points far apart along a heavy edge but close via a detour
        must cluster: eps-link uses network distance, not direct distance."""
        net = SpatialNetwork.from_edge_list([(1, 2, 10.0), (1, 3, 1.0), (2, 3, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(1, 2, 9.5, point_id=1)  # direct gap 9, network distance 3
        result = EpsLink(net, ps, eps=3.0).run()
        assert result.num_clusters == 1

    def test_no_cluster_below_detour_length(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 10.0), (1, 3, 1.0), (2, 3, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(1, 2, 9.5, point_id=1)
        result = EpsLink(net, ps, eps=2.9).run()
        assert result.num_clusters == 2


class TestDisconnectedNetwork:
    def test_components_stay_apart(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.4, point_id=0)
        ps.add(1, 2, 0.6, point_id=1)
        ps.add(3, 4, 0.5, point_id=2)
        result = EpsLink(net, ps, eps=100.0).run()
        assert result.as_partition() == {frozenset({0, 1}), frozenset({2})}


class TestSinglePoint:
    def test_lone_point_is_own_cluster(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 5.0)])
        ps = PointSet(net)
        ps.add(1, 2, 1.0)
        result = EpsLink(net, ps, eps=1.0).run()
        assert result.num_clusters == 1
        assert result.outliers() == []


class TestEdgewiseVariant:
    """The paper-literal Figure 6 traversal must produce identical clusters
    to the augmented-graph implementation."""

    def test_small_network_all_eps(self, small_network, small_points):
        for eps in (0.4, 1.0, 1.5, 2.5, 4.0, 6.0):
            a = EpsLink(small_network, small_points, eps=eps).run()
            b = EpsLinkEdgewise(small_network, small_points, eps=eps).run()
            assert a.same_clustering(b), f"eps={eps}"

    def test_detour_through_other_edges(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 10.0), (1, 3, 1.0), (2, 3, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(1, 2, 9.5, point_id=1)
        a = EpsLink(net, ps, eps=3.0).run()
        b = EpsLinkEdgewise(net, ps, eps=3.0).run()
        assert a.same_clustering(b)
        assert b.num_clusters == 1

    def test_min_sup(self, small_network, small_points):
        b = EpsLinkEdgewise(small_network, small_points, eps=1.0, min_sup=2).run()
        assert b.outliers() == [2, 3]

    def test_reports_its_own_name(self, small_network, small_points):
        result = EpsLinkEdgewise(small_network, small_points, eps=1.0).run()
        assert result.algorithm == "eps-link-edgewise"


@settings(max_examples=40, deadline=None)
@given(clustering_instance())
def test_property_edgewise_equals_augmented(data):
    """Figure 6's edge-scanning traversal == the augmented-graph expansion."""
    net, points, seed = data
    dm = DistanceMatrix.from_points(net, points)
    finite = sorted(
        dm.values[i, j]
        for i in range(len(dm.ids))
        for j in range(i + 1, len(dm.ids))
        if dm.values[i, j] < float("inf")
    )
    candidates = [0.5]
    if finite:
        candidates.extend([finite[0] * 1.01, finite[len(finite) // 2] * 1.0001])
    for eps in candidates:
        if eps <= 0:
            continue
        a = EpsLink(net, points, eps=eps).run()
        b = EpsLinkEdgewise(net, points, eps=eps).run()
        assert a.same_clustering(b), f"seed={seed} eps={eps}"


@settings(max_examples=60, deadline=None)
@given(clustering_instance())
def test_property_equals_threshold_components(data):
    """Invariant 5: ε-Link == connected components of the ≤ε distance graph."""
    net, points, seed = data
    dm = DistanceMatrix.from_points(net, points)
    # Derive a meaningful eps from the actual distance distribution.
    finite = sorted(
        dm.values[i, j]
        for i in range(len(dm.ids))
        for j in range(i + 1, len(dm.ids))
        if dm.values[i, j] < float("inf")
    )
    candidates = [0.5]
    if finite:
        candidates.extend(
            [finite[0] * 1.01, finite[len(finite) // 2] * 1.0001, finite[-1] * 0.99]
        )
    for eps_value in candidates:
        if eps_value <= 0:
            continue
        got = EpsLink(net, points, eps=eps_value).run()
        want = threshold_components(dm, eps_value)
        assert got.same_clustering(want), (
            f"seed={seed} eps={eps_value}: {got.as_partition()} != "
            f"{want.as_partition()}"
        )
