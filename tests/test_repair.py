"""Repair/salvage sweep: ``repair_store`` must never crash, never invent
data, and account for every lost page and point exactly.

Mirrors the bit-flip sweep in ``test_storage_robustness.py`` but drives
the *recovery* path: every damaged store is salvaged, rebuilt, and the
rebuilt store must pass ``verify_store`` with survivors byte-identical
to the pristine originals.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.recovery import repair_store, salvage_store
from repro.storage.netstore import NetworkStore
from repro.storage.pager import CHECKSUM_BYTES
from repro.storage.verify import verify_store

_PAGE_SIZE = 512
_STRIDE = _PAGE_SIZE + CHECKSUM_BYTES


def _scan_store(path) -> tuple[set, set]:
    with NetworkStore(path) as store:
        edges = {(u, v, round(w, 9)) for u, v, w in store.edges()}
        points = {
            (p.point_id, p.u, p.v, round(p.offset, 9), p.label)
            for p in store.points()
        }
    return edges, points


@pytest.fixture(scope="module")
def pristine(tmp_path_factory):
    """A committed store plus its full logical scan, shared by the sweep."""
    net = SpatialNetwork()
    for i in range(30):
        net.add_node(i)
    for i in range(29):
        net.add_edge(i, i + 1, 1.0 + (i % 4))
    pts = PointSet(net)
    pid = 0
    for i in range(29):
        for frac in (0.3, 0.7):
            pts.add(i, i + 1, frac * net.edge_weight(i, i + 1), point_id=pid)
            pid += 1
    path = str(tmp_path_factory.mktemp("repair") / "pristine.db")
    store = NetworkStore.build(path, net, pts, page_size=_PAGE_SIZE)
    try:
        num_pages = store._file.num_pages
    finally:
        store.close()
    return path, num_pages, _scan_store(path)


def _check_repair(src, dst, pristine_scan):
    """The invariants every repair of a damaged copy must uphold."""
    report = repair_store(src, dst)
    # 1. Damaged input never crashes and this store is always salvageable
    #    (only the flipped page is gone; records are spread across pages).
    assert report.recoverable, report.summary()
    assert report.output == os.fspath(dst)
    # 2. A single flipped byte can never slip past the page CRC, so no
    #    survivor can contradict another.
    assert report.conflicts == 0
    # 3. The accounting is self-consistent and exact.
    assert report.lost_pages == len(report.quarantined_pages)
    if report.expected is not None:
        assert report.lost == {
            kind: max(0, report.expected[kind] - report.salvaged.get(kind, 0))
            for kind in ("nodes", "edges", "points")
        }
    # 4. The rebuilt store is clean and contains ONLY pristine data:
    #    survivors match the originals exactly — no silent corruption.
    assert verify_store(dst) == []
    edges, points = _scan_store(dst)
    p_edges, p_points = pristine_scan
    assert edges <= p_edges, "repair invented or corrupted an edge"
    assert points <= p_points, "repair invented or corrupted a point"
    assert len(edges) == report.salvaged.get("edges", 0)
    assert len(points) == report.salvaged.get("points", 0)
    # 5. Nothing lost => everything present.
    if report.full_recovery:
        assert (edges, points) == pristine_scan
    return report


class TestBitFlipRepairSweep:
    @pytest.mark.parametrize("position", ["first", "middle", "last"])
    def test_repair_every_flipped_page(self, pristine, tmp_path, position):
        path, num_pages, scan = pristine
        offset_in_frame = {
            "first": 0,
            "middle": _STRIDE // 2,
            "last": _STRIDE - 1,
        }[position]
        work = str(tmp_path / "flipped.db")
        dst = str(tmp_path / "repaired.db")
        full, partial = 0, 0
        for pid in range(num_pages):
            shutil.copyfile(path, work)
            with open(work, "r+b") as fh:
                fh.seek(pid * _STRIDE + offset_in_frame)
                byte = fh.read(1)
                fh.seek(pid * _STRIDE + offset_in_frame)
                fh.write(bytes([byte[0] ^ 0xFF]))
            report = _check_repair(work, dst, scan)
            if report.full_recovery:
                full += 1
            else:
                partial += 1
        # The sweep must exercise both outcomes: flips in redundant pages
        # (indexes, padding) recover fully; flips in data pages lose
        # exactly that page's records.
        assert full > 0, f"no flip recovered fully ({position})"
        assert partial > 0, f"no flip ever lost data ({position})"

    def test_repair_is_deterministic(self, pristine, tmp_path):
        path, num_pages, scan = pristine
        work = str(tmp_path / "flipped.db")
        shutil.copyfile(path, work)
        pid = num_pages // 2
        with open(work, "r+b") as fh:
            fh.seek(pid * _STRIDE + 7)
            byte = fh.read(1)
            fh.seek(pid * _STRIDE + 7)
            fh.write(bytes([byte[0] ^ 0xFF]))
        a = _check_repair(work, str(tmp_path / "a.db"), scan)
        b = _check_repair(work, str(tmp_path / "b.db"), scan)
        sa, sb = a.summary(), b.summary()
        sa.pop("output"), sb.pop("output")
        assert sa == sb


class TestTruncatedAndGarbage:
    def test_truncated_store_salvages_prefix(self, pristine, tmp_path):
        path, num_pages, scan = pristine
        work = str(tmp_path / "trunc.db")
        shutil.copyfile(path, work)
        keep = (num_pages * _STRIDE * 3) // 5
        with open(work, "r+b") as fh:
            fh.truncate(keep)
        net, pts, report = salvage_store(work)
        assert report.recoverable
        # Survivors only — never fabricated records.
        p_edges, p_points = scan
        if net is not None:
            assert {
                (u, v, round(w, 9)) for u, v, w in net.edges()
            } <= p_edges
        if pts is not None:
            assert {
                (p.point_id, p.u, p.v, round(p.offset, 9), p.label)
                for p in pts
            } <= p_points

    def test_mid_frame_truncation_quarantines_tail(self, pristine, tmp_path):
        """A torn final frame (partial page write + crash) is quarantined,
        not parsed."""
        path, num_pages, scan = pristine
        work = str(tmp_path / "torn.db")
        shutil.copyfile(path, work)
        size = os.path.getsize(work)
        with open(work, "r+b") as fh:
            fh.truncate(size - _STRIDE // 3)
        _check_repair(work, str(tmp_path / "repaired.db"), scan)

    def test_pure_garbage_is_unrecoverable_not_a_crash(self, tmp_path):
        work = tmp_path / "garbage.db"
        rng_bytes = bytes((i * 73 + 41) % 256 for i in range(8192))
        work.write_bytes(rng_bytes)
        net, pts, report = salvage_store(work)
        assert net is None and pts is None
        assert not report.recoverable
        dst = tmp_path / "out.db"
        report = repair_store(work, dst)
        assert not report.recoverable
        assert not dst.exists(), "repair wrote output for unrecoverable input"

    def test_empty_file(self, tmp_path):
        work = tmp_path / "empty.db"
        work.write_bytes(b"")
        net, pts, report = salvage_store(work)
        assert net is None and pts is None and not report.recoverable
