"""Shared hypothesis strategies for the clustering property tests."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from tests.conftest import make_random_connected_network, scatter_points


@st.composite
def clustering_instance(
    draw,
    min_nodes=3,
    max_nodes=14,
    max_extra=8,
    min_points=2,
    max_points=12,
    connected_only=False,
):
    """(network, points, rng_seed) for clustering property tests.

    With ``connected_only=False`` the network may be augmented with a second
    disconnected component to exercise unreachable-pair handling.
    """
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    n_nodes = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    net = make_random_connected_network(rng, n_nodes, extra_edges=extra)
    if not connected_only and draw(st.booleans()):
        # Attach an isolated two-node edge carrying one point.
        base = 10_000
        net.add_node(base, x=500.0, y=500.0)
        net.add_node(base + 1, x=501.0, y=500.0)
        net.add_edge(base, base + 1, rng.uniform(0.5, 3.0))
    n_points = draw(st.integers(min_value=min_points, max_value=max_points))
    points = scatter_points(rng, net, n_points)
    return net, points, seed
