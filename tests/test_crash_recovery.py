"""Crash-consistency tests: the build/commit protocol under injected crashes.

The central test is a *crash sweep*: a clean instrumented build counts how
often every write site is hit, then the build is repeated once per (site,
hit) pair with a crash injected exactly there.  After every simulated crash
the store path must either not exist or reopen fully consistent, and any
leftover temp file must be refused with a typed error — never silently
decoded, never a raw ``struct.error``.
"""

from __future__ import annotations

import os
import shutil

import pytest

from repro import faults
from repro.exceptions import StorageError
from repro.faults import CrashPoint, FaultRule
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.storage.netstore import NetworkStore
from repro.storage.pager import PagedFile
from repro.storage.verify import verify_store

PAGE_SIZE = 512

# Every site through which build-time bytes reach the disk.
WRITE_SITES = [
    "pager.write_page",
    "pager.write_header",
    "pager.allocate",
    "pager.flush",
    "bptree.store",
    "flatfile.append",
    "netstore.build.commit",
]

# Sites where a *torn* (partial) physical write is meaningful.
TORN_SITES = ["pager.write_page", "pager.write_header"]


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def make_inputs(n: int = 24) -> tuple[SpatialNetwork, PointSet]:
    net = SpatialNetwork()
    for i in range(n):
        net.add_node(i)
    for i in range(n - 1):
        net.add_edge(i, i + 1, 1.0 + (i % 3))
    # A chord to make the graph non-trivial.
    net.add_edge(0, n - 1, 5.0)
    pts = PointSet(net)
    pid = 0
    for i in range(n - 1):
        for frac in (0.25, 0.75):
            pts.add(i, i + 1, frac * net.edge_weight(i, i + 1), point_id=pid)
            pid += 1
    return net, pts


def snapshot(store: NetworkStore) -> tuple:
    """A full logical scan: every page the high-level API can reach."""
    edges = sorted(store.edges())
    degrees = {node: store.degree(node) for node in store.nodes()}
    pts = sorted(
        (p.point_id, p.u, p.v, p.offset, p.label) for p in store.points()
    )
    return edges, degrees, pts


def count_site_hits(tmp_path, name: str = "count.db") -> dict[str, int]:
    """Clean build with counting armed; returns hits per write site."""
    net, pts = make_inputs()
    # A rule that can never fire keeps the subsystem engaged so every
    # fire() call records its site.
    with faults.plan(FaultRule("no.such.site", "crash", after=10**9)):
        store = NetworkStore.build(
            str(tmp_path / name), net, pts, page_size=PAGE_SIZE
        )
        # Read the counters before close(): closing the *returned* store
        # fires more header/flush hits that a sweep around build() alone
        # would never reach.
        counts = {site: faults.hits(site) for site in WRITE_SITES}
    store.close()
    return counts


def assert_typed_or_absent(path: str) -> None:
    """A post-crash artifact must be refused with a typed error or be a
    fully committed, openable paged file — never raw decode garbage."""
    if not os.path.exists(path):
        return
    try:
        file = PagedFile(path)
    except StorageError:
        return  # typed refusal: uncommitted / truncated / corrupt
    file.abort()


class TestCrashSweep:
    def test_every_write_site_is_exercised(self, tmp_path):
        counts = count_site_hits(tmp_path)
        for site, n in counts.items():
            assert n >= 1, f"site {site} never hit during a build"

    def test_hit_counts_deterministic(self, tmp_path):
        a = count_site_hits(tmp_path, "a.db")
        b = count_site_hits(tmp_path, "b.db")
        assert a == b

    @pytest.mark.parametrize("site", WRITE_SITES)
    def test_crash_sweep_fresh_build(self, tmp_path, site):
        """Crash at every hit of ``site`` during a fresh build: the target
        path must never materialise half-built."""
        counts = count_site_hits(tmp_path)
        net, pts = make_inputs()
        path = str(tmp_path / "store.db")
        for n in range(1, counts[site] + 1):
            with faults.plan(FaultRule(site, "crash", after=n)):
                with pytest.raises(CrashPoint):
                    NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
            if site == "netstore.build.commit":
                # The crash hits after the temp file was durably committed
                # but before the rename: the target must not exist.
                assert not os.path.exists(path)
            else:
                assert not os.path.exists(path), (
                    f"half-built store appeared at hit {n} of {site}"
                )
            # Any leftover temp file is refused by the store layer...
            tmp = path + ".tmp"
            if os.path.exists(tmp):
                with pytest.raises(StorageError):
                    NetworkStore(tmp)
                # ...and by the pager unless it was durably committed.
                assert_typed_or_absent(tmp)
        # After the whole sweep a clean build still succeeds.
        store = NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
        try:
            assert snapshot(store)[0]  # non-empty edge scan
        finally:
            store.close()

    @pytest.mark.parametrize("site", WRITE_SITES)
    def test_crash_sweep_preserves_previous_store(self, tmp_path, site):
        """Crashing a *rebuild* leaves the previous committed store intact."""
        counts = count_site_hits(tmp_path)
        net, pts = make_inputs()
        path = str(tmp_path / "store.db")
        store = NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
        try:
            pristine = snapshot(store)
        finally:
            store.close()
        # First and last hit of each site bound the build's write window.
        for n in {1, counts[site]}:
            with faults.plan(FaultRule(site, "crash", after=n)):
                with pytest.raises(CrashPoint):
                    NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
            reopened = NetworkStore(path)
            try:
                assert snapshot(reopened) == pristine
            finally:
                reopened.close()

    @pytest.mark.parametrize("site", TORN_SITES)
    def test_torn_write_sweep(self, tmp_path, site):
        """A torn physical write must surface as a typed error on reopen —
        the stale CRC trailer can never decode as data."""
        counts = count_site_hits(tmp_path)
        net, pts = make_inputs()
        path = str(tmp_path / "store.db")
        for n in range(1, counts[site] + 1):
            rule = FaultRule(site, "torn", after=n, tear_fraction=0.5)
            with faults.plan(rule):
                with pytest.raises(CrashPoint):
                    NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
            assert not os.path.exists(path)
            tmp = path + ".tmp"
            assert os.path.exists(tmp)
            # The temp file is uncommitted *and* carries a torn frame:
            # the pager refuses it outright.
            with pytest.raises(StorageError):
                PagedFile(tmp)
            # The forensic path sees the damage too.
            findings = verify_store(tmp)
            assert findings, f"verify_store found nothing after torn {site}@{n}"

    def test_verify_reports_uncommitted_temp(self, tmp_path):
        net, pts = make_inputs()
        path = str(tmp_path / "store.db")
        with faults.plan(FaultRule("netstore.build.commit", "crash", after=1)):
            with pytest.raises(CrashPoint):
                NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
        tmp = path + ".tmp"
        assert os.path.exists(tmp)
        # Committed before the rename crash: verify finds a healthy file.
        assert verify_store(tmp) == []
        # But the store layer still refuses the .tmp name.
        with pytest.raises(StorageError):
            NetworkStore(tmp)

    def test_stale_temp_removed_by_next_build(self, tmp_path):
        net, pts = make_inputs()
        path = str(tmp_path / "store.db")
        with faults.plan(FaultRule("bptree.store", "crash", after=1)):
            with pytest.raises(CrashPoint):
                NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
        assert os.path.exists(path + ".tmp")
        store = NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
        try:
            assert not os.path.exists(path + ".tmp")
            assert verify_store(path) == []
        finally:
            store.close()

    def test_non_crash_build_failure_removes_temp(self, tmp_path):
        net, pts = make_inputs()
        path = str(tmp_path / "store.db")
        with faults.plan(FaultRule("flatfile.append", "error", after=2)):
            with pytest.raises(OSError):
                NetworkStore.build(path, net, pts, page_size=PAGE_SIZE)
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")


class TestCommitProtocol:
    def test_fresh_file_is_uncommitted_until_close(self, tmp_path):
        path = str(tmp_path / "f.db")
        file = PagedFile(path, page_size=PAGE_SIZE)
        assert not file.committed
        pid = file.allocate()
        file.write_page(pid, b"hello")
        file.abort()  # crash before commit
        with pytest.raises(StorageError, match="never cleanly committed"):
            PagedFile(path)
        # Forensics can still look inside.
        file = PagedFile(path, allow_uncommitted=True)
        assert file.read_page(pid).rstrip(b"\x00") == b"hello"
        file.close()  # clean close commits
        file = PagedFile(path)
        assert file.committed
        file.close()

    def test_mutation_clears_commit_flag_on_disk(self, tmp_path):
        path = str(tmp_path / "f.db")
        with PagedFile(path, page_size=PAGE_SIZE) as file:
            pid = file.allocate()
        file = PagedFile(path)
        assert file.committed
        file.write_page(pid, b"dirty")
        # The flag was cleared *before* the page write reached the disk.
        with open(path, "rb") as fh:
            raw = fh.read(32)
        flags = int.from_bytes(raw[6:8], "little")
        assert flags & 0x0001 == 0
        file.abort()
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_commit_makes_reopenable_mid_session(self, tmp_path):
        path = str(tmp_path / "f.db")
        file = PagedFile(path, page_size=PAGE_SIZE)
        pid = file.allocate()
        file.write_page(pid, b"v1")
        file.commit()
        file.abort()  # crash *after* an explicit commit: still reopenable
        with PagedFile(path) as file:
            assert file.read_page(pid).rstrip(b"\x00") == b"v1"

    def test_empty_file_refused(self, tmp_path):
        path = str(tmp_path / "zero.db")
        open(path, "wb").close()
        with pytest.raises(StorageError, match="empty"):
            PagedFile(path)

    def test_truncated_header_refused(self, tmp_path):
        path = str(tmp_path / "trunc.db")
        with open(path, "wb") as fh:
            fh.write(b"RPRO\x02\x00")
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_foreign_file_refused(self, tmp_path):
        path = str(tmp_path / "foreign.db")
        with open(path, "wb") as fh:
            fh.write(b"not a paged file" * 64)
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_wrong_version_refused(self, tmp_path):
        path = str(tmp_path / "f.db")
        with PagedFile(path, page_size=PAGE_SIZE):
            pass
        with open(path, "r+b") as fh:
            raw = bytearray(fh.read())
            raw[4] = 99  # version field
            # Keep the CRC honest so only the version check trips.
            import struct
            import zlib

            payload = bytes(raw[:PAGE_SIZE])
            raw[PAGE_SIZE : PAGE_SIZE + 4] = struct.pack(
                "<I", zlib.crc32(payload) & 0xFFFFFFFF
            )
            fh.seek(0)
            fh.write(raw)
        with pytest.raises(StorageError, match="version"):
            PagedFile(path)

    def test_netstore_refuses_missing_and_tmp(self, tmp_path):
        with pytest.raises(StorageError, match="no such network store"):
            NetworkStore(str(tmp_path / "absent.db"))
        tmp = tmp_path / "x.db.tmp"
        tmp.write_bytes(b"anything")
        with pytest.raises(StorageError, match="temp file"):
            NetworkStore(str(tmp))

    def test_copy_of_committed_store_opens(self, tmp_path):
        """A committed store is self-contained: a byte-for-byte copy opens."""
        net, pts = make_inputs()
        src = str(tmp_path / "src.db")
        NetworkStore.build(src, net, pts, page_size=PAGE_SIZE).close()
        dst = str(tmp_path / "dst.db")
        shutil.copyfile(src, dst)
        a, b = NetworkStore(src), NetworkStore(dst)
        try:
            assert snapshot(a) == snapshot(b)
        finally:
            a.close()
            b.close()
