"""Tests for network k-NN graphs."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.distance import network_distance
from repro.network.graph import SpatialNetwork
from repro.network.knngraph import build_knn_graph, mutual_knn_edges
from repro.network.points import PointSet

from tests.strategies import clustering_instance


class TestBuildKnnGraph:
    def test_known_neighbors(self, small_network, small_points):
        # d(p0,p1)=1, d(p0,p2)=2.5, d(p0,p3)=5.5.
        graph = build_knn_graph(small_network, small_points, k=2)
        assert [pid for pid, _ in graph[0]] == [1, 2]
        assert graph[0][0][1] == pytest.approx(1.0)

    def test_every_point_has_entry(self, small_network, small_points):
        graph = build_knn_graph(small_network, small_points, k=1)
        assert set(graph) == set(small_points.point_ids())
        assert all(len(nbrs) == 1 for nbrs in graph.values())

    def test_k_capped_by_population(self, small_network, small_points):
        graph = build_knn_graph(small_network, small_points, k=10)
        assert all(len(nbrs) == 3 for nbrs in graph.values())

    def test_disconnected_component(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.3, point_id=0)
        ps.add(1, 2, 0.7, point_id=1)
        ps.add(3, 4, 0.5, point_id=2)
        graph = build_knn_graph(net, ps, k=2)
        assert [pid for pid, _ in graph[2]] == []
        assert [pid for pid, _ in graph[0]] == [1]

    def test_validation(self, small_network, small_points):
        with pytest.raises(ParameterError):
            build_knn_graph(small_network, small_points, k=0)


class TestMutualEdges:
    def test_mutual_pairs_only(self, small_network, small_points):
        graph = build_knn_graph(small_network, small_points, k=1)
        # NN pairs: 0->1, 1->0, 2->1, 3->2. Only (0,1) is mutual.
        mutual = mutual_knn_edges(graph)
        assert [(a, b) for a, b, _ in mutual] == [(0, 1)]

    def test_sorted_by_distance(self, small_network, small_points):
        graph = build_knn_graph(small_network, small_points, k=3)
        mutual = mutual_knn_edges(graph)
        dists = [d for _, _, d in mutual]
        assert dists == sorted(dists)

    def test_full_k_makes_everything_mutual(self, small_network, small_points):
        graph = build_knn_graph(small_network, small_points, k=3)
        mutual = mutual_knn_edges(graph)
        assert len(mutual) == 6  # all 4*3/2 pairs


@settings(max_examples=30, deadline=None)
@given(clustering_instance(min_points=3, max_points=9), st.integers(1, 3))
def test_property_knn_lists_are_true_nearest(data, k):
    net, points, seed = data
    aug = AugmentedView(net, points)
    graph = build_knn_graph(net, points, k=k)
    pts = list(points)
    for p in pts:
        brute = sorted(
            (network_distance(aug, p, q), q.point_id)
            for q in pts
            if q.point_id != p.point_id
            and _reachable(aug, p, q)
        )
        got = [d for _, d in graph[p.point_id]]
        want = [d for d, _ in brute[:k]]
        assert got == pytest.approx(want), f"seed={seed} pid={p.point_id}"


def _reachable(aug, p, q) -> bool:
    from repro.exceptions import UnreachableError

    try:
        network_distance(aug, p, q)
        return True
    except UnreachableError:
        return False
