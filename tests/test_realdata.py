"""Tests for the real road-network file loaders."""

from __future__ import annotations

import pytest

from repro.datagen.realdata import load_cnode_cedge, load_edge_list_file
from repro.exceptions import ParameterError
from repro.network.components import largest_connected_component


@pytest.fixture
def sample_files(tmp_path):
    """A tiny network in the classic .cnode/.cedge format."""
    cnode = tmp_path / "city.cnode"
    cnode.write_text(
        "0 10.0 20.0\n"
        "1 11.0 20.0\n"
        "2 11.0 21.0\n"
        "3 50.0 50.0\n"
        "4 51.0 50.0\n"
    )
    cedge = tmp_path / "city.cedge"
    cedge.write_text(
        "0 0 1 1.5\n"
        "1 1 2 1.0\n"
        "2 0 2 2.0\n"
        "3 3 4 1.0\n"  # a second, disconnected component
    )
    return cnode, cedge


class TestCnodeCedge:
    def test_loads_nodes_edges_coords(self, sample_files):
        cnode, cedge = sample_files
        net = load_cnode_cedge(cnode, cedge)
        assert net.num_nodes == 5
        assert net.num_edges == 4
        assert net.node_coords(0) == (10.0, 20.0)
        assert net.edge_weight(0, 1) == pytest.approx(1.5)

    def test_paper_cleaning_step(self, sample_files):
        """The paper: 'we extracted the largest connected component'."""
        cnode, cedge = sample_files
        net = load_cnode_cedge(cnode, cedge)
        lcc = largest_connected_component(net)
        assert set(lcc.nodes()) == {0, 1, 2}

    def test_comments_blank_lines_and_commas(self, tmp_path):
        cnode = tmp_path / "c.cnode"
        cnode.write_text("# header\n\n0, 0.0, 0.0\n1, 1.0, 0.0\n")
        cedge = tmp_path / "c.cedge"
        cedge.write_text("0, 0, 1, 2.5\n")
        net = load_cnode_cedge(cnode, cedge)
        assert net.edge_weight(0, 1) == pytest.approx(2.5)

    def test_zero_length_edges_clamped(self, tmp_path):
        cnode = tmp_path / "z.cnode"
        cnode.write_text("0 0 0\n1 1 0\n")
        cedge = tmp_path / "z.cedge"
        cedge.write_text("0 0 1 0.0\n")
        net = load_cnode_cedge(cnode, cedge)
        assert net.edge_weight(0, 1) > 0

    def test_self_loops_skipped(self, tmp_path):
        cnode = tmp_path / "s.cnode"
        cnode.write_text("0 0 0\n1 1 0\n")
        cedge = tmp_path / "s.cedge"
        cedge.write_text("0 0 0 1.0\n1 0 1 1.0\n")
        net = load_cnode_cedge(cnode, cedge)
        assert net.num_edges == 1

    def test_duplicate_edges_keep_minimum(self, tmp_path):
        cnode = tmp_path / "d.cnode"
        cnode.write_text("0 0 0\n1 1 0\n")
        cedge = tmp_path / "d.cedge"
        cedge.write_text("0 0 1 5.0\n1 1 0 2.0\n2 0 1 9.0\n")
        net = load_cnode_cedge(cnode, cedge)
        assert net.edge_weight(0, 1) == pytest.approx(2.0)

    def test_malformed_node_line(self, tmp_path):
        cnode = tmp_path / "bad.cnode"
        cnode.write_text("0 1.0\n")
        cedge = tmp_path / "bad.cedge"
        cedge.write_text("")
        with pytest.raises(ParameterError):
            load_cnode_cedge(cnode, cedge)

    def test_unknown_node_in_edge(self, tmp_path):
        cnode = tmp_path / "u.cnode"
        cnode.write_text("0 0 0\n")
        cedge = tmp_path / "u.cedge"
        cedge.write_text("0 0 7 1.0\n")
        with pytest.raises(ParameterError):
            load_cnode_cedge(cnode, cedge)

    def test_loaded_network_clusters(self, sample_files):
        """End to end: load, place objects, cluster."""
        from repro.core.epslink import EpsLink
        from repro.network.points import PointSet

        cnode, cedge = sample_files
        net = load_cnode_cedge(cnode, cedge)
        ps = PointSet(net)
        ps.add(0, 1, 0.2)
        ps.add(0, 1, 0.9)
        ps.add(3, 4, 0.5)
        result = EpsLink(net, ps, eps=1.0).run()
        assert result.num_clusters == 2


class TestEdgeListFile:
    def test_plain_edges(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# u v w\n1 2 3.5\n2 3 1.0\n")
        net = load_edge_list_file(path)
        assert net.num_edges == 2
        assert net.edge_weight(1, 2) == pytest.approx(3.5)

    def test_with_coords(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("1 2 5.0 0.0 0.0 3.0 4.0\n")
        net = load_edge_list_file(path, has_coords=True)
        assert net.node_coords(2) == (3.0, 4.0)

    def test_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n")
        with pytest.raises(ParameterError):
            load_edge_list_file(path)
