"""Tests for the network Voronoi assignment service."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ParameterError, PointNotFoundError
from repro.network.augmented import AugmentedView
from repro.network.distance import network_distance
from repro.network.voronoi import network_voronoi, node_voronoi

from tests.strategies import clustering_instance


class TestValidation:
    def test_empty_sites(self, small_network, small_points):
        with pytest.raises(ParameterError):
            network_voronoi(small_network, small_points, [])
        with pytest.raises(ParameterError):
            node_voronoi(small_network, small_points, [])

    def test_missing_site(self, small_network, small_points):
        with pytest.raises(PointNotFoundError):
            network_voronoi(small_network, small_points, [99])

    def test_duplicate_sites_deduplicated(self, small_network, small_points):
        assignment, _ = network_voronoi(small_network, small_points, [0, 0, 3])
        assert set(assignment.values()) <= {0, 3}


class TestKnownAssignments:
    """Fixture distances: d(p0,p1)=1, d(p1,p2)=1.5, d(p0,p3)=5.5,
    d(p2,p3)=4."""

    def test_two_sites(self, small_network, small_points):
        assignment, distance = network_voronoi(small_network, small_points, [0, 3])
        assert assignment[0] == 0
        assert assignment[3] == 3
        assert assignment[1] == 0  # d=1 vs 5.5
        assert assignment[2] == 0  # d=2.5 vs 4
        assert distance[1] == pytest.approx(1.0)
        assert distance[2] == pytest.approx(2.5)
        assert distance[0] == 0.0

    def test_sites_have_zero_distance(self, small_network, small_points):
        _, distance = network_voronoi(small_network, small_points, [1, 2])
        assert distance[1] == 0.0
        assert distance[2] == 0.0

    def test_node_voronoi_matches_medoid_dist_find(self, small_network, small_points):
        from repro.core.kmedoids import NetworkKMedoids

        km = NetworkKMedoids(small_network, small_points, k=2, seed=0)
        medoids = [small_points.get(0), small_points.get(3)]
        state = km.medoid_dist_find(medoids)
        owner, dist = node_voronoi(small_network, small_points, [0, 3])
        assert dist == pytest.approx(state.node_dist)
        assert owner == state.node_medoid

    def test_unreachable_points_absent(self):
        from repro.network.graph import SpatialNetwork
        from repro.network.points import PointSet

        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(3, 4, 0.5, point_id=1)
        assignment, _ = network_voronoi(net, ps, [0])
        assert 1 not in assignment


@settings(max_examples=40, deadline=None)
@given(clustering_instance(min_points=3, max_points=10), st.integers(1, 3))
def test_property_assignment_is_argmin(data, n_sites):
    """Every object's assigned site achieves the minimum network distance."""
    net, points, seed = data
    ids = sorted(points.point_ids())
    rng = random.Random(seed)
    sites = rng.sample(ids, min(n_sites, len(ids)))
    assignment, distance = network_voronoi(net, points, sites)
    aug = AugmentedView(net, points)
    for pid, site in assignment.items():
        d_all = []
        for s in sites:
            try:
                d_all.append(network_distance(aug, points.get(pid), points.get(s)))
            except Exception:
                d_all.append(float("inf"))
        assert distance[pid] == pytest.approx(min(d_all), rel=1e-9, abs=1e-9)
