"""Tests for the paged file and LRU buffer manager."""

from __future__ import annotations

import os

import pytest

from repro.exceptions import PageError, StorageError
from repro.storage.pager import BufferManager, PagedFile


@pytest.fixture
def paged(tmp_path):
    f = PagedFile(tmp_path / "test.db", page_size=512)
    yield f
    f.close()


class TestPagedFile:
    def test_new_file_has_header_page(self, paged):
        assert paged.num_pages == 1
        assert paged.page_size == 512

    def test_allocate_and_rw(self, paged):
        pid = paged.allocate()
        assert pid == 1
        paged.write_page(pid, b"hello")
        assert paged.read_page(pid)[:5] == b"hello"
        assert paged.read_page(pid)[5:] == b"\x00" * (512 - 5)

    def test_page_id_validation(self, paged):
        with pytest.raises(PageError):
            paged.read_page(0)  # header page is not directly accessible
        with pytest.raises(PageError):
            paged.read_page(99)

    def test_oversized_write_rejected(self, paged):
        pid = paged.allocate()
        with pytest.raises(PageError):
            paged.write_page(pid, b"x" * 513)

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        with PagedFile(path, page_size=512) as f:
            pid = f.allocate()
            f.write_page(pid, b"durable")
            f.set_meta(b"root=7")
        with PagedFile(path) as f:
            assert f.page_size == 512
            assert f.num_pages == 2
            assert f.read_page(pid)[:7] == b"durable"
            assert f.get_meta() == b"root=7"

    def test_magic_validation(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"not a paged file" * 100)
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_meta_capacity(self, paged):
        with pytest.raises(StorageError):
            paged.set_meta(b"x" * 1000)

    def test_io_counters(self, paged):
        pid = paged.allocate()
        paged.write_page(pid, b"a")
        paged.read_page(pid)
        assert paged.writes == 1
        assert paged.reads == 1

    def test_tiny_page_size_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            PagedFile(tmp_path / "tiny.db", page_size=16)


class TestBufferManager:
    def test_read_caches(self, paged):
        buf = BufferManager(paged, capacity_bytes=512 * 4)
        pid = paged.allocate()
        paged.write_page(pid, b"cached")
        buf.read(pid)
        buf.read(pid)
        assert buf.hits == 1
        assert buf.misses == 1
        assert paged.reads == 1

    def test_write_back_on_flush(self, paged):
        buf = BufferManager(paged, capacity_bytes=512 * 4)
        pid = buf.allocate()
        buf.write(pid, b"dirty")
        assert paged.writes == 0  # not yet written through
        buf.flush()
        assert paged.writes == 1
        assert paged.read_page(pid)[:5] == b"dirty"

    def test_eviction_writes_dirty_pages(self, paged):
        buf = BufferManager(paged, capacity_bytes=512 * 2)  # 2 frames
        pids = [buf.allocate() for _ in range(3)]
        for i, pid in enumerate(pids):
            buf.write(pid, bytes([i]) * 8)
        assert buf.evictions >= 1
        # The evicted dirty page reached the file and reads back correctly.
        buf.flush()
        for i, pid in enumerate(pids):
            assert paged.read_page(pid)[:8] == bytes([i]) * 8

    def test_lru_order(self, paged):
        buf = BufferManager(paged, capacity_bytes=512 * 2)
        a, b, c = (buf.allocate() for _ in range(3))
        for pid in (a, b, c):
            paged.write_page(pid, b"x")
        buf.read(a)
        buf.read(b)
        buf.read(a)  # a is now most recent
        buf.read(c)  # evicts b
        buf.read(a)
        assert buf.hits == 2  # the re-read of a (twice)

    def test_read_through_after_eviction(self, paged):
        buf = BufferManager(paged, capacity_bytes=512)  # 1 frame
        a = buf.allocate()
        b = buf.allocate()
        buf.write(a, b"page-a")
        buf.write(b, b"page-b")  # evicts and persists a
        assert buf.read(a)[:6] == b"page-a"

    def test_capacity_minimum_one(self, paged):
        buf = BufferManager(paged, capacity_bytes=1)
        assert buf.capacity_pages == 1

    def test_stats_and_reset(self, paged):
        buf = BufferManager(paged, capacity_bytes=512 * 4)
        pid = buf.allocate()
        buf.write(pid, b"x")
        buf.read(pid)
        stats = buf.stats()
        assert stats["buffer_hits"] == 1
        buf.reset_stats()
        assert buf.stats()["buffer_hits"] == 0

    def test_drop_cache_forces_reread(self, paged):
        buf = BufferManager(paged, capacity_bytes=512 * 4)
        pid = buf.allocate()
        buf.write(pid, b"x")
        buf.drop_cache()
        buf.read(pid)
        assert buf.misses == 1

    def test_oversized_write_rejected(self, paged):
        buf = BufferManager(paged, capacity_bytes=512 * 4)
        pid = buf.allocate()
        with pytest.raises(PageError):
            buf.write(pid, b"x" * 1000)

    def test_close_flushes(self, tmp_path):
        path = tmp_path / "close.db"
        f = PagedFile(path, page_size=512)
        buf = BufferManager(f, capacity_bytes=512 * 4)
        pid = buf.allocate()
        buf.write(pid, b"flushed")
        buf.close()
        with PagedFile(path) as f2:
            assert f2.read_page(pid)[:7] == b"flushed"


class TestConcurrentReads:
    """The serve worker pool reads one shared file/buffer concurrently.

    Without per-instance locks an interleaved seek+read returns another
    thread's page frame — whose CRC still validates, so the only symptom
    is silently wrong data (or a KeyError out of the LRU bookkeeping).
    """

    N_PAGES = 24
    N_THREADS = 8
    ROUNDS = 60

    @staticmethod
    def _payload(pid: int) -> bytes:
        return bytes([pid]) * 16

    def _fill(self, target) -> list[int]:
        write = getattr(target, "write", None) or target.write_page
        pids = [target.allocate() for _ in range(self.N_PAGES)]
        for pid in pids:
            write(pid, self._payload(pid))
        return pids

    def _hammer(self, read, pids):
        import random
        import threading

        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(self.ROUNDS):
                    pid = rng.choice(pids)
                    got = read(pid)[:16]
                    assert got == self._payload(pid), (
                        f"page {pid} returned another page's frame: {got!r}"
                    )
            except BaseException as exc:  # surfaced on the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors, errors[0]

    def test_paged_file_reads_are_thread_safe(self, paged):
        pids = self._fill(paged)
        self._hammer(paged.read_page, pids)

    def test_buffer_manager_reads_are_thread_safe(self, paged):
        # A two-page buffer maximizes miss/eviction churn over the LRU.
        buf = BufferManager(paged, capacity_bytes=512 * 2)
        pids = self._fill(buf)
        buf.flush()
        self._hammer(buf.read, pids)
