"""Cross-module integration tests: full pipelines over generated workloads,
in-memory vs disk-backed equivalence, and the end-to-end claims of the paper
at test scale."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dbscan import NetworkDBSCAN
from repro.core.dendrogram import Dendrogram
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.core.optics import NetworkOPTICS
from repro.core.singlelink import SingleLink
from repro.datagen import (
    ClusterSpec,
    generate_clustered_points,
    grid_city,
    suggest_eps,
)
from repro.datagen.clusters import well_separated_seed_edges
from repro.eval.metrics import NOISE, adjusted_rand_index
from repro.storage.netstore import NetworkStore

from tests.strategies import clustering_instance


@pytest.fixture(scope="module")
def workload():
    """A mid-size city with 6 well-separated planted clusters."""
    network = grid_city(24, 24, removal=0.15, seed=13)
    spec = ClusterSpec(k=6, s_init=0.02, outlier_fraction=0.01)
    seeds = well_separated_seed_edges(network, 6, seed=14)
    points = generate_clustered_points(
        network, 1500, spec, seed=15, seed_edges=seeds
    )
    return network, points, spec, suggest_eps(spec)


class TestFullPipeline:
    def test_density_methods_recover_planted_clusters(self, workload):
        network, points, spec, eps = workload
        truth = {p.point_id: p.label for p in points}
        for algo in (
            EpsLink(network, points, eps=eps, min_sup=2),
            NetworkDBSCAN(network, points, eps=eps, min_pts=2),
        ):
            result = algo.run()
            ari = adjusted_rand_index(truth, dict(result.assignment), noise="drop")
            assert ari > 0.99, algo.algorithm_name

    def test_single_link_cut_equals_epslink(self, workload):
        network, points, spec, eps = workload
        dendrogram = SingleLink(network, points, delta=0.7 * eps).build_dendrogram()
        cut = dendrogram.cut_distance(eps)
        linked = EpsLink(network, points, eps=eps).run()
        assert cut.as_partition() == linked.as_partition()

    def test_kmedoids_ideal_init_not_worse(self, workload):
        network, points, spec, eps = workload
        first_of_cluster: dict[int, int] = {}
        for p in points:
            if p.label != NOISE and p.label not in first_of_cluster:
                first_of_cluster[p.label] = p.point_id
        init = sorted(first_of_cluster.values())
        random_run = NetworkKMedoids(
            network, points, k=6, seed=0, max_bad_swaps=5
        ).run()
        ideal_run = NetworkKMedoids(
            network, points, k=6, seed=0, max_bad_swaps=5, initial_medoids=init
        ).run()
        assert ideal_run.stats["R"] <= random_run.stats["R"] * 1.2

    def test_optics_extraction_tracks_eps(self, workload):
        network, points, spec, eps = workload
        truth = {p.point_id: p.label for p in points}
        optics = NetworkOPTICS(
            network, points, max_eps=2 * eps, min_pts=2
        ).compute()
        flat = optics.extract_dbscan(eps)
        ari = adjusted_rand_index(truth, dict(flat.assignment), noise="drop")
        assert ari > 0.99

    def test_sharpest_level_recovers_clusters(self, workload):
        """Section 5.3 end-to-end: the sharpest dendrogram jump marks the
        planted clustering."""
        network, points, spec, eps = workload
        truth = {p.point_id: p.label for p in points}
        dendrogram = SingleLink(network, points, delta=0.7 * eps).build_dendrogram()
        candidates = dendrogram.sharpest_levels(top=5)
        distances = dendrogram.merge_distances()
        past_eps = [i for i in candidates if distances[i] > eps]
        assert past_eps, "one of the sharpest jumps must cross eps"
        best = dendrogram.clusters_before_merge(min(past_eps))
        ari = adjusted_rand_index(truth, dict(best.assignment), noise="drop")
        assert ari > 0.95

    def test_interesting_levels_includes_sharpest(self, workload):
        network, points, spec, eps = workload
        dendrogram = SingleLink(network, points, delta=0.7 * eps).build_dendrogram()
        broad = set(dendrogram.interesting_levels(window=10, factor=3.0))
        sharp = set(dendrogram.sharpest_levels(top=3, window=10))
        assert sharp <= broad


class TestDiskBackedEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(clustering_instance(min_points=3, max_points=10))
    def test_property_epslink_identical_on_store(self, tmp_path_factory, data):
        net, points, seed = data
        path = tmp_path_factory.mktemp("store") / "net.db"
        in_memory = EpsLink(net, points, eps=2.5).run()
        with NetworkStore.build(path, net, points) as store:
            on_disk = EpsLink(store, store.points(), eps=2.5).run()
        assert on_disk.same_clustering(in_memory), f"seed={seed}"

    @settings(max_examples=10, deadline=None)
    @given(clustering_instance(min_points=3, max_points=8))
    def test_property_single_link_identical_on_store(self, tmp_path_factory, data):
        net, points, seed = data
        path = tmp_path_factory.mktemp("store") / "net.db"
        in_memory = SingleLink(net, points).build_dendrogram()
        with NetworkStore.build(path, net, points) as store:
            on_disk = SingleLink(store, store.points()).build_dendrogram()
        assert on_disk.merge_distances() == pytest.approx(
            in_memory.merge_distances()
        ), f"seed={seed}"

    def test_full_workload_on_store(self, workload, tmp_path):
        network, points, spec, eps = workload
        truth = {p.point_id: p.label for p in points}
        with NetworkStore.build(tmp_path / "city.db", network, points) as store:
            result = EpsLink(store, store.points(), eps=eps, min_sup=2).run()
            ari = adjusted_rand_index(truth, dict(result.assignment), noise="drop")
            assert ari > 0.99
            stats = store.stats()
            assert stats["buffer_hits"] > 0


class TestSerializationPipeline:
    def test_generate_save_load_cluster(self, workload, tmp_path):
        from repro.io import load_workload_file, save_workload

        network, points, spec, eps = workload
        path = tmp_path / "w.json"
        save_workload(path, network, points)
        net2, pts2 = load_workload_file(path)
        original = EpsLink(network, points, eps=eps).run()
        reloaded = EpsLink(net2, pts2, eps=eps).run()
        assert original.same_clustering(reloaded)


class TestSharpestLevels:
    def test_orders_by_significance(self):
        from repro.core.dendrogram import Merge

        # Jumps of relative size 10 (index 4) and 3 (index 8).
        distances = [1.0, 1.1, 1.2, 1.3, 11.0, 11.1, 11.2, 11.3, 14.0]
        merges = []
        for i, d in enumerate(distances):
            merges.append(
                Merge(distance=d, left=i, right=9 + i if i else 9,
                      merged=10 + i, size=i + 2)
            )
        # Construct a simple valid chain dendrogram: leaves 0..9.
        leaves = [[i] for i in range(10)]
        chain = []
        current = 0
        next_id = 10
        for i, d in enumerate(distances):
            chain.append(Merge(distance=d, left=current, right=i + 1,
                               merged=next_id, size=i + 2))
            current = next_id
            next_id += 1
        dendrogram = Dendrogram(leaves, chain)
        top = dendrogram.sharpest_levels(top=2, window=3)
        assert top[0] == 4  # the 10x jump
        assert set(top) == {4, 8}
