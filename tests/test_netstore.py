"""Tests for the disk-backed network store.

Invariant 9: the store answers every adjacency/point query identically to
the in-memory network it was built from — and the clustering algorithms
produce identical results on either backend.
"""

from __future__ import annotations

import random

import pytest

from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.core.singlelink import SingleLink
from repro.exceptions import EdgeNotFoundError, NodeNotFoundError, PointNotFoundError
from repro.storage.ccam import ccam_order, random_order
from repro.storage.netstore import NetworkStore

from tests.conftest import make_random_connected_network, scatter_points


@pytest.fixture
def store(tmp_path, small_network, small_points):
    s = NetworkStore.build(tmp_path / "net.db", small_network, small_points)
    yield s
    s.close()


class TestNetworkProtocol:
    def test_counts(self, store, small_network, small_points):
        assert store.num_nodes == small_network.num_nodes
        assert store.num_edges == small_network.num_edges
        assert len(store.points()) == len(small_points)

    def test_nodes_iteration(self, store, small_network):
        assert sorted(store.nodes()) == sorted(small_network.nodes())

    def test_neighbors_match(self, store, small_network):
        for node in small_network.nodes():
            assert dict(store.neighbors(node)) == dict(small_network.neighbors(node))

    def test_edge_weight(self, store, small_network):
        for u, v, w in small_network.edges():
            assert store.edge_weight(u, v) == pytest.approx(w)
            assert store.edge_weight(v, u) == pytest.approx(w)

    def test_edges_iteration(self, store, small_network):
        assert sorted(store.edges()) == sorted(small_network.edges())

    def test_has_node_and_edge(self, store):
        assert store.has_node(1)
        assert not store.has_node(99)
        assert store.has_edge(1, 2)
        assert not store.has_edge(1, 5)

    def test_missing_node_raises(self, store):
        with pytest.raises(NodeNotFoundError):
            list(store.neighbors(99))

    def test_missing_edge_raises(self, store):
        with pytest.raises(EdgeNotFoundError):
            store.edge_weight(1, 5)

    def test_degree(self, store, small_network):
        for node in small_network.nodes():
            assert store.degree(node) == small_network.degree(node)


class TestPointsProtocol:
    def test_points_on_edge(self, store, small_points):
        sp = store.points()
        for edge in small_points.populated_edges():
            want = [(p.point_id, p.offset, p.label) for p in small_points.points_on_edge(*edge)]
            got = [(p.point_id, p.offset, p.label) for p in sp.points_on_edge(*edge)]
            assert got == want

    def test_empty_edge(self, store):
        assert store.points().points_on_edge(3, 5) == []

    def test_points_from_direction(self, store, small_points):
        sp = store.points()
        assert [p.point_id for p in sp.points_from(2, 1)] == [
            p.point_id for p in small_points.points_from(2, 1)
        ]

    def test_get_by_id(self, store, small_points):
        sp = store.points()
        for p in small_points:
            q = sp.get(p.point_id)
            assert (q.edge, q.offset) == (p.edge, p.offset)

    def test_get_missing(self, store):
        with pytest.raises(PointNotFoundError):
            store.points().get(999)

    def test_iteration_covers_all(self, store, small_points):
        got = {p.point_id for p in store.points()}
        assert got == set(small_points.point_ids())

    def test_populated_edges(self, store, small_points):
        assert sorted(store.points().populated_edges()) == sorted(
            small_points.populated_edges()
        )

    def test_labels_roundtrip(self, tmp_path, small_network):
        from repro.network.points import PointSet

        ps = PointSet(small_network)
        ps.add(1, 2, 0.5, label=3)
        ps.add(1, 2, 1.0, label=-1)
        ps.add(2, 3, 1.0)  # label None
        s = NetworkStore.build(tmp_path / "lab.db", small_network, ps)
        labels = s.points().labels()
        assert labels == {0: 3, 1: -1, 2: None}
        s.close()


class TestPersistence:
    def test_reopen(self, tmp_path, small_network, small_points):
        path = tmp_path / "reopen.db"
        NetworkStore.build(path, small_network, small_points).close()
        with NetworkStore(path) as store:
            assert store.num_nodes == small_network.num_nodes
            assert dict(store.neighbors(1)) == dict(small_network.neighbors(1))
            assert len(store.points()) == len(small_points)


class TestRandomNetworkEquivalence:
    def test_full_equivalence(self, tmp_path):
        rng = random.Random(21)
        net = make_random_connected_network(rng, 60, extra_edges=40)
        points = scatter_points(rng, net, 40)
        with NetworkStore.build(tmp_path / "rand.db", net, points) as store:
            for node in net.nodes():
                assert dict(store.neighbors(node)) == dict(net.neighbors(node))
            sp = store.points()
            for edge in points.populated_edges():
                want = [(p.point_id, p.offset) for p in points.points_on_edge(*edge)]
                got = [(p.point_id, p.offset) for p in sp.points_on_edge(*edge)]
                assert got == want


class TestClusteringOnStore:
    """The same algorithms produce the same clusters on either backend."""

    def test_epslink(self, tmp_path, small_network, small_points):
        in_memory = EpsLink(small_network, small_points, eps=1.5).run()
        with NetworkStore.build(tmp_path / "e.db", small_network, small_points) as store:
            on_disk = EpsLink(store, store.points(), eps=1.5).run()
        assert on_disk.same_clustering(in_memory)

    def test_single_link(self, tmp_path, small_network, small_points):
        in_memory = SingleLink(small_network, small_points).build_dendrogram()
        with NetworkStore.build(tmp_path / "s.db", small_network, small_points) as store:
            on_disk = SingleLink(store, store.points()).build_dendrogram()
        assert on_disk.merge_distances() == pytest.approx(in_memory.merge_distances())

    def test_kmedoids(self, tmp_path):
        rng = random.Random(31)
        net = make_random_connected_network(rng, 30, extra_edges=20)
        points = scatter_points(rng, net, 25)
        in_memory = NetworkKMedoids(net, points, k=3, seed=5).run()
        with NetworkStore.build(tmp_path / "k.db", net, points) as store:
            on_disk = NetworkKMedoids(store, store.points(), k=3, seed=5).run()
        assert on_disk.assignment == in_memory.assignment

    def test_dbscan(self, tmp_path, small_network, small_points):
        from repro.core.dbscan import NetworkDBSCAN

        in_memory = NetworkDBSCAN(small_network, small_points, eps=1.5, min_pts=2).run()
        with NetworkStore.build(tmp_path / "d.db", small_network, small_points) as store:
            on_disk = NetworkDBSCAN(store, store.points(), eps=1.5, min_pts=2).run()
        assert on_disk.same_clustering(in_memory)

    def test_optics(self, tmp_path, small_network, small_points):
        from repro.core.optics import NetworkOPTICS

        in_memory = NetworkOPTICS(small_network, small_points, max_eps=3.0).compute()
        with NetworkStore.build(tmp_path / "o.db", small_network, small_points) as store:
            on_disk = NetworkOPTICS(store, store.points(), max_eps=3.0).compute()
        assert [o.point_id for o in on_disk.ordering] == [
            o.point_id for o in in_memory.ordering
        ]
        for a, b in zip(on_disk.ordering, in_memory.ordering):
            assert a.reachability == pytest.approx(b.reachability)

    def test_edgewise_epslink(self, tmp_path, small_network, small_points):
        from repro.core.epslink import EpsLinkEdgewise

        in_memory = EpsLinkEdgewise(small_network, small_points, eps=1.5).run()
        with NetworkStore.build(tmp_path / "ew.db", small_network, small_points) as store:
            on_disk = EpsLinkEdgewise(store, store.points(), eps=1.5).run()
        assert on_disk.same_clustering(in_memory)


class TestIOInstrumentation:
    def test_stats_accumulate_and_reset(self, tmp_path, small_network, small_points):
        with NetworkStore.build(tmp_path / "io.db", small_network, small_points) as store:
            store.reset_stats()
            store.drop_caches()
            list(store.neighbors(1))
            stats = store.stats()
            assert stats["buffer_misses"] >= 1
            store.reset_stats()
            assert store.stats()["buffer_misses"] == 0

    def test_buffer_hits_on_repeat_access(self, tmp_path, small_network, small_points):
        with NetworkStore.build(tmp_path / "io2.db", small_network, small_points) as store:
            store.drop_caches()
            store.reset_stats()
            list(store.neighbors(1))
            first = store.stats()["buffer_misses"]
            # Clear the decode cache but not the page buffer: the record is
            # re-parsed from cached pages.
            store._adj_cache.clear()
            list(store.neighbors(1))
            assert store.stats()["buffer_misses"] == first


class TestNodeOrdering:
    def test_ccam_order_covers_all_nodes(self, small_network):
        order = ccam_order(small_network)
        assert sorted(order) == sorted(small_network.nodes())

    def test_ccam_neighbors_adjacent_in_order(self):
        """On a path graph the CCAM order is exactly the path order."""
        from repro.network.graph import SpatialNetwork

        net = SpatialNetwork.from_edge_list(
            [(i, i + 1, 1.0) for i in range(10)]
        )
        assert ccam_order(net) == list(range(11))

    def test_random_order_is_permutation(self, small_network):
        order = random_order(small_network, seed=1)
        assert sorted(order) == sorted(small_network.nodes())

    def test_explicit_order_build(self, tmp_path, small_network, small_points):
        order = random_order(small_network, seed=3)
        with NetworkStore.build(
            tmp_path / "ord.db", small_network, small_points, node_order=order
        ) as store:
            assert sorted(store.nodes()) == sorted(small_network.nodes())

    def test_bad_explicit_order(self, tmp_path, small_network, small_points):
        from repro.exceptions import StorageError

        with pytest.raises(StorageError):
            NetworkStore.build(
                tmp_path / "bad.db", small_network, small_points, node_order=[1, 2]
            )
