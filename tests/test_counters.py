"""Tests for the instrumentation helpers."""

from __future__ import annotations

import pytest

from repro.eval.counters import OpCounter, StatsRegistry, Stopwatch


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            pass
        first = sw.elapsed
        with sw:
            pass
        assert sw.elapsed >= first >= 0.0

    def test_double_start_rejected(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestOpCounter:
    def test_addition(self):
        a = OpCounter(heap_pushes=1, nodes_settled=2)
        b = OpCounter(heap_pushes=3, edges_relaxed=4)
        c = a + b
        assert c.heap_pushes == 4
        assert c.nodes_settled == 2
        assert c.edges_relaxed == 4

    def test_reset_and_dict(self):
        c = OpCounter(heap_pops=5)
        assert c.as_dict()["heap_pops"] == 5
        c.reset()
        assert c.as_dict()["heap_pops"] == 0


class TestStatsRegistry:
    def test_report_combines_everything(self):
        reg = StatsRegistry()
        with reg.timer("phase1"):
            pass
        reg.counter("traversal").heap_pushes += 7
        report = reg.report()
        assert report["time.phase1"] >= 0.0
        assert report["ops.traversal.heap_pushes"] == 7

    def test_same_name_returns_same_object(self):
        reg = StatsRegistry()
        assert reg.timer("x") is reg.timer("x")
        assert reg.counter("y") is reg.counter("y")
