"""Durability tests for the ``RWAL`` write-ahead mutation log.

The contract under test: every *acknowledged* mutation (``append``
returned its sequence number) survives any crash, and every
unacknowledged one vanishes atomically on the next open.  The central
test is the crash/torn sweep over :data:`repro.live.wal.APPEND_WRITE_SITES`
— every site through which WAL bytes reach the disk — asserting that a
reopened log contains exactly the acknowledged prefix and that replay is
idempotent and byte-identical across two consecutive opens.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro import faults, obs
from repro.exceptions import ParameterError, WalCorruptError
from repro.faults import CrashPoint, FaultRule
from repro.live.wal import (
    APPEND_WRITE_SITES,
    REPLAY_SITES,
    WriteAheadLog,
    verify_wal,
)

CREATE_SITES = [s for s in APPEND_WRITE_SITES if s != "wal.append.record"]


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def mutation(i: int) -> dict:
    return {"kind": "insert_point", "marker": f"m{i}", "u": 1, "v": 2,
            "offset": float(i)}


def logged(path: str) -> list[tuple[int, dict]]:
    """The full (seq, mutation) contents via a read-only open."""
    wal = WriteAheadLog(path, read_only=True)
    try:
        return list(wal.records())
    finally:
        wal.close()


# ----------------------------------------------------------------------
# Format round-trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_create_append_reopen(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 0
            for i in range(1, 4):
                assert wal.append(mutation(i)) == i
            assert wal.last_seq == 3
            assert wal.appended == 3
        assert logged(path) == [(i, mutation(i)) for i in range(1, 4)]

    def test_append_continues_after_reopen(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            wal.append(mutation(1))
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 1
            assert wal.append(mutation(2)) == 2
        assert [seq for seq, _ in logged(path)] == [1, 2]

    def test_records_from_seq_is_exclusive(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            for i in range(1, 5):
                wal.append(mutation(i))
            assert [s for s, _ in wal.records(from_seq=2)] == [3, 4]
            assert list(wal.records(from_seq=4)) == []

    def test_replay_order_count_and_bounds(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            for i in range(1, 6):
                wal.append(mutation(i))
            seen = []
            n = wal.replay(lambda s, m: seen.append(s), from_seq=1, to_seq=4)
            assert n == 3
            assert seen == [2, 3, 4]
            assert wal.replayed == 3

    def test_records_yield_copies(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            wal.append(mutation(1))
            _, doc = next(wal.records())
            doc["kind"] = "tampered"
            _, fresh = next(wal.records())
            assert fresh["kind"] == "insert_point"

    def test_fsync_latency_recorded(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            wal.append(mutation(1))
            assert wal.last_fsync_s >= 0.0

    def test_appended_counter(self, tmp_path):
        obs.reset()
        obs.enable()
        try:
            path = str(tmp_path / "m.wal")
            with WriteAheadLog(path) as wal:
                wal.append(mutation(1))
                wal.append(mutation(2))
            counters = obs.snapshot()["counters"]
            assert counters.get("wal.appended") == 2
        finally:
            obs.disable()
            obs.reset()


# ----------------------------------------------------------------------
# Open-mode guards
# ----------------------------------------------------------------------
class TestOpenGuards:
    def test_read_only_append_refused(self, tmp_path):
        path = str(tmp_path / "m.wal")
        WriteAheadLog(path).close()
        wal = WriteAheadLog(path, read_only=True)
        with pytest.raises(ParameterError):
            wal.append(mutation(1))
        wal.close()

    def test_read_only_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            WriteAheadLog(str(tmp_path / "absent.wal"), read_only=True)

    def test_temp_path_refused(self, tmp_path):
        with pytest.raises(ParameterError):
            WriteAheadLog(str(tmp_path / "m.wal.tmp"))

    def test_foreign_magic_refused(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with open(path, "wb") as fh:
            fh.write(b"RPCK" + b"\x00" * 28)
        with pytest.raises(WalCorruptError):
            WriteAheadLog(path)

    def test_version_skew_refused(self, tmp_path):
        path = str(tmp_path / "m.wal")
        WriteAheadLog(path).close()
        with open(path, "r+b") as fh:
            buf = bytearray(fh.read(16))
            struct.pack_into("<H", buf, 4, 99)
            import zlib

            struct.pack_into("<I", buf, 12, zlib.crc32(bytes(buf[:12])))
            fh.seek(0)
            fh.write(buf)
        with pytest.raises(WalCorruptError):
            WriteAheadLog(path)


# ----------------------------------------------------------------------
# The durability sweep: crash / torn at every append write site
# ----------------------------------------------------------------------
class TestDurabilitySweep:
    @pytest.mark.parametrize("site", CREATE_SITES)
    @pytest.mark.parametrize("kind", ["crash", "torn"])
    def test_crashed_creation_recreates_cleanly(self, tmp_path, site, kind):
        """Creation crashes leave an unacknowledged residue: a read-write
        open recreates the log, a read-only open refuses typed."""
        path = str(tmp_path / "m.wal")
        rule = FaultRule(site, kind, after=1, tear_fraction=0.5)
        with faults.plan(rule, seed=0):
            with pytest.raises(CrashPoint):
                WriteAheadLog(path)
        # The residue is never silently decoded by readers.
        if os.path.getsize(path) > 0:
            with pytest.raises(WalCorruptError):
                WriteAheadLog(path, read_only=True)
        # A read-write open recreates in place: nothing was acknowledged.
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 0
            assert wal.append(mutation(1)) == 1
        assert logged(path) == [(1, mutation(1))]

    @pytest.mark.parametrize("hit", [1, 2, 3, 4])
    @pytest.mark.parametrize("kind", ["crash", "torn"])
    def test_acked_prefix_survives_append_fault(self, tmp_path, hit, kind):
        """Crash/tear at the n-th record write: exactly the acknowledged
        prefix survives, reopened twice byte-identically."""
        path = str(tmp_path / "m.wal")
        acked: list[int] = []
        rule = FaultRule(
            "wal.append.record", kind, after=hit, tear_fraction=0.5
        )
        with faults.plan(rule, seed=0):
            wal = WriteAheadLog(path)
            with pytest.raises(CrashPoint):
                for i in range(1, 7):
                    acked.append(wal.append(mutation(i)))
            wal.close()
        assert acked == list(range(1, hit))
        # First reopen recovers exactly the acknowledged prefix ...
        with WriteAheadLog(path) as recovered:
            assert recovered.last_seq == len(acked)
            assert list(recovered.records()) == [
                (i, mutation(i)) for i in acked
            ]
        bytes_one = open(path, "rb").read()
        # ... and a second open replays the same records from the same
        # bytes — recovery is idempotent.
        with WriteAheadLog(path) as again:
            replayed: list[tuple[int, dict]] = []
            again.replay(lambda s, m: replayed.append((s, m)))
            assert replayed == [(i, mutation(i)) for i in acked]
        assert open(path, "rb").read() == bytes_one

    def test_torn_tail_truncated_and_counted(self, tmp_path):
        obs.reset()
        obs.enable()
        try:
            path = str(tmp_path / "m.wal")
            rule = FaultRule(
                "wal.append.record", "torn", after=3, tear_fraction=0.5
            )
            with faults.plan(rule, seed=0):
                wal = WriteAheadLog(path)
                wal.append(mutation(1))
                wal.append(mutation(2))
                with pytest.raises(CrashPoint):
                    wal.append(mutation(3))
                wal.close()
            size_with_residue = os.path.getsize(path)
            with WriteAheadLog(path) as recovered:
                assert recovered.last_seq == 2
            assert os.path.getsize(path) < size_with_residue
            counters = obs.snapshot()["counters"]
            assert counters.get("wal.truncated") == 1
        finally:
            obs.disable()
            obs.reset()

    def test_read_only_open_serves_prefix_without_writing(self, tmp_path):
        """A worker's read-only open must serve the valid prefix of a torn
        log and leave the file bytes untouched."""
        path = str(tmp_path / "m.wal")
        rule = FaultRule(
            "wal.append.record", "torn", after=2, tear_fraction=0.5
        )
        with faults.plan(rule, seed=0):
            wal = WriteAheadLog(path)
            wal.append(mutation(1))
            with pytest.raises(CrashPoint):
                wal.append(mutation(2))
            wal.close()
        torn_bytes = open(path, "rb").read()
        ro = WriteAheadLog(path, read_only=True)
        assert list(ro.records()) == [(1, mutation(1))]
        ro.close()
        assert open(path, "rb").read() == torn_bytes

    def test_every_append_site_is_exercised(self, tmp_path):
        """The sweep's site list covers every write a log performs."""
        path = str(tmp_path / "m.wal")
        with faults.plan(FaultRule("no.such.site", "crash", after=10**9)):
            with WriteAheadLog(path) as wal:
                wal.append(mutation(1))
            counts = {site: faults.hits(site) for site in APPEND_WRITE_SITES}
        for site, n in counts.items():
            assert n >= 1, f"append site {site} never hit"

    def test_replay_sites_exercised(self, tmp_path):
        path = str(tmp_path / "m.wal")
        rule = FaultRule(
            "wal.append.record", "torn", after=2, tear_fraction=0.5
        )
        with faults.plan(rule, seed=0):
            wal = WriteAheadLog(path)
            wal.append(mutation(1))
            with pytest.raises(CrashPoint):
                wal.append(mutation(2))
            wal.close()
        with faults.plan(FaultRule("no.such.site", "crash", after=10**9)):
            with WriteAheadLog(path) as wal:
                wal.replay(lambda s, m: None)
            counts = {site: faults.hits(site) for site in REPLAY_SITES}
        for site, n in counts.items():
            assert n >= 1, f"replay site {site} never hit"

    def test_kill_mid_replay_then_idempotent_retry(self, tmp_path):
        """A kill between replayed records loses nothing: the next replay
        from the applier's epoch delivers the remainder exactly once."""
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            for i in range(1, 5):
                wal.append(mutation(i))
        applied: list[int] = []
        rule = FaultRule("wal.replay.record", "crash", after=3)
        with faults.plan(rule, seed=0):
            wal = WriteAheadLog(path, read_only=True)
            with pytest.raises(CrashPoint):
                wal.replay(lambda s, m: applied.append(s))
            wal.close()
        assert applied == [1, 2]
        with WriteAheadLog(path, read_only=True) as wal:
            wal.replay(lambda s, m: applied.append(s), from_seq=applied[-1])
        assert applied == [1, 2, 3, 4]


# ----------------------------------------------------------------------
# Mid-log damage is corruption, not recovery
# ----------------------------------------------------------------------
class TestCorruption:
    def populate(self, tmp_path) -> str:
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            for i in range(1, 4):
                wal.append(mutation(i))
        return path

    def flip_payload_byte(self, path: str, marker: bytes) -> None:
        with open(path, "r+b") as fh:
            buf = fh.read()
            at = buf.index(marker)
            fh.seek(at)
            fh.write(b"X")

    def record_offsets(self, path: str) -> list[int]:
        """Byte offset of every record header, computed structurally."""
        from repro.live.wal import _canonical_payload, _record_bytes

        with WriteAheadLog(path, read_only=True) as wal:
            blobs = [
                _record_bytes(seq, _canonical_payload(doc))
                for seq, doc in wal.records()
            ]
        offset = os.path.getsize(path) - sum(len(b) for b in blobs)
        offsets = []
        for blob in blobs:
            offsets.append(offset)
            offset += len(blob)
        return offsets

    def flip_byte(self, path: str, at: int) -> None:
        with open(path, "r+b") as fh:
            fh.seek(at)
            byte = fh.read(1)
            fh.seek(at)
            fh.write(bytes([byte[0] ^ 0xFF]))

    def test_mid_log_payload_rot_raises(self, tmp_path):
        path = self.populate(tmp_path)
        self.flip_payload_byte(path, b'"m2"')
        with pytest.raises(WalCorruptError, match="mid-log corruption"):
            WriteAheadLog(path)
        with pytest.raises(WalCorruptError):
            WriteAheadLog(path, read_only=True)

    def test_final_record_rot_is_torn_tail(self, tmp_path):
        """Damage coinciding with EOF is indistinguishable from a torn
        append and is truncated, not raised."""
        path = self.populate(tmp_path)
        self.flip_payload_byte(path, b'"m3"')
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 2

    def test_mid_log_header_rot_raises(self, tmp_path):
        """A damaged header with bytes following can never be a torn
        append (a tear leaves a prefix of correct bytes): open raises
        instead of silently truncating acknowledged records away."""
        path = self.populate(tmp_path)
        self.flip_byte(path, self.record_offsets(path)[1])
        with pytest.raises(WalCorruptError, match="mid-log corruption"):
            WriteAheadLog(path)
        with pytest.raises(WalCorruptError):
            WriteAheadLog(path, read_only=True)
        findings = verify_wal(path)
        assert [f.severity for f in findings] == ["error"]

    def test_final_header_rot_at_eof_is_torn_tail(self, tmp_path):
        """A damaged header that is itself the end of file is
        indistinguishable from rot on a torn residue (unacknowledged
        either way) and is truncated."""
        from repro.live.wal import _RECORD

        path = self.populate(tmp_path)
        at = self.record_offsets(path)[2]
        with open(path, "r+b") as fh:
            fh.truncate(at + _RECORD.size)
        self.flip_byte(path, at)
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 2

    def test_truncated_meta_trailer_raises_typed(self, tmp_path):
        """EOF inside the 8-byte meta trailer is typed corruption — not a
        bare struct.error escaping open() and verify_wal()."""
        path = str(tmp_path / "m.wal")
        WriteAheadLog(path).close()
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) - 4)
        with pytest.raises(WalCorruptError, match="truncated meta"):
            WriteAheadLog(path)
        findings = verify_wal(path)
        assert [f.severity for f in findings] == ["error"]

    def test_sequence_discontinuity_raises(self, tmp_path):
        from repro.live.wal import _canonical_payload, _record_bytes

        path = self.populate(tmp_path)
        with open(path, "ab") as fh:
            # A structurally valid record with the wrong sequence number.
            fh.write(_record_bytes(9, _canonical_payload(mutation(9))))
        with pytest.raises(WalCorruptError, match="discontinuity"):
            WriteAheadLog(path)

    def test_meta_rot_raises(self, tmp_path):
        path = str(tmp_path / "m.wal")
        WriteAheadLog(path).close()
        with open(path, "r+b") as fh:
            fh.seek(20)
            fh.write(b"\xff")
        with pytest.raises(WalCorruptError, match="meta"):
            WriteAheadLog(path)


# ----------------------------------------------------------------------
# Offline verification (``repro wal verify``)
# ----------------------------------------------------------------------
class TestVerifyWal:
    def test_clean_log_no_findings(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            wal.append(mutation(1))
        assert verify_wal(path) == []

    def test_missing_file_is_error(self, tmp_path):
        findings = verify_wal(str(tmp_path / "absent.wal"))
        assert [f.severity for f in findings] == ["error"]

    def test_torn_tail_is_warning(self, tmp_path):
        path = str(tmp_path / "m.wal")
        rule = FaultRule(
            "wal.append.record", "torn", after=2, tear_fraction=0.5
        )
        with faults.plan(rule, seed=0):
            wal = WriteAheadLog(path)
            wal.append(mutation(1))
            with pytest.raises(CrashPoint):
                wal.append(mutation(2))
            wal.close()
        findings = verify_wal(path)
        assert [f.severity for f in findings] == ["warning"]
        assert "torn tail" in findings[0].message

    def test_mid_log_rot_is_error(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with WriteAheadLog(path) as wal:
            for i in range(1, 4):
                wal.append(mutation(i))
        with open(path, "r+b") as fh:
            buf = fh.read()
            fh.seek(buf.index(b'"m2"'))
            fh.write(b"X")
        findings = verify_wal(path)
        assert [f.severity for f in findings] == ["error"]

    def test_uncommitted_creation_is_warning(self, tmp_path):
        path = str(tmp_path / "m.wal")
        rule = FaultRule("wal.append.commit_header", "crash", after=1)
        with faults.plan(rule, seed=0):
            with pytest.raises(CrashPoint):
                WriteAheadLog(path)
        findings = verify_wal(path)
        assert [f.severity for f in findings] == ["warning"]
        assert "uncommitted" in findings[0].message

    def test_foreign_magic_is_error(self, tmp_path):
        path = str(tmp_path / "m.wal")
        with open(path, "wb") as fh:
            fh.write(b"NOPE" + b"\x00" * 28)
        findings = verify_wal(path)
        assert [f.severity for f in findings] == ["error"]
