"""Tests for the distance-acceleration layer (repro.perf).

The headline property, asserted from every angle hypothesis can reach:
**accelerated == unaccelerated, bit for bit** — point-to-point distances,
range queries, kNN queries, full k-medoids and ε-Link runs — across
landmark counts, cache sizes, disconnected components, and networks
without coordinates.
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.exceptions import UnreachableError
from repro.core import EpsLink, EpsLinkEdgewise, NetworkKMedoids
from repro.network.augmented import AugmentedView
from repro.network.dijkstra import single_source
from repro.network.distance import network_distance
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.network.queries import knn_query, range_query
from repro.perf import (
    DistanceAccelerator,
    DistanceCache,
    LandmarkIndex,
    unaccelerated_point_distance,
    vector_lower_bound,
    vector_upper_bound,
)
from tests.conftest import (
    make_grid_network,
    make_random_connected_network,
    scatter_points,
)
from tests.strategies import clustering_instance

LANDMARK_COUNTS = [0, 1, 4]
CACHE_MBS = [0.0, 0.5]


def _accelerators(aug):
    """One accelerator per (landmarks, cache) combination under test."""
    return [
        DistanceAccelerator(aug, landmarks=lm, cache_mb=mb)
        for lm in LANDMARK_COUNTS
        for mb in CACHE_MBS
    ]


def _strip_coords(net: SpatialNetwork) -> SpatialNetwork:
    """The same topology with no node coordinates (landmarks need none)."""
    bare = SpatialNetwork(name="bare")
    for node in net.nodes():
        bare.add_node(node)
    for u, v, w in net.edges():
        bare.add_edge(u, v, w)
    return bare


# ---------------------------------------------------------------------------
# LandmarkIndex
# ---------------------------------------------------------------------------


class TestLandmarkIndex:
    def test_deterministic_selection(self, small_network):
        a = LandmarkIndex(small_network, 3)
        b = LandmarkIndex(small_network, 3)
        assert a.landmarks == b.landmarks
        assert len(a) == 3

    def test_tables_match_single_source(self, small_network):
        index = LandmarkIndex(small_network, 4)
        for lm, table in zip(index.landmarks, index._tables):
            assert table == single_source(small_network, lm)

    def test_first_landmark_is_smallest_node(self, small_network):
        index = LandmarkIndex(small_network, 2)
        assert index.landmarks[0] == min(small_network.nodes())

    def test_clamped_to_node_count(self, small_network):
        index = LandmarkIndex(small_network, 100)
        n = len(list(small_network.nodes()))
        assert len(index) <= n
        assert len(set(index.landmarks)) == len(index.landmarks)

    def test_covers_disconnected_components(self):
        net = SpatialNetwork()
        for n in (1, 2, 11, 12):
            net.add_node(n)
        net.add_edge(1, 2, 1.0)
        net.add_edge(11, 12, 1.0)
        index = LandmarkIndex(net, 2)
        reached = set()
        for table in index._tables:
            reached.update(table)
        assert reached == {1, 2, 11, 12}

    def test_node_lower_bound_admissible(self):
        import random

        rng = random.Random(5)
        net = make_random_connected_network(rng, 12, extra_edges=6)
        index = LandmarkIndex(net, 4)
        nodes = sorted(net.nodes())
        for u in nodes:
            truth = single_source(net, u)
            for v in nodes:
                lb = index.node_lower_bound(u, v)
                d = truth.get(v, math.inf)
                # Allow the documented float rounding on the bound.
                assert lb <= d * (1 + 1e-9) + 1e-9 * index.scale

    def test_zero_landmarks(self, small_network):
        assert len(LandmarkIndex(small_network, 0)) == 0


class TestVectorBounds:
    def test_inf_semantics(self):
        # Both unreached: the landmark proves nothing.
        assert vector_lower_bound((math.inf,), (math.inf,)) == 0.0
        # Exactly one unreached: provably different components.
        assert vector_lower_bound((math.inf, 1.0), (3.0, 2.0)) == math.inf
        assert vector_upper_bound((math.inf,), (1.0,)) == math.inf

    def test_basic(self):
        assert vector_lower_bound((5.0, 2.0), (1.0, 2.5)) == 4.0
        assert vector_upper_bound((5.0, 2.0), (1.0, 2.5)) == 4.5


# ---------------------------------------------------------------------------
# The exactness property: accelerated == unaccelerated, bit for bit
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(clustering_instance(max_points=10))
def test_point_distance_bit_identical(instance):
    net, points, _seed = instance
    aug = AugmentedView(net, points)
    pts = list(points)
    for accel in _accelerators(aug):
        for p in pts:
            for q in pts:
                try:
                    expected = network_distance(aug, p, q)
                except UnreachableError:
                    expected = None
                if expected is None:
                    with pytest.raises(UnreachableError):
                        accel.point_distance(p, q)
                    # The cached unreachable verdict raises as well.
                    with pytest.raises(UnreachableError):
                        accel.point_distance(p, q)
                else:
                    assert accel.point_distance(p, q) == expected
                    assert accel.point_distance(p, q) == expected


@settings(max_examples=50, deadline=None)
@given(
    clustering_instance(max_points=10),
    st.floats(min_value=0.0, max_value=30.0),
    st.integers(min_value=1, max_value=12),
)
def test_queries_bit_identical(instance, eps, k):
    net, points, _seed = instance
    aug = AugmentedView(net, points)
    pts = list(points)
    for accel in _accelerators(aug):
        for q in pts:
            for include in (True, False):
                assert accel.range_query(q, eps, include) == range_query(
                    aug, q, eps, include
                )
                assert accel.knn_query(q, k, include) == knn_query(
                    aug, q, k, include
                )


@settings(max_examples=25, deadline=None)
@given(clustering_instance(min_points=3, max_points=10), st.integers(0, 2**31))
def test_kmedoids_bit_identical(instance, algo_seed):
    net, points, _seed = instance
    k = min(3, len(points))
    plain = NetworkKMedoids(net, points, k=k, seed=algo_seed, n_restarts=2).run()
    for lm in (1, 4):
        accel = DistanceAccelerator(
            AugmentedView(net, points), landmarks=lm, cache_mb=0.5
        )
        fast = NetworkKMedoids(
            net, points, k=k, seed=algo_seed, n_restarts=2, accelerator=accel
        ).run()
        assert fast.assignment == plain.assignment
        assert fast.stats["medoids"] == plain.stats["medoids"]
        assert fast.stats["R"] == plain.stats["R"]


@settings(max_examples=25, deadline=None)
@given(
    clustering_instance(max_points=10),
    st.floats(min_value=0.05, max_value=15.0),
)
def test_epslink_bit_identical(instance, eps):
    net, points, _seed = instance
    for cls in (EpsLink, EpsLinkEdgewise):
        plain = cls(net, points, eps=eps).run()
        for lm in (1, 4):
            accel = DistanceAccelerator(
                AugmentedView(net, points), landmarks=lm, cache_mb=0.0
            )
            fast = cls(net, points, eps=eps, accelerator=accel).run()
            assert fast.assignment == plain.assignment


def test_acceleration_needs_no_coordinates():
    import random

    rng = random.Random(9)
    coords_net = make_random_connected_network(rng, 15, extra_edges=5)
    net = _strip_coords(coords_net)
    points = scatter_points(random.Random(10), net, 12)
    aug = AugmentedView(net, points)
    accel = DistanceAccelerator(aug, landmarks=4, cache_mb=0.5)
    pts = list(points)
    for p in pts:
        for q in pts:
            assert accel.point_distance(p, q) == network_distance(aug, p, q)
        assert accel.knn_query(p, 3) == knn_query(aug, p, 3)


def test_exact_on_grid_ties():
    # Unit-weight grids are all ties — the hardest case for any search
    # that reorders or prunes work.
    net = make_grid_network(6, 6)
    import random

    points = scatter_points(random.Random(3), net, 15)
    aug = AugmentedView(net, points)
    accel = DistanceAccelerator(aug, landmarks=4, cache_mb=0.0)
    pts = list(points)
    for p in pts:
        for q in pts:
            assert accel.point_distance(p, q) == network_distance(aug, p, q)
        for k in (1, 5, 20):
            assert accel.knn_query(p, k) == knn_query(aug, p, k)
        for eps in (0.0, 1.0, 3.5):
            assert accel.range_query(p, eps) == range_query(aug, p, eps)


def test_corridor_search_settles_fewer_vertices():
    import random

    rng = random.Random(21)
    net = make_random_connected_network(rng, 60, extra_edges=40)
    points = scatter_points(rng, net, 40)
    aug = AugmentedView(net, points)
    accel = DistanceAccelerator(aug, landmarks=8, cache_mb=0.0)
    pts = list(points)
    total_plain = total_accel = 0
    for p in pts[:10]:
        for q in pts[10:30]:
            d_plain, s_plain = unaccelerated_point_distance(aug, p, q)
            d_accel, s_accel = accel._point_distance_search(p, q)
            assert d_accel == d_plain
            total_plain += s_plain
            total_accel += s_accel
    # The acceptance bar: at least 30% fewer settled vertices.
    assert total_accel <= 0.7 * total_plain


# ---------------------------------------------------------------------------
# DistanceCache
# ---------------------------------------------------------------------------


class TestDistanceCache:
    def test_capacity_from_mb(self):
        cache = DistanceCache(1.0, entry_bytes=1024)
        assert cache.capacity == 1024
        assert cache.enabled

    def test_disabled_cache(self):
        cache = DistanceCache(0.0)
        assert not cache.enabled
        cache.put("k", 1.0)
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DistanceCache(-1.0)
        with pytest.raises(ValueError):
            DistanceCache(1.0, entry_bytes=0)

    def test_lru_eviction_order(self):
        cache = DistanceCache(1.0, entry_bytes=1024 * 1024 // 3)  # capacity 3
        assert cache.capacity == 3
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") == 1  # refresh "a": now "b" is LRU
        cache.put("d", 4)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("d") == 4
        assert cache.evictions == 1

    def test_counters_and_clear(self):
        cache = DistanceCache(1.0)
        cache.get("missing")
        cache.put("k", 2.5)
        assert cache.get("k") == 2.5
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["invalidations"] == 1

    def test_put_refreshes_existing_key(self):
        cache = DistanceCache(1.0, entry_bytes=1024 * 1024 // 2)  # capacity 2
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        cache.put("c", 3)
        assert cache.get("b") is None  # b was LRU
        assert cache.get("a") == 10

    def test_thread_safety_smoke(self):
        cache = DistanceCache(1.0, entry_bytes=2048)
        errors = []

        def worker(base):
            try:
                for i in range(500):
                    cache.put(("p2p", base, i), float(i))
                    cache.get(("p2p", base, i))
                    if i % 100 == 0:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 4 * 500


# ---------------------------------------------------------------------------
# Invalidation: mutation can never serve a stale distance
# ---------------------------------------------------------------------------


class TestInvalidation:
    def _setup(self):
        net = SpatialNetwork.from_edge_list(
            [(1, 2, 10.0), (2, 3, 10.0), (1, 3, 10.0)]
        )
        points = PointSet(net)
        points.add(1, 2, 1.0, point_id=0)
        points.add(1, 2, 9.0, point_id=1)
        aug = AugmentedView(net, points)
        accel = DistanceAccelerator(aug, landmarks=2, cache_mb=1.0)
        return net, points, aug, accel

    def test_mutation_without_explicit_invalidate(self):
        net, points, aug, accel = self._setup()
        p0, p1 = points.get(0), points.get(1)
        before = accel.point_distance(p0, p1)
        assert before == 8.0
        # A new point between them changes nothing for p2p distance, but
        # changes the answer of a range query; more importantly the cache
        # must notice the version bump *without* anyone calling
        # invalidate() — the regression this guards: a cache hit skips
        # the traversal layer whose auto-check would otherwise fire.
        hits_before = accel.range_query(p0, 10.0)
        points.add(1, 2, 5.0, point_id=2)
        hits_after = accel.range_query(p0, 10.0)
        assert hits_after == range_query(
            AugmentedView(net, points), p0, 10.0
        )
        assert len(hits_after) == len(hits_before) + 1

    def test_remove_invalidate(self):
        net, points, aug, accel = self._setup()
        p0 = points.get(0)
        assert len(accel.knn_query(p0, 5)) == 1
        points.remove(1)
        assert accel.knn_query(p0, 5) == []

    def test_explicit_invalidate_clears_cache(self):
        net, points, aug, accel = self._setup()
        p0, p1 = points.get(0), points.get(1)
        accel.point_distance(p0, p1)
        assert len(accel.cache) > 0
        aug.invalidate()
        assert len(accel.cache) == 0
        assert accel.cache.invalidations == 1

    def test_shared_cache_cleared_for_all_views(self):
        net, points, aug, accel = self._setup()
        index = LandmarkIndex(net, 2)
        shared = DistanceCache(1.0)
        aug2 = AugmentedView(net, points)
        accel2 = DistanceAccelerator(
            aug2, landmarks=0, cache_mb=0.0, index=index, cache=shared
        )
        p0, p1 = points.get(0), points.get(1)
        accel2.point_distance(p0, p1)
        assert len(shared) == 1
        points.add(2, 3, 5.0, point_id=7)
        # The other view's accelerator syncs on its next call and drops
        # the shared entries.
        accel2.point_distance(p0, p1)
        assert shared.invalidations >= 1


# ---------------------------------------------------------------------------
# Obs integration
# ---------------------------------------------------------------------------


class TestObsCounters:
    def test_cache_counters(self):
        obs.enable(fresh=True)
        try:
            cache = DistanceCache(1.0)
            cache.get("miss")
            cache.put("k", 1.0)
            cache.get("k")
            cache.clear()
            counters = obs.snapshot()["counters"]
            assert counters["perf.cache.misses"] == 1
            assert counters["perf.cache.hits"] == 1
            assert counters["perf.cache.invalidations"] == 1
            assert counters["perf.cache.invalidated_entries"] == 1
        finally:
            obs.disable()

    def test_search_counters(self, small_network, small_points):
        obs.enable(fresh=True)
        try:
            aug = AugmentedView(small_network, small_points)
            accel = DistanceAccelerator(aug, landmarks=2, cache_mb=0.0)
            pts = list(small_points)
            accel.point_distance(pts[0], pts[1])
            accel.range_query(pts[0], 2.0)
            accel.knn_query(pts[0], 2)
            counters = obs.snapshot()["counters"]
            assert counters["perf.landmarks.built"] == 2
            assert counters["perf.p2p.searches"] == 1
            assert counters["perf.range.queries"] == 1
            assert counters["perf.knn.queries"] == 1
        finally:
            obs.disable()

    def test_heuristic_fallback_counter(self):
        from repro.network.astar import point_distance_astar

        net = _strip_coords(
            SpatialNetwork.from_edge_list([(1, 2, 3.0), (2, 3, 4.0)])
        )
        points = PointSet(net)
        points.add(1, 2, 1.0, point_id=0)
        points.add(2, 3, 1.0, point_id=1)
        aug = AugmentedView(net, points)
        obs.enable(fresh=True)
        try:
            point_distance_astar(aug, points.get(0), points.get(1))
            counters = obs.snapshot()["counters"]
            # Once per search, not once per heuristic evaluation.
            assert counters["perf.heuristic.fallback"] == 1
        finally:
            obs.disable()
