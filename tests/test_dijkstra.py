"""Unit and property tests for the Dijkstra traversal primitives."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import UnreachableError
from repro.network.dijkstra import (
    all_pairs_node_distances,
    multi_source,
    node_distance,
    single_source,
    single_source_with_paths,
)
from repro.network.graph import SpatialNetwork

from tests.conftest import make_grid_network, make_random_connected_network


def bellman_ford_reference(network, source: int) -> dict[int, float]:
    """O(VE) reference shortest paths for validating Dijkstra."""
    dist = {node: math.inf for node in network.nodes()}
    dist[source] = 0.0
    for _ in range(network.num_nodes):
        changed = False
        for u, v, w in network.edges():
            if dist[u] + w < dist[v]:
                dist[v] = dist[u] + w
                changed = True
            if dist[v] + w < dist[u]:
                dist[u] = dist[v] + w
                changed = True
        if not changed:
            break
    return {n: d for n, d in dist.items() if math.isfinite(d)}


class TestSingleSource:
    def test_small_network_distances(self, small_network):
        dist = single_source(small_network, 1)
        assert dist == pytest.approx({1: 0.0, 2: 2.0, 3: 5.0, 4: 4.0, 5: 6.0})

    def test_matches_bellman_ford(self):
        rng = random.Random(7)
        for trial in range(10):
            net = make_random_connected_network(rng, 30, extra_edges=20)
            source = rng.randrange(30)
            assert single_source(net, source) == pytest.approx(
                bellman_ford_reference(net, source)
            )

    def test_cutoff_limits_expansion(self, small_network):
        dist = single_source(small_network, 1, cutoff=4.0)
        assert set(dist) == {1, 2, 4}

    def test_targets_early_stop(self, small_network):
        dist = single_source(small_network, 1, targets=(2,))
        assert dist[2] == 2.0
        # Early stop settles the target; farther nodes may be absent.
        assert 5 not in dist or dist[5] == 6.0

    def test_disconnected_component_excluded(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        dist = single_source(net, 1)
        assert set(dist) == {1, 2}


class TestSingleSourceWithPaths:
    def test_predecessors_form_shortest_paths(self, small_network):
        dist, pred = single_source_with_paths(small_network, 1)
        for node, d in dist.items():
            # Walk back to the source accumulating weights.
            total, cur = 0.0, node
            while cur != 1:
                parent = pred[cur]
                total += small_network.edge_weight(parent, cur)
                cur = parent
            assert total == pytest.approx(d)

    def test_source_has_no_predecessor(self, small_network):
        _, pred = single_source_with_paths(small_network, 1)
        assert 1 not in pred


class TestNodeDistance:
    def test_known_distances(self, small_network):
        assert node_distance(small_network, 1, 3) == pytest.approx(5.0)
        assert node_distance(small_network, 2, 5) == pytest.approx(4.0)
        assert node_distance(small_network, 1, 1) == 0.0

    def test_symmetry(self, small_network):
        for u in small_network.nodes():
            for v in small_network.nodes():
                assert node_distance(small_network, u, v) == pytest.approx(
                    node_distance(small_network, v, u)
                )

    def test_unreachable_raises(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        with pytest.raises(UnreachableError):
            node_distance(net, 1, 3)


class TestMultiSource:
    def test_single_seed_equals_single_source(self, small_network):
        dist, label = multi_source(small_network, [(0.0, 1, "a")])
        assert dist == pytest.approx(single_source(small_network, 1))
        assert set(label.values()) == {"a"}

    def test_assigns_nearest_seed(self, grid_network):
        # Seeds at opposite corners of a 5x5 unit grid.
        dist, label = multi_source(
            grid_network, [(0.0, 0, "a"), (0.0, 24, "b")]
        )
        assert label[0] == "a"
        assert label[24] == "b"
        for node in grid_network.nodes():
            da = single_source(grid_network, 0)[node]
            db = single_source(grid_network, 24)[node]
            assert dist[node] == pytest.approx(min(da, db))
            if da < db:
                assert label[node] == "a"
            elif db < da:
                assert label[node] == "b"

    def test_nearest_seed_random_networks(self):
        rng = random.Random(123)
        for trial in range(5):
            net = make_random_connected_network(rng, 40, extra_edges=25)
            seeds = rng.sample(range(40), 4)
            entries = [(0.0, s, s) for s in seeds]
            dist, label = multi_source(net, entries)
            per_seed = {s: single_source(net, s) for s in seeds}
            for node in net.nodes():
                best = min(per_seed[s][node] for s in seeds)
                assert dist[node] == pytest.approx(best)
                assert per_seed[label[node]][node] == pytest.approx(best)

    def test_initial_distances_respected(self, small_network):
        # Seeding node 1 at distance 10 and node 5 at 0 makes 5 win everywhere
        # close to it.
        dist, label = multi_source(small_network, [(10.0, 1, "far"), (0.0, 5, "near")])
        assert label[5] == "near"
        assert label[4] == "near"
        assert dist[4] == pytest.approx(2.0)

    def test_mapping_seed_format(self, small_network):
        dist, label = multi_source(small_network, {1: [(0.0, "a")], 5: [(0.0, "b")]})
        assert label[1] == "a"
        assert label[5] == "b"

    def test_cutoff(self, small_network):
        dist, _ = multi_source(small_network, [(0.0, 1, "a")], cutoff=3.0)
        assert set(dist) == {1, 2}

    def test_unorderable_labels_do_not_raise(self, small_network):
        # Labels of mixed types must never be compared by the heap.
        dist, label = multi_source(
            small_network, [(0.0, 1, ("tuple",)), (0.0, 5, 42)]
        )
        assert len(dist) == small_network.num_nodes


class TestAllPairs:
    def test_matches_repeated_single_source(self, small_network):
        ap = all_pairs_node_distances(small_network)
        for node in small_network.nodes():
            assert ap[node] == pytest.approx(single_source(small_network, node))

    def test_symmetric(self, grid_network):
        ap = all_pairs_node_distances(grid_network)
        nodes = list(grid_network.nodes())
        for u in nodes[:8]:
            for v in nodes[:8]:
                assert ap[u][v] == pytest.approx(ap[v][u])


class TestMetricOnNodes:
    def test_triangle_inequality(self):
        rng = random.Random(99)
        net = make_random_connected_network(rng, 25, extra_edges=15)
        ap = all_pairs_node_distances(net)
        nodes = list(net.nodes())
        for _ in range(200):
            a, b, c = (rng.choice(nodes) for _ in range(3))
            assert ap[a][c] <= ap[a][b] + ap[b][c] + 1e-9
