"""Tests for incremental ε-Link maintenance.

Core invariant: after any sequence of insertions and deletions, the
maintained clustering is identical to EpsLink run from scratch on the
current point set.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.epslink import EpsLink
from repro.core.incremental import IncrementalEpsLink
from repro.exceptions import ParameterError, PointNotFoundError
from repro.network.graph import SpatialNetwork

from tests.conftest import make_random_connected_network


@pytest.fixture
def line():
    return SpatialNetwork.from_edge_list([(1, 2, 20.0)])


class TestValidation:
    def test_bad_eps(self, line):
        with pytest.raises(ParameterError):
            IncrementalEpsLink(line, eps=0.0)

    def test_bad_min_sup(self, line):
        with pytest.raises(ParameterError):
            IncrementalEpsLink(line, eps=1.0, min_sup=0)

    def test_remove_missing(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        with pytest.raises(PointNotFoundError):
            live.remove(7)


class TestInsert:
    def test_isolated_inserts(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        live.insert(1, 2, 1.0)
        live.insert(1, 2, 10.0)
        assert live.num_clusters == 2
        assert len(live) == 2

    def test_insert_joins_cluster(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        a = live.insert(1, 2, 1.0)
        b = live.insert(1, 2, 1.8)
        assert live.num_clusters == 1
        assert live.result().cluster_of(a.point_id) == live.result().cluster_of(
            b.point_id
        )

    def test_insert_bridges_two_clusters(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        live.insert(1, 2, 1.0)
        live.insert(1, 2, 3.0)
        assert live.num_clusters == 2
        live.insert(1, 2, 2.0)
        assert live.num_clusters == 1

    def test_labels_preserved(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        p = live.insert(1, 2, 1.0, label=5)
        assert live.points.get(p.point_id).label == 5


class TestRemove:
    def test_remove_bridge_splits(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        live.insert(1, 2, 1.0, point_id=0)
        live.insert(1, 2, 2.0, point_id=1)
        live.insert(1, 2, 3.0, point_id=2)
        assert live.num_clusters == 1
        live.remove(1)
        assert live.num_clusters == 2

    def test_remove_leaf_keeps_cluster(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        live.insert(1, 2, 1.0, point_id=0)
        live.insert(1, 2, 2.0, point_id=1)
        live.insert(1, 2, 3.0, point_id=2)
        live.remove(2)
        assert live.num_clusters == 1
        assert len(live) == 2

    def test_remove_untouched_clusters_stable(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        live.insert(1, 2, 1.0, point_id=0)
        live.insert(1, 2, 1.5, point_id=1)
        live.insert(1, 2, 10.0, point_id=2)
        live.insert(1, 2, 10.5, point_id=3)
        live.remove(0)
        result = live.result()
        assert result.cluster_of(2) == result.cluster_of(3)
        assert result.cluster_of(1) != result.cluster_of(2)

    def test_remove_last_point(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        p = live.insert(1, 2, 1.0)
        live.remove(p.point_id)
        assert len(live) == 0
        assert live.num_clusters == 0


class TestMinSup:
    def test_small_clusters_reported_as_noise(self, line):
        live = IncrementalEpsLink(line, eps=1.0, min_sup=2)
        live.insert(1, 2, 1.0, point_id=0)
        live.insert(1, 2, 1.5, point_id=1)
        live.insert(1, 2, 10.0, point_id=2)
        result = live.result()
        assert result.outliers() == [2]
        assert result.num_clusters == 1


class TestReweigh:
    def test_reweigh_rescales_offsets_and_relinks(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        live.insert(1, 2, 4.0, point_id=0)
        live.insert(1, 2, 8.0, point_id=1)
        assert live.num_clusters == 2
        # Shrinking the edge to a quarter pulls the points within eps.
        live.reweigh(1, 2, 5.0)
        assert live.points.get(0).offset == pytest.approx(1.0)
        assert live.points.get(1).offset == pytest.approx(2.0)
        assert live.num_clusters == 1

    def test_reweigh_splits_cluster(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        live.insert(1, 2, 4.0, point_id=0)
        live.insert(1, 2, 4.5, point_id=1)
        assert live.num_clusters == 1
        live.reweigh(1, 2, 80.0)
        assert live.num_clusters == 2

    def test_reweigh_invalid_weight(self, line):
        from repro.exceptions import InvalidWeightError

        live = IncrementalEpsLink(line, eps=1.0)
        with pytest.raises(InvalidWeightError):
            live.reweigh(1, 2, 0.0)

    def test_reweigh_matches_scratch(self, line):
        live = IncrementalEpsLink(line, eps=1.0)
        for off in (1.0, 2.5, 9.0, 15.0):
            live.insert(1, 2, off)
        live.reweigh(1, 2, 7.0)
        scratch = EpsLink(line, live.points, eps=1.0).run()
        assert live.result().same_clustering(scratch)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=10**6)),
        min_size=1,
        max_size=30,
    ),
)
def test_property_matches_scratch_after_any_update_sequence(seed, ops):
    """The maintained clustering always equals EpsLink from scratch."""
    rng = random.Random(seed)
    net = make_random_connected_network(rng, rng.randint(3, 12), extra_edges=6)
    edges = list(net.edges())
    eps = rng.uniform(0.5, 8.0)
    live = IncrementalEpsLink(net, eps=eps)
    for is_insert, op_seed in ops:
        op_rng = random.Random(op_seed)
        if is_insert or len(live) == 0:
            u, v, w = edges[op_rng.randrange(len(edges))]
            live.insert(u, v, op_rng.uniform(0.0, w))
        else:
            victim = op_rng.choice(sorted(live.points.point_ids()))
            live.remove(victim)
        if len(live) == 0:
            continue
        scratch = EpsLink(net, live.points, eps=eps).run()
        assert live.result().same_clustering(scratch), (
            f"seed={seed} after op ({is_insert}, {op_seed})"
        )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31),
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=10**6),
        ),
        min_size=1,
        max_size=30,
    ),
)
def test_property_matches_scratch_with_reweighs(seed, ops):
    """Insert/remove/reweigh in any order still equals EpsLink from scratch.

    Half the generated networks carry a disconnected side component, so
    the sweep also covers clusters split across components, bridge-point
    removals, and reweighs of edges no point sits on.
    """
    rng = random.Random(seed)
    net = make_random_connected_network(rng, rng.randint(3, 12), extra_edges=6)
    if rng.random() < 0.5:
        # A disconnected island: two nodes joined only to each other.
        base = max(net.nodes()) + 1
        net.add_node(base, x=-50.0, y=-50.0)
        net.add_node(base + 1, x=-60.0, y=-50.0)
        net.add_edge(base, base + 1, rng.uniform(0.1, 10.0))
    eps = rng.uniform(0.5, 8.0)
    live = IncrementalEpsLink(net, eps=eps)
    for op, op_seed in ops:
        op_rng = random.Random(op_seed)
        edges = [(u, v) for u, v, _w in net.edges()]
        u, v = edges[op_rng.randrange(len(edges))]
        if op == 2:
            live.reweigh(u, v, op_rng.uniform(0.2, 12.0))
        elif op == 1 and len(live) > 0:
            live.remove(op_rng.choice(sorted(live.points.point_ids())))
        else:
            live.insert(u, v, op_rng.uniform(0.0, net.edge_weight(u, v)))
        if len(live) == 0:
            continue
        scratch = EpsLink(net, live.points, eps=eps).run()
        assert live.result().same_clustering(scratch), (
            f"seed={seed} after op ({op}, {op_seed})"
        )
