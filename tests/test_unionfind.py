"""Tests for the weighted Union-Find."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.unionfind import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.num_sets == 3
        assert len(uf) == 3
        assert all(uf.find(i) == i for i in (1, 2, 3))

    def test_union_and_connected(self):
        uf = UnionFind([1, 2, 3])
        assert uf.union(1, 2)
        assert uf.connected(1, 2)
        assert not uf.connected(1, 3)
        assert uf.num_sets == 2

    def test_union_idempotent(self):
        uf = UnionFind([1, 2])
        assert uf.union(1, 2)
        assert not uf.union(1, 2)
        assert uf.num_sets == 1

    def test_add_existing_is_noop(self):
        uf = UnionFind([1])
        uf.add(1)
        assert uf.num_sets == 1

    def test_contains(self):
        uf = UnionFind([1])
        assert 1 in uf
        assert 2 not in uf

    def test_set_size(self):
        uf = UnionFind([1, 2, 3, 4])
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.set_size(1) == 3
        assert uf.set_size(4) == 1

    def test_sets_view(self):
        uf = UnionFind([1, 2, 3, 4])
        uf.union(1, 3)
        sets = uf.sets()
        assert sorted(sorted(m) for m in sets.values()) == [[1, 3], [2], [4]]

    def test_works_with_hashable_items(self):
        uf = UnionFind(["a", (1, 2)])
        uf.union("a", (1, 2))
        assert uf.connected("a", (1, 2))


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_matches_naive_partition(n, seed):
    """Union-Find agrees with a naive set-merging implementation."""
    rng = random.Random(seed)
    uf = UnionFind(range(n))
    naive = {i: {i} for i in range(n)}
    for _ in range(n * 2):
        a, b = rng.randrange(n), rng.randrange(n)
        if a == b:
            continue
        uf.union(a, b)
        sa, sb = naive[a], naive[b]
        if sa is not sb:
            sa |= sb
            for item in sb:
                naive[item] = sa
    for i in range(n):
        for j in range(n):
            assert uf.connected(i, j) == (j in naive[i])
        assert uf.set_size(i) == len(naive[i])
    assert uf.num_sets == len({id(s) for s in naive.values()})
