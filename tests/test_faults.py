"""Tests for repro.faults: injection rules, budgets, and their wiring."""

from __future__ import annotations

import math

import pytest

from repro import faults, obs
from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.exceptions import BudgetExceededError
from repro.faults import CrashPoint, FaultRule, InjectedIOError, OpBudget
from repro.network.dijkstra import multi_source, single_source
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.storage.netstore import NetworkStore


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def line_network(n: int = 12) -> tuple[SpatialNetwork, PointSet]:
    net = SpatialNetwork()
    for i in range(n):
        net.add_node(i)
    for i in range(n - 1):
        net.add_edge(i, i + 1, 1.0)
    pts = PointSet(net)
    for i in range(n - 1):
        pts.add(i, i + 1, 0.5, point_id=i)
    return net, pts


# ----------------------------------------------------------------------
# FaultRule semantics
# ----------------------------------------------------------------------
class TestFaultRule:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            FaultRule("x", "explode", after=1)

    def test_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultRule("x", "crash")
        with pytest.raises(ValueError):
            FaultRule("x", "crash", after=1, probability=0.5)

    def test_after_validated(self):
        with pytest.raises(ValueError):
            FaultRule("x", "crash", after=0)

    def test_probability_validated(self):
        with pytest.raises(ValueError):
            FaultRule("x", "crash", probability=1.5)

    def test_site_patterns(self):
        rule = FaultRule("pager.*", "crash", after=1)
        assert rule.matches("pager.write_page")
        assert rule.matches("pager.flush")
        assert not rule.matches("bptree.store")

    def test_after_n_fires_on_nth_hit(self):
        with faults.plan(FaultRule("site.a", "error", after=3)):
            faults.fire("site.a")
            faults.fire("site.a")
            with pytest.raises(InjectedIOError):
                faults.fire("site.a")
            # times=1 (default): no further firings
            faults.fire("site.a")

    def test_crash_kind_raises_crashpoint(self):
        with faults.plan(FaultRule("site.b", "crash", after=1)):
            with pytest.raises(CrashPoint) as exc:
                faults.fire("site.b")
            assert exc.value.site == "site.b"

    def test_crashpoint_is_not_reproerror(self):
        from repro.exceptions import ReproError

        assert not issubclass(CrashPoint, ReproError)

    def test_probability_deterministic_per_seed(self):
        def run(seed: int) -> list[int]:
            fired = []
            with faults.plan(
                FaultRule("p", "error", probability=0.5, times=None), seed=seed
            ):
                for i in range(40):
                    try:
                        faults.fire("p")
                    except InjectedIOError:
                        fired.append(i)
            return fired

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_torn_rules_ignored_by_fire(self):
        with faults.plan(FaultRule("w", "torn", after=1)):
            faults.fire("w")  # must not raise

    def test_tear_returns_prefix_length(self):
        with faults.plan(FaultRule("w", "torn", after=1, tear_fraction=0.25)):
            assert faults.tear("w", 100) == 25
            assert faults.tear("w", 100) is None  # times=1 exhausted

    def test_tear_never_full_payload(self):
        with faults.plan(FaultRule("w", "torn", after=1, tear_fraction=0.99)):
            assert faults.tear("w", 4) < 4

    def test_site_hits_counted_while_armed(self):
        never = FaultRule("no.such.site", "crash", after=10**9)
        with faults.plan(never):
            faults.fire("a")
            faults.fire("a")
            faults.fire("b")
            assert faults.hits("a") == 2
            assert faults.hits("b") == 1
        assert faults.hits("a") == 0  # plan exit restores counters

    def test_plan_restores_outer_rules(self):
        outer = FaultRule("x", "error", after=10**9)
        faults.install(outer)
        with faults.plan(FaultRule("y", "crash", after=1)):
            assert len(faults.STATE.rules) == 1
            assert faults.STATE.rules[0].site == "y"
        assert outer in faults.STATE.rules

    def test_disarmed_is_disengaged(self):
        assert not faults.STATE.enabled
        assert not faults.STATE.engaged
        faults.fire("anything")  # no-op
        assert faults.tear("anything", 10) is None

    def test_injected_counts_and_obs(self):
        obs.reset()
        obs.enable()
        try:
            rule = FaultRule("c", "error", after=1)
            with faults.plan(rule):
                with pytest.raises(InjectedIOError):
                    faults.fire("c")
                assert faults.injected_counts() == {"c": 1}
            counters = obs.snapshot()["counters"]
            assert counters.get("faults.injected.c") == 1
            assert counters.get("faults.injected_total") == 1
        finally:
            obs.disable()
            obs.reset()

    def test_default_seed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "17")
        assert faults.default_seed() == 17
        monkeypatch.setenv("REPRO_FAULT_SEED", "junk")
        assert faults.default_seed() == 0
        monkeypatch.delenv("REPRO_FAULT_SEED")
        assert faults.default_seed() == 0


# ----------------------------------------------------------------------
# OpBudget
# ----------------------------------------------------------------------
class TestOpBudget:
    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            OpBudget(max_expansions=-1)

    def test_unlimited_never_raises(self):
        budget = OpBudget()
        for _ in range(1000):
            budget.spend_expansions()
        assert budget.expansions == 1000

    def test_exceeded_carries_details(self):
        budget = OpBudget(max_expansions=2)
        budget.spend_expansions()
        budget.spend_expansions()
        with pytest.raises(BudgetExceededError) as exc:
            budget.spend_expansions(partial={"got": "this far"})
        err = exc.value
        assert err.op == "expansions"
        assert err.limit == 2
        assert err.spent == 3
        assert err.partial == {"got": "this far"}

    def test_remaining_and_reset(self):
        budget = OpBudget(max_distance_computations=10)
        budget.spend_distance_computations(4)
        assert budget.remaining()["distance_computations"] == 6
        assert budget.remaining()["expansions"] is None
        budget.reset()
        assert budget.spent()["distance_computations"] == 0

    def test_activate_engages_and_restores(self):
        budget = OpBudget(max_expansions=5)
        assert not faults.STATE.engaged
        with budget.activate():
            assert faults.STATE.engaged
            assert faults.STATE.budget is budget
        assert not faults.STATE.engaged
        assert faults.STATE.budget is None

    def test_activate_nests(self):
        outer, inner = OpBudget(), OpBudget()
        with outer.activate():
            with inner.activate():
                assert faults.STATE.budget is inner
            assert faults.STATE.budget is outer

    def test_abort_bumps_obs_counters(self):
        obs.reset()
        obs.enable()
        try:
            budget = OpBudget(max_page_reads=0)
            with pytest.raises(BudgetExceededError):
                budget.spend_page_reads()
            counters = obs.snapshot()["counters"]
            assert counters.get("budget.aborts") == 1
            assert counters.get("budget.aborts.page_reads") == 1
        finally:
            obs.disable()
            obs.reset()


# ----------------------------------------------------------------------
# Budgets wired through traversal and clustering
# ----------------------------------------------------------------------
class TestBudgetWiring:
    def test_single_source_budget_abort_with_partial(self):
        net, _ = line_network(20)
        budget = OpBudget(max_expansions=5)
        with budget.activate():
            with pytest.raises(BudgetExceededError) as exc:
                single_source(net, 0)
        partial = exc.value.partial
        assert isinstance(partial, dict)
        assert 0 < len(partial) <= 5
        # Settled prefix is correct as far as it got.
        for node, d in partial.items():
            assert d == pytest.approx(float(node))

    def test_single_source_unbudgeted_matches_budgeted(self):
        net, _ = line_network(15)
        plain = single_source(net, 0)
        with OpBudget(max_expansions=10**9).activate():
            guarded = single_source(net, 0)
        assert plain == guarded

    def test_multi_source_budget_abort(self):
        net, _ = line_network(20)
        with OpBudget(max_expansions=3).activate():
            with pytest.raises(BudgetExceededError):
                multi_source(net, [(0.0, 0, "a"), (0.0, 19, "b")])

    def test_epslink_budget_abort_tagged(self):
        net, pts = line_network(20)
        algo = EpsLink(net, pts, eps=3.0, budget=OpBudget(max_expansions=4))
        with pytest.raises(BudgetExceededError) as exc:
            algo.run()
        assert exc.value.algorithm == "eps-link"

    def test_kmedoids_budget_abort_tagged(self):
        net, pts = line_network(20)
        algo = NetworkKMedoids(
            net, pts, k=2, seed=0, budget=OpBudget(max_expansions=3)
        )
        with pytest.raises(BudgetExceededError) as exc:
            algo.run()
        assert exc.value.algorithm == "k-medoids"

    def test_dbscan_budget_abort(self):
        net, pts = line_network(20)
        algo = NetworkDBSCAN(
            net, pts, eps=2.0, budget=OpBudget(max_expansions=2)
        )
        with pytest.raises(BudgetExceededError):
            algo.run()

    def test_generous_budget_identical_result(self):
        net, pts = line_network(20)
        base = EpsLink(net, pts, eps=1.2).run()
        budgeted = EpsLink(
            net, pts, eps=1.2, budget=OpBudget(max_expansions=10**9)
        ).run()
        assert base.assignment == budgeted.assignment

    def test_budget_restored_after_run(self):
        net, pts = line_network(8)
        EpsLink(net, pts, eps=1.2, budget=OpBudget()).run()
        assert faults.STATE.budget is None
        assert not faults.STATE.engaged

    def test_page_read_budget_on_store(self, tmp_path):
        net, pts = line_network(30)
        path = str(tmp_path / "store.db")
        store = NetworkStore.build(path, net, pts, page_size=512)
        store.close()
        store = NetworkStore(path)
        try:
            with OpBudget(max_page_reads=1).activate():
                with pytest.raises(BudgetExceededError) as exc:
                    for node in store.nodes():
                        store.degree(node)
            assert exc.value.op == "page_reads"
        finally:
            store.close()


# ----------------------------------------------------------------------
# Error injection through the storage stack
# ----------------------------------------------------------------------
class TestErrorInjection:
    def test_read_error_surfaces_from_store(self, tmp_path):
        net, pts = line_network(20)
        path = str(tmp_path / "store.db")
        NetworkStore.build(path, net, pts, page_size=512).close()
        store = NetworkStore(path)
        try:
            with faults.plan(FaultRule("pager.read_page", "error", after=1)):
                with pytest.raises(InjectedIOError):
                    for node in store.nodes():
                        store.degree(node)
        finally:
            store.close()

    def test_traversal_crash_site(self):
        net, _ = line_network(10)
        with faults.plan(FaultRule("dijkstra.settle", "crash", after=4)):
            with pytest.raises(CrashPoint):
                single_source(net, 0)

    def test_probability_injection_seeded_from_env(self, tmp_path, monkeypatch):
        """REPRO_FAULT_SEED reproduces a probabilistic failure run exactly."""
        net, pts = line_network(16)

        def failures(seed: int) -> int:
            count = 0
            with faults.plan(
                FaultRule("dijkstra.settle", "error",
                          probability=0.3, times=None),
                seed=seed,
            ):
                for start in range(16):
                    try:
                        single_source(net, start)
                    except InjectedIOError:
                        count += 1
            return count

        assert failures(0) == failures(0)

    def test_math_still_correct_after_cleared_faults(self):
        net, _ = line_network(10)
        with faults.plan(FaultRule("dijkstra.settle", "crash", after=2)):
            with pytest.raises(CrashPoint):
                single_source(net, 0)
        dist = single_source(net, 0)
        assert dist[9] == pytest.approx(9.0)
        assert math.isfinite(dist[5])


# ----------------------------------------------------------------------
# Transient errors and plan lifecycle (recovery-layer contract)
# ----------------------------------------------------------------------
class TestTransientFlag:
    def test_injected_error_defaults_persistent(self):
        err = InjectedIOError("s")
        assert err.transient is False
        assert "transient" not in str(err)

    def test_rule_transient_propagates_to_error(self):
        with faults.plan(FaultRule("t", "error", after=1, transient=True)):
            with pytest.raises(InjectedIOError) as exc:
                faults.fire("t")
        assert exc.value.transient is True
        assert "transient" in str(exc.value)

    def test_rule_default_is_persistent(self):
        with faults.plan(FaultRule("t", "error", after=1)):
            with pytest.raises(InjectedIOError) as exc:
                faults.fire("t")
        assert exc.value.transient is False

    def test_transient_requires_error_kind(self):
        with pytest.raises(ValueError, match="transient"):
            FaultRule("t", "crash", after=1, transient=True)
        with pytest.raises(ValueError, match="transient"):
            FaultRule("t", "torn", after=1, transient=True)

    def test_transient_is_still_an_oserror(self):
        # The retry layer catches OSError; injected blips must be in that
        # hierarchy so one except clause handles real and simulated faults.
        assert issubclass(InjectedIOError, OSError)


class TestPlanLifecycle:
    def test_plan_restores_rules_when_body_raises(self):
        """A crash mid-sweep must not leak the plan's rules into the next
        iteration — the historical bug this guards against."""
        outer = FaultRule("outer.site", "error", after=10**9)
        faults.install(outer)
        with pytest.raises(RuntimeError):
            with faults.plan(FaultRule("inner.site", "crash", after=1)):
                raise RuntimeError("sweep body blew up")
        assert faults.STATE.rules == [outer]
        with pytest.raises(RuntimeError):
            with faults.plan(FaultRule("i2", "crash", after=1)):
                faults.fire("whatever.site")
                raise RuntimeError
        assert faults.STATE.rules == [outer]
        assert faults.hits("whatever.site") == 0  # counters restored too

    def test_rule_reusable_across_plans(self):
        """plan() resets hit/fire counters so one rule drives a sweep."""
        rule = FaultRule("r", "error", after=2)
        for _ in range(3):  # same object, three sweep iterations
            with faults.plan(rule):
                faults.fire("r")
                with pytest.raises(InjectedIOError):
                    faults.fire("r")
        assert rule.fired == 1  # last plan's firing only, not accumulated

    def test_reseed_determinism_of_should_fire(self):
        import random as _random

        def draw(seed: int) -> list[bool]:
            faults.reseed(seed)
            rule = FaultRule("p", "error", probability=0.4, times=None)
            return [rule.should_fire(faults.STATE.rng) for _ in range(64)]

        assert draw(7) == draw(7)
        assert draw(7) != draw(8)
        # reseed() returns the seed it installed and honours explicit values
        assert faults.reseed(123) == 123
        assert isinstance(faults.STATE.rng, _random.Random)

    def test_reseed_none_rereads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "42")
        assert faults.reseed(None) == 42
        monkeypatch.delenv("REPRO_FAULT_SEED")
        assert faults.reseed(None) == 0


# ----------------------------------------------------------------------
# The "kill" kind and plan serialisation (supervised-pool chaos lever)
# ----------------------------------------------------------------------
class TestKillKind:
    def test_kill_raises_workerkilled_when_not_armed(self):
        from repro.faults import WorkerKilled

        assert faults.STATE.kill_real is False  # simulated by default
        with faults.plan(FaultRule("site.k", "kill", after=1)):
            with pytest.raises(WorkerKilled) as exc:
                faults.fire("site.k")
            assert exc.value.site == "site.k"

    def test_workerkilled_is_uncatchable_as_exception(self):
        """SIGKILL semantics: ``except Exception`` recovery paths must not
        swallow a simulated kill — only the process boundary handles it."""
        from repro.faults import WorkerKilled

        assert issubclass(WorkerKilled, BaseException)
        assert not issubclass(WorkerKilled, Exception)
        with faults.plan(FaultRule("site.k", "kill", after=1)):
            with pytest.raises(WorkerKilled):
                try:
                    faults.fire("site.k")
                except Exception:  # the quietly-recovering worker bug
                    pytest.fail("WorkerKilled was caught as Exception")

    def test_kill_fires_once_per_plan_with_after(self):
        from repro.faults import WorkerKilled

        with faults.plan(FaultRule("site.k", "kill", after=2, times=None)):
            faults.fire("site.k")  # hit 1: below the trigger
            with pytest.raises(WorkerKilled):
                faults.fire("site.k")
            # ``after=N`` matches the N-th hit exactly: a process that
            # somehow survives (simulated kills in-process) is not
            # re-killed on later hits, mirroring one SIGKILL per worker.
            faults.fire("site.k")

    def test_rule_roundtrips_through_dict(self):
        rule = FaultRule(
            "queries.settle", "kill", after=7, times=None
        )
        doc = rule.to_dict()
        import json

        rebuilt = FaultRule.from_dict(json.loads(json.dumps(doc)))
        assert rebuilt.site == rule.site
        assert rebuilt.kind == rule.kind
        assert rebuilt.after == rule.after
        assert rebuilt.times is None
        # Config only: hit/fire counters never travel with the plan, so a
        # restarted worker counts from zero (per-worker determinism).
        assert "hits" not in doc and "fired" not in doc
        assert rebuilt.hits == 0 and rebuilt.fired == 0

    def test_roundtrip_preserves_every_kind(self):
        for kind in FaultRule.KINDS:
            extra = {"delay_s": 0.25} if kind == "delay" else {}
            rule = FaultRule("site.x", kind, after=3, times=2, **extra)
            rebuilt = FaultRule.from_dict(rule.to_dict())
            assert rebuilt.kind == kind
            assert rebuilt.times == 2
            assert rebuilt.delay_s == rule.delay_s
