"""Persistent landmark index (RLIX): crash-consistent build, integrity,
mmap-shared serve workers, graceful degradation.

Four guarantees under test:

1. **Atomicity.**  A crash or torn write at *every* builder write site
   (counted per site, injected at every hit) leaves either no artifact at
   the target path or a fully valid one — never a half-built index — and
   any leftover temp file is refused with a typed error.
2. **Integrity.**  An exhaustive single-bit-flip sweep over a persisted
   index: every flip of every bit is detected at load time with a typed
   :class:`IndexCorruptError` / :class:`IndexStaleError` (the file has no
   unchecksummed byte), and the degradation seam turns each one into
   ``(None, reason)`` + a ``perf.index.degraded`` bump instead of a dead
   worker.
3. **Bit identity.**  The mmap-backed index reproduces the in-memory
   :class:`LandmarkIndex` exactly — vectors, bounds, and accelerated
   query results.
4. **Zero rebuilds.**  A ``--processes 3`` supervised pool with a
   persisted index performs no in-worker landmark build, including after
   a kill-fault restart: every ready frame reports ``"mmap"``.
"""

from __future__ import annotations

import json
import math
import os
import random
import shutil
import time

import pytest

pytest.importorskip("numpy")

from repro import faults, obs
from repro.cli import main as cli_main
from repro.exceptions import (
    IndexCorruptError,
    IndexStaleError,
    ReproError,
    StorageError,
)
from repro.faults import CrashPoint, FaultRule
from repro.io import workload_to_dict
from repro.network.augmented import AugmentedView
from repro.perf import (
    DistanceAccelerator,
    LandmarkIndex,
    build_index_file,
    load_index,
    load_index_or_degrade,
    network_fingerprint,
    save_index,
    verify_index,
)
from repro.perf.persist import BUILD_WRITE_SITES
from repro.serve import QueryService, SupervisedPool
from tests.conftest import make_random_connected_network, scatter_points

LANDMARKS = 4


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(23)
    net = make_random_connected_network(rng, 30, extra_edges=10)
    pts = scatter_points(rng, net, 40)
    return net, pts


@pytest.fixture(scope="module")
def workload_path(workload, tmp_path_factory):
    net, pts = workload
    path = tmp_path_factory.mktemp("idx-workload") / "w.json"
    path.write_text(json.dumps(workload_to_dict(net, pts)))
    return str(path)


@pytest.fixture(scope="module")
def index_path(workload, tmp_path_factory):
    """A pristine persisted index over the module workload."""
    net, _pts = workload
    path = tmp_path_factory.mktemp("idx-artifact") / "w.rlix"
    build_index_file(str(path), net, num_landmarks=LANDMARKS)
    return str(path)


# ----------------------------------------------------------------------
# Round trip and bit identity
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_loaded_index_matches_in_memory_exactly(
        self, workload, index_path
    ):
        net, pts = workload
        mem = LandmarkIndex(net, LANDMARKS)
        idx = load_index(index_path, net)
        try:
            assert idx.landmarks == mem.landmarks
            assert idx.scale == mem.scale
            assert len(idx) == len(mem)
            nodes = sorted(net.nodes())
            for n in nodes:
                assert idx.node_vector(n) == mem.node_vector(n)
            for u in nodes[::3]:
                for v in nodes[::4]:
                    assert idx.node_lower_bound(u, v) == \
                        mem.node_lower_bound(u, v)
            for p in pts:
                assert idx.point_vector(p) == mem.point_vector(p)
        finally:
            idx.close()

    def test_accelerated_queries_bit_identical(self, workload, index_path):
        net, pts = workload
        aug = AugmentedView(net, pts)
        idx = load_index(index_path, net)
        try:
            persisted = DistanceAccelerator(
                aug, landmarks=0, cache_mb=0.0, index=idx
            )
            built = DistanceAccelerator(
                AugmentedView(net, pts), landmarks=LANDMARKS, cache_mb=0.0
            )
            for p in list(pts)[::4]:
                for eps in (1.0, 5.0):
                    assert persisted.range_query(p, eps) == \
                        built.range_query(p, eps)
                assert persisted.knn_query(p, 5) == built.knn_query(p, 5)
        finally:
            idx.close()

    def test_unreached_nodes_stay_inf(self, tmp_path):
        # Two components: landmark tables hold inf for the far side, and
        # the round trip must preserve that exactly (component semantics
        # carry real information — see repro.perf.landmarks).
        rng = random.Random(5)
        net = make_random_connected_network(rng, 12, extra_edges=2)
        far = make_random_connected_network(rng, 6, extra_edges=0)
        for u, v, w in far.edges():
            net.add_node(u + 100)
            net.add_node(v + 100)
        for u, v, w in far.edges():
            net.add_edge(u + 100, v + 100, w)
        path = str(tmp_path / "two.rlix")
        build_index_file(path, net, num_landmarks=3)
        mem = LandmarkIndex(net, 3)
        idx = load_index(path, net)
        try:
            for n in sorted(net.nodes()):
                assert idx.node_vector(n) == mem.node_vector(n)
            assert any(
                math.isinf(x)
                for n in net.nodes()
                for x in idx.node_vector(n)
            )
        finally:
            idx.close()

    def test_fingerprint_is_deterministic_and_discriminating(self, workload):
        net, _pts = workload
        fp = network_fingerprint(net)
        clone = make_random_connected_network(random.Random(23), 30,
                                              extra_edges=10)
        assert network_fingerprint(clone) == fp
        other = make_random_connected_network(random.Random(24), 30,
                                              extra_edges=10)
        assert network_fingerprint(other) != fp

    def test_save_refuses_tmp_target(self, workload, tmp_path):
        net, _pts = workload
        index = LandmarkIndex(net, 2)
        with pytest.raises(ReproError):
            save_index(str(tmp_path / "x.tmp"), index, net)


# ----------------------------------------------------------------------
# Crash sweep over every builder write site
# ----------------------------------------------------------------------
def _count_build_hits(net, tmp_path) -> dict[str, int]:
    """Clean instrumented build; returns fault-site hits per write site."""
    with faults.plan(FaultRule("no.such.site", "crash", after=10**9)):
        build_index_file(str(tmp_path / "count.rlix"), net,
                         num_landmarks=LANDMARKS)
        return {site: faults.hits(site) for site in BUILD_WRITE_SITES}


def _assert_valid_or_absent(path: str, net) -> None:
    if not os.path.exists(path):
        return
    idx = load_index(path, net)  # must be fully valid, or raise typed
    idx.close()


class TestCrashSweep:
    def test_every_write_site_is_exercised(self, workload, tmp_path):
        net, _pts = workload
        counts = _count_build_hits(net, tmp_path)
        for site, n in counts.items():
            assert n >= 1, f"write site {site} never hit"

    @pytest.mark.parametrize("site", BUILD_WRITE_SITES)
    def test_crash_sweep_fresh_build(self, workload, tmp_path, site):
        """Crash at every hit of ``site``: the target path must never
        materialise half-built, and any temp leftover is refused."""
        net, _pts = workload
        counts = _count_build_hits(net, tmp_path)
        path = str(tmp_path / "idx.rlix")
        for n in range(1, counts[site] + 1):
            with faults.plan(FaultRule(site, "crash", after=n)):
                with pytest.raises(CrashPoint):
                    build_index_file(path, net, num_landmarks=LANDMARKS)
            assert not os.path.exists(path), (
                f"half-built index appeared at hit {n} of {site}"
            )
            tmp = path + ".tmp"
            if os.path.exists(tmp):
                with pytest.raises(StorageError):
                    load_index(tmp, net)
        # After the whole sweep a clean build still succeeds (leftover
        # temp files are swept by the next build).
        build_index_file(path, net, num_landmarks=LANDMARKS)
        load_index(path, net).close()

    @pytest.mark.parametrize("site", BUILD_WRITE_SITES)
    def test_crash_sweep_preserves_previous_index(
        self, workload, tmp_path, site
    ):
        """A crashed rebuild must leave the previous artifact untouched."""
        net, _pts = workload
        path = str(tmp_path / "idx.rlix")
        build_index_file(path, net, num_landmarks=LANDMARKS)
        with open(path, "rb") as fh:
            pristine = fh.read()
        with faults.plan(FaultRule(site, "crash", after=1)):
            with pytest.raises(CrashPoint):
                build_index_file(path, net, num_landmarks=LANDMARKS)
        with open(path, "rb") as fh:
            assert fh.read() == pristine
        _assert_valid_or_absent(path, net)

    @pytest.mark.parametrize(
        "site",
        [s for s in BUILD_WRITE_SITES if s != "index.build.commit"],
    )
    def test_torn_write_sweep(self, workload, tmp_path, site):
        """A torn (partial) physical write at any payload site must leave
        no valid artifact at the target path."""
        net, _pts = workload
        path = str(tmp_path / "idx.rlix")
        with faults.plan(
            FaultRule(site, "torn", after=1, tear_fraction=0.5)
        ):
            with pytest.raises(CrashPoint):
                build_index_file(path, net, num_landmarks=LANDMARKS)
        assert not os.path.exists(path)
        tmp = path + ".tmp"
        if os.path.exists(tmp):
            with pytest.raises(StorageError):
                load_index(tmp, net)

    def test_renamed_uncommitted_temp_is_refused(self, workload, tmp_path):
        """Even hand-promoting a crashed build's temp file to the final
        path must not get its bounds served: the commit flag is clear."""
        net, _pts = workload
        path = str(tmp_path / "idx.rlix")
        with faults.plan(
            FaultRule("index.build.commit_header", "crash", after=1)
        ):
            with pytest.raises(CrashPoint):
                build_index_file(path, net, num_landmarks=LANDMARKS)
        tmp = path + ".tmp"
        assert os.path.exists(tmp)
        os.replace(tmp, path)  # simulate a meddling operator
        with pytest.raises(IndexCorruptError, match="uncommitted"):
            load_index(path, net)


# ----------------------------------------------------------------------
# Exhaustive single-bit corruption sweep
# ----------------------------------------------------------------------
class TestCorruptionSweep:
    @pytest.fixture(scope="class")
    def small_index(self, tmp_path_factory):
        """A small pristine index (small network keeps the exhaustive
        sweep at ~10k loads) plus its bytes."""
        rng = random.Random(7)
        net = make_random_connected_network(rng, 16, extra_edges=4)
        path = tmp_path_factory.mktemp("bitflip") / "small.rlix"
        build_index_file(str(path), net, num_landmarks=3)
        return net, str(path), path.read_bytes()

    def test_every_single_bit_flip_detected(self, small_index, tmp_path):
        """No unchecksummed byte: flipping any bit anywhere in the file
        must raise a typed error at load — never load quietly, never
        escape as a raw struct/unicode/numpy error."""
        net, _path, pristine = small_index
        victim = str(tmp_path / "flip.rlix")
        undetected = []
        for bytepos in range(len(pristine)):
            for bit in range(8):
                mutated = bytearray(pristine)
                mutated[bytepos] ^= 1 << bit
                with open(victim, "wb") as fh:
                    fh.write(mutated)
                try:
                    idx = load_index(victim, net)
                except (IndexCorruptError, IndexStaleError):
                    continue
                idx.close()
                undetected.append((bytepos, bit))
        assert not undetected, (
            f"{len(undetected)} bit flip(s) loaded quietly: "
            f"{undetected[:10]}"
        )

    def test_flips_degrade_cleanly_with_counter(self, small_index, tmp_path):
        """Through the degradation seam a sampled set of flips becomes
        (None, reason) + a perf.index.degraded bump — a worker would lose
        its acceleration, not its life."""
        net, _path, pristine = small_index
        victim = str(tmp_path / "flip.rlix")
        sample = range(0, len(pristine), 97)  # every byte class, cheap
        obs.enable(fresh=True)
        try:
            for bytepos in sample:
                mutated = bytearray(pristine)
                mutated[bytepos] ^= 0x10
                with open(victim, "wb") as fh:
                    fh.write(mutated)
                index, reason = load_index_or_degrade(victim, net)
                assert index is None
                assert reason
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("perf.index.degraded") == len(list(sample))

    def test_verify_index_reports_the_damage(self, small_index, tmp_path):
        net, _path, pristine = small_index
        victim = str(tmp_path / "flip.rlix")
        # Flip one bit in the tables section (last section before its
        # trailer): verify must produce at least one error finding.
        mutated = bytearray(pristine)
        mutated[len(pristine) - 12] ^= 0x1
        with open(victim, "wb") as fh:
            fh.write(mutated)
        findings = verify_index(victim, net)
        assert findings and all(f.kind == "index" for f in findings)
        assert any(f.severity == "error" for f in findings)

    def test_truncated_tails_detected(self, small_index, tmp_path):
        net, _path, pristine = small_index
        victim = str(tmp_path / "trunc.rlix")
        for cut in (0, 1, 8, 15, 16, len(pristine) // 2, len(pristine) - 1):
            with open(victim, "wb") as fh:
                fh.write(pristine[:cut])
            with pytest.raises(IndexCorruptError):
                load_index(victim, net)

    def test_stale_fingerprint_and_version_skew(self, small_index, tmp_path):
        net, _path, pristine = small_index
        victim = str(tmp_path / "stale.rlix")
        with open(victim, "wb") as fh:
            fh.write(pristine)
        other = make_random_connected_network(random.Random(8), 16,
                                              extra_edges=4)
        with pytest.raises(IndexStaleError, match="fingerprint"):
            load_index(victim, other)
        # A *validly written* future version (header CRC recomputed)
        # is refused as version skew, not corruption.
        import struct
        import zlib

        head = bytearray(pristine[:16])
        struct.pack_into("<H", head, 4, 2)
        struct.pack_into("<I", head, 12, zlib.crc32(bytes(head[:12])))
        with open(victim, "wb") as fh:
            fh.write(bytes(head) + pristine[16:])
        with pytest.raises(IndexStaleError, match="version skew"):
            load_index(victim, net)

    def test_missing_file_degrades(self, workload):
        net, _pts = workload
        obs.enable(fresh=True)
        try:
            index, reason = load_index_or_degrade("/no/such/index.rlix", net)
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert index is None and "FileNotFoundError" in reason
        assert counters.get("perf.index.degraded") == 1


# ----------------------------------------------------------------------
# Serve tiers: mmap sharing, zero rebuilds, graceful degradation
# ----------------------------------------------------------------------
class TestQueryServiceIntegration:
    def test_service_uses_mmap_and_serves_identically(
        self, workload, index_path
    ):
        net, pts = workload
        point_ids = [p.point_id for p in pts][:8]
        requests = [
            {"op": "knn", "point_id": pid, "k": 5} for pid in point_ids
        ] + [
            {"op": "range", "point_id": pid, "eps": 4.0}
            for pid in point_ids
        ]
        with QueryService(net, pts, workers=2,
                          index_path=index_path) as fast:
            assert fast.index_source == "mmap"
            accel_answers = [fast.call(r) for r in requests]
        with QueryService(net, pts, workers=2) as plain:
            assert plain.index_source == "none"
            plain_answers = [plain.call(r) for r in requests]
        assert accel_answers == plain_answers

    def test_service_degrades_on_corrupt_index(
        self, workload, index_path, tmp_path
    ):
        net, pts = workload
        bad = str(tmp_path / "bad.rlix")
        shutil.copyfile(index_path, bad)
        with open(bad, "r+b") as fh:
            fh.seek(200)
            byte = fh.read(1)
            fh.seek(200)
            fh.write(bytes([byte[0] ^ 0xFF]))
        obs.enable(fresh=True)
        try:
            with QueryService(net, pts, workers=2, index_path=bad) as svc:
                assert svc.index_source == "degraded"
                assert svc.index_degrade_reason
                degraded = [
                    svc.call({"op": "knn", "point_id": p.point_id, "k": 5})
                    for p in list(pts)[:6]
                ]
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("perf.index.degraded") == 1
        with QueryService(net, pts, workers=1) as oracle:
            expected = [
                oracle.call({"op": "knn", "point_id": p.point_id, "k": 5})
                for p in list(pts)[:6]
            ]
        assert degraded == expected

    def test_index_path_overrides_landmarks_build(
        self, workload, index_path
    ):
        net, pts = workload
        with QueryService(net, pts, workers=1, landmarks=8,
                          index_path=index_path) as svc:
            assert svc.index_source == "mmap"
            # The artifact's landmark count wins; nothing was rebuilt.
            assert len(svc._landmark_index) == LANDMARKS


class TestSupervisedPoolIntegration:
    def test_pool_zero_builds_across_kill_restart(
        self, workload, workload_path, index_path
    ):
        """The acceptance sweep: a 3-process pool with a persisted index
        performs zero in-worker landmark builds — every ready frame,
        including those of workers restarted after a real SIGKILL,
        reports the mmap'd artifact."""
        net, pts = workload
        point_ids = [p.point_id for p in pts]
        rule = FaultRule("queries.settle", kind="kill", after=30,
                         times=None)
        pool = SupervisedPool(
            workload_path, processes=3, index_path=index_path,
            fault_rules=(rule,), fault_seed=0,
            backoff_base_s=0.01, backoff_cap_s=0.05, max_restarts=8,
        )
        history = []
        try:
            for i, pid in enumerate(point_ids[:12]):
                request = {"id": i, "op": "range", "point_id": pid,
                           "eps": 4.0}
                try:
                    history.append((i, "ok", pool.call(request)))
                except Exception as exc:
                    history.append((i, type(exc).__name__, None))
            # The replacement worker spawns asynchronously on the slot
            # thread; wait for its ready frame before auditing sources.
            deadline = time.monotonic() + 30.0
            while (len(pool.index_sources) <= 3
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            supervisor = pool.stats_snapshot()["supervisor"]
        finally:
            assert pool.close(), "close() left a worker running"
        # The kill fault actually restarted at least one worker...
        assert supervisor["worker_deaths"] >= 1, "no kill fired; dead sweep"
        assert len(pool.index_sources) > 3
        # ...and no worker lineage ever built an index in-process.
        assert set(pool.index_sources) == {"mmap"}
        assert supervisor["index_sources"] == pool.index_sources
        # Served results match the threaded oracle bit-for-bit.
        with QueryService(net, pts, workers=1) as svc:
            for i, status, result in history:
                if status != "ok":
                    continue
                oracle = svc.call({"op": "range",
                                   "point_id": point_ids[i], "eps": 4.0})
                assert json.loads(json.dumps(result)) == \
                    json.loads(json.dumps(oracle))

    def test_pool_degrades_without_dying_on_corrupt_index(
        self, workload, workload_path, index_path, tmp_path
    ):
        """A corrupt artifact costs every worker its acceleration, never
        its life: all workers come up degraded and serve bit-identical
        results."""
        net, pts = workload
        bad = str(tmp_path / "bad.rlix")
        shutil.copyfile(index_path, bad)
        with open(bad, "r+b") as fh:
            fh.seek(120)
            byte = fh.read(1)
            fh.seek(120)
            fh.write(bytes([byte[0] ^ 0x4]))
        pool = SupervisedPool(workload_path, processes=2, index_path=bad)
        try:
            answers = [
                pool.call({"op": "knn", "point_id": p.point_id, "k": 4})
                for p in list(pts)[:6]
            ]
        finally:
            assert pool.close()
        assert set(pool.index_sources) == {"degraded"}
        with QueryService(net, pts, workers=1) as svc:
            expected = [
                svc.call({"op": "knn", "point_id": p.point_id, "k": 4})
                for p in list(pts)[:6]
            ]
        assert answers == expected


class TestReplayedReweighDegradesIndex:
    """A ``reweigh_edge`` already in the mutation log must degrade the
    landmark index during a (re)started worker's WAL replay: the
    artifact's bounds bind to the pre-replay edge weights, and a worker
    that fingerprint-checked before replaying would otherwise serve
    stale range/knn answers."""

    def make_wal_with_reweigh(self, workload_path: str,
                              wal_path: str) -> None:
        from repro.io import load_workload_file
        from repro.live import LiveSession, WriteAheadLog

        net, pts = load_workload_file(workload_path)
        writer = LiveSession(net, pts, eps=2.0, wal=WriteAheadLog(wal_path))
        u, v = min((a, b) for a, b, _w in net.edges())
        # Reweigh *up*, past the generator's 10.0 ceiling: guaranteed to
        # change distances and conflict-free whatever sits on the edge.
        writer.mutate({"kind": "reweigh_edge", "u": u, "v": v,
                       "weight": 11.0})
        writer.close()

    def oracle_answers(self, workload_path: str, wal_path: str,
                       requests: list) -> list:
        """Unaccelerated answers over the replayed (mutated) world."""
        from repro.io import load_workload_file
        from repro.live import LiveSession, WriteAheadLog
        from repro.serve.service import run_query

        net, pts = load_workload_file(workload_path)
        session = LiveSession(
            net, pts, eps=2.0,
            wal=WriteAheadLog(wal_path, read_only=True),
        )
        try:
            session.replay_wal()
            aug = AugmentedView(session.network, session.points)
            return [run_query(r, aug) for r in requests]
        finally:
            session.close()

    def test_restarted_worker_replays_reweigh_and_degrades(
        self, workload, workload_path, index_path, tmp_path
    ):
        """Drive one worker in-process over a log holding a reweigh: the
        ready frame must report ``degraded`` (not ``mmap``) and every
        answer must match the unaccelerated oracle on the reweighed
        network."""
        import io

        from repro.serve.frames import read_frame, write_frame
        from repro.serve.worker import worker_entry

        wal_path = str(tmp_path / "reweigh.wal")
        self.make_wal_with_reweigh(workload_path, wal_path)
        _net, pts = workload
        requests = [
            {"op": "knn", "point_id": p.point_id, "k": 4}
            for p in list(pts)[:6]
        ]
        stdin = io.BytesIO()
        for i, request in enumerate(requests):
            write_frame(stdin, {"seq": i, "request": request})
        stdin.seek(0)
        stdout = io.BytesIO()
        spec = {
            "workload": workload_path,
            "index_path": index_path,
            "wal": wal_path,
            "epoch": 1,
            "live_eps": 2.0,
        }
        assert worker_entry(spec, stdin=stdin, stdout=stdout) == 0
        stdout.seek(0)
        ready = read_frame(stdout)
        assert ready["ready"] and ready["epoch"] == 1
        assert ready["index"] == "degraded"
        answers = []
        for _ in requests:
            frame = read_frame(stdout)
            assert frame["ok"], frame
            answers.append(frame["result"])
        assert answers == self.oracle_answers(
            workload_path, wal_path, requests
        )

    def test_pool_restart_with_reweigh_in_log_degrades(
        self, workload_path, index_path, tmp_path
    ):
        """Chaos acceptance: a pool acknowledges a reweigh, dies, and a
        replacement pool over the same log comes up with every worker
        degraded — no restarted worker ever serves the stale bounds."""
        from repro.io import load_workload_file

        net, pts = load_workload_file(workload_path)
        u, v = min((a, b) for a, b, _w in net.edges())
        requests = [
            {"op": "knn", "point_id": p.point_id, "k": 4}
            for p in list(pts)[:6]
        ]
        wal_path = str(tmp_path / "pool_reweigh.wal")
        pool = SupervisedPool(
            workload_path, processes=2, index_path=index_path,
            wal_path=wal_path, live_eps=2.0,
        )
        try:
            # Both workers must be up before the mutate, or a slow spawn
            # legitimately replays the reweigh and reports degraded.
            deadline = time.monotonic() + 30.0
            while pool.stats_snapshot()["supervisor"]["live"] < 2:
                assert time.monotonic() < deadline, "workers never came up"
                time.sleep(0.05)
            ack = pool.call({"op": "mutate", "mutation": {
                "kind": "reweigh_edge", "u": u, "v": v, "weight": 11.0,
            }})
            assert ack["epoch"] == 1
        finally:
            assert pool.close()
        assert set(pool.index_sources) == {"mmap"}
        pool2 = SupervisedPool(
            workload_path, processes=2, index_path=index_path,
            wal_path=wal_path, live_eps=2.0,
        )
        try:
            answers = [pool2.call(r) for r in requests]
        finally:
            assert pool2.close()
        assert set(pool2.index_sources) == {"degraded"}
        assert answers == self.oracle_answers(
            workload_path, wal_path, requests
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_index_build_and_check_roundtrip(
        self, workload_path, tmp_path, capsys
    ):
        out = str(tmp_path / "cli.rlix")
        assert cli_main(["index", "build", workload_path, "--out", out,
                         "--landmarks", "3"]) == 0
        assert "wrote" in capsys.readouterr().out
        assert cli_main(["index", "check", out,
                         "--workload", workload_path]) == 0
        assert "OK" in capsys.readouterr().out
        assert cli_main(["index", "check", out, "--workload",
                         workload_path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["findings"] == []

    def test_index_check_flags_corruption_and_staleness(
        self, workload_path, index_path, tmp_path, capsys
    ):
        bad = str(tmp_path / "bad.rlix")
        shutil.copyfile(index_path, bad)
        with open(bad, "r+b") as fh:
            fh.seek(40)
            fh.write(b"\xff")
        assert cli_main(["index", "check", bad]) == 2
        capsys.readouterr()
        # Stale: checked against a different workload.
        rng = random.Random(99)
        other_net = make_random_connected_network(rng, 30, extra_edges=10)
        other = tmp_path / "other.json"
        other.write_text(json.dumps(workload_to_dict(
            other_net, scatter_points(rng, other_net, 5)
        )))
        code = cli_main(["index", "check", index_path,
                         "--workload", str(other)])
        out = capsys.readouterr().out
        assert code == 2 and "stale" in out

    def test_check_store_with_index_section(
        self, workload, index_path, tmp_path, capsys
    ):
        from repro.storage.netstore import NetworkStore

        net, pts = workload
        store_path = str(tmp_path / "store.db")
        NetworkStore.build(store_path, net, pts, page_size=512).close()
        code = cli_main(["check", store_path, "--index", index_path,
                         "--json"])
        doc = json.loads(capsys.readouterr().out)
        # Same graph → same fingerprint: store-built network validates
        # an index built from the in-memory workload.
        assert code == 0
        assert doc["index"]["path"] == index_path
        assert doc["index"]["findings"] == []
        # A corrupted index flips the combined exit code to 2.
        bad = str(tmp_path / "bad.rlix")
        shutil.copyfile(index_path, bad)
        with open(bad, "r+b") as fh:
            fh.seek(10)
            fh.write(b"\xff")
        code = cli_main(["check", store_path, "--index", bad, "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 2
        assert doc["findings"] == []  # the store itself is healthy
        assert any(
            f["severity"] == "error" for f in doc["index"]["findings"]
        )

    def test_serve_with_index_matches_plain(
        self, workload_path, index_path, tmp_path, capsys
    ):
        requests = tmp_path / "req.ldjson"
        requests.write_text(
            '{"op": "knn", "point_id": 0, "k": 3, "id": 1}\n'
            '{"op": "range", "point_id": 1, "eps": 4.0, "id": 2}\n'
        )
        out_plain = tmp_path / "plain.out"
        out_accel = tmp_path / "accel.out"
        assert cli_main(["serve", workload_path,
                         "--input", str(requests),
                         "--output", str(out_plain)]) == 0
        assert cli_main(["serve", workload_path,
                         "--input", str(requests),
                         "--output", str(out_accel),
                         "--index", index_path]) == 0
        assert out_plain.read_text() == out_accel.read_text()
