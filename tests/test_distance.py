"""Tests for the paper's distance definitions (Definitions 2-4).

Includes hypothesis property tests establishing that (a) the augmented-graph
distance and the Definition 4 formula agree, and (b) the network distance is
a metric.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import UnreachableError
from repro.network.augmented import AugmentedView
from repro.network.distance import (
    direct_distance,
    direct_point_node_distance,
    network_distance,
    network_distance_formula,
    pairwise_point_distances,
)
from repro.network.graph import SpatialNetwork
from repro.network.points import NetworkPoint, PointSet

from tests.conftest import make_random_connected_network, scatter_points


class TestDirectDistance:
    def test_same_edge(self, small_points):
        assert direct_distance(small_points.get(0), small_points.get(1)) == pytest.approx(1.0)

    def test_different_edges_infinite(self, small_points):
        assert math.isinf(direct_distance(small_points.get(0), small_points.get(2)))

    def test_symmetric(self, small_points):
        p, q = small_points.get(0), small_points.get(1)
        assert direct_distance(p, q) == direct_distance(q, p)

    def test_point_to_node(self, small_network, small_points):
        p = small_points.get(0)
        assert direct_point_node_distance(small_network, p, 1) == pytest.approx(0.5)
        assert direct_point_node_distance(small_network, p, 2) == pytest.approx(1.5)
        assert math.isinf(direct_point_node_distance(small_network, p, 5))


class TestNetworkDistanceKnownValues:
    """Hand-computed distances on the fixture network (see conftest)."""

    EXPECTED = {
        (0, 1): 1.0,
        (0, 2): 2.5,
        (1, 2): 1.5,
        (0, 3): 5.5,
        # p1 -> node 2 (0.5) -> node 3 (3.0) -> node 5 (1.0) -> p3 (1.0)
        (1, 3): 5.5,
        (2, 3): 4.0,
    }

    def test_formula(self, small_network, small_points):
        for (i, j), want in self.EXPECTED.items():
            p, q = small_points.get(i), small_points.get(j)
            assert network_distance_formula(small_network, p, q) == pytest.approx(want)

    def test_augmented(self, small_network, small_points):
        aug = AugmentedView(small_network, small_points)
        for (i, j), want in self.EXPECTED.items():
            p, q = small_points.get(i), small_points.get(j)
            assert network_distance(aug, p, q) == pytest.approx(want)

    def test_self_distance_zero(self, small_network, small_points):
        aug = AugmentedView(small_network, small_points)
        p = small_points.get(0)
        assert network_distance(aug, p, p) == 0.0
        assert network_distance_formula(small_network, p, p) == 0.0


class TestSameEdgeShortcut:
    def test_direct_not_always_shortest(self):
        """The paper's remark: direct distance on a shared edge may exceed
        the network distance through other edges."""
        net = SpatialNetwork.from_edge_list(
            [(1, 2, 10.0), (1, 3, 1.0), (2, 3, 1.0)]
        )
        ps = PointSet(net)
        p = ps.add(1, 2, 0.5)
        q = ps.add(1, 2, 9.5)
        aug = AugmentedView(net, ps)
        # Direct along the heavy edge is 9.0; around via node 3 it is
        # 0.5 + 1 + 1 + 0.5 = 3.0.
        assert direct_distance(p, q) == pytest.approx(9.0)
        assert network_distance(aug, p, q) == pytest.approx(3.0)
        assert network_distance_formula(net, p, q) == pytest.approx(3.0)

    def test_direct_is_shortest_on_light_edge(self, small_network, small_points):
        aug = AugmentedView(small_network, small_points)
        p, q = small_points.get(0), small_points.get(1)
        assert network_distance(aug, p, q) == pytest.approx(direct_distance(p, q))


class TestUnreachable:
    def test_disconnected_points_raise(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        p = ps.add(1, 2, 0.5)
        q = ps.add(3, 4, 0.5)
        aug = AugmentedView(net, ps)
        with pytest.raises(UnreachableError):
            network_distance(aug, p, q)
        with pytest.raises(UnreachableError):
            network_distance_formula(net, p, q)

    def test_pairwise_reports_inf(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(3, 4, 0.5, point_id=1)
        dists = pairwise_point_distances(net, ps)
        assert math.isinf(dists[(0, 1)])


class TestPairwiseMatrix:
    def test_matches_pointwise(self, small_network, small_points):
        dists = pairwise_point_distances(small_network, small_points)
        assert dists == pytest.approx(TestNetworkDistanceKnownValues.EXPECTED)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

@st.composite
def network_with_points(draw, max_nodes=14, max_extra=8, max_points=8):
    """A random connected network plus >= 2 points placed on its edges."""
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    n_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    extra = draw(st.integers(min_value=0, max_value=max_extra))
    net = make_random_connected_network(rng, n_nodes, extra_edges=extra)
    n_points = draw(st.integers(min_value=2, max_value=max_points))
    points = scatter_points(rng, net, n_points)
    return net, points


@settings(max_examples=60, deadline=None)
@given(network_with_points())
def test_property_formula_equals_augmented(data):
    """Definition 4 formula == exact augmented-graph Dijkstra (invariant 2)."""
    net, points = data
    aug = AugmentedView(net, points)
    pts = list(points)
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            formula = network_distance_formula(net, pts[i], pts[j])
            exact = network_distance(aug, pts[i], pts[j])
            assert formula == pytest.approx(exact, rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(network_with_points(max_points=6))
def test_property_network_distance_is_metric(data):
    """Symmetry, identity, and triangle inequality (invariant 1)."""
    net, points = data
    aug = AugmentedView(net, points)
    pts = list(points)
    n = len(pts)
    d = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i != j:
                d[i][j] = network_distance(aug, pts[i], pts[j])
    for i in range(n):
        assert d[i][i] == 0.0
        for j in range(n):
            assert d[i][j] >= 0.0
            assert d[i][j] == pytest.approx(d[j][i], rel=1e-9, abs=1e-9)
            for k in range(n):
                assert d[i][k] <= d[i][j] + d[j][k] + 1e-7


@settings(max_examples=30, deadline=None)
@given(network_with_points(max_points=6))
def test_property_pairwise_matches_pointwise(data):
    net, points = data
    aug = AugmentedView(net, points)
    dists = pairwise_point_distances(net, points)
    for (i, j), got in dists.items():
        want = network_distance(aug, points.get(i), points.get(j))
        assert got == pytest.approx(want, rel=1e-9, abs=1e-9)
