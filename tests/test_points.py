"""Unit tests for network points and point sets."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidPositionError,
    PointNotFoundError,
)
from repro.network.points import NetworkPoint, PointSet


class TestNetworkPoint:
    def test_basic_attributes(self):
        p = NetworkPoint(7, 1, 2, 0.5, label=3)
        assert p.point_id == 7
        assert p.edge == (1, 2)
        assert p.offset == 0.5
        assert p.label == 3

    def test_immutable(self):
        p = NetworkPoint(0, 1, 2, 0.5)
        with pytest.raises(AttributeError):
            p.offset = 1.0

    def test_non_canonical_edge_rejected(self):
        with pytest.raises(InvalidPositionError):
            NetworkPoint(0, 5, 2, 0.5)

    def test_equality_and_hash(self):
        a = NetworkPoint(0, 1, 2, 0.5)
        b = NetworkPoint(0, 1, 2, 0.5)
        c = NetworkPoint(1, 1, 2, 0.5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_coords_interpolation(self, small_network):
        # Edge (1, 2) runs from (0, 1) to (2, 1) with weight 2.0.
        p = NetworkPoint(0, 1, 2, 0.5)
        x, y = p.coords(small_network)
        assert (x, y) == pytest.approx((0.5, 1.0))


class TestPointSetAdd:
    def test_add_assigns_sequential_ids(self, small_network):
        ps = PointSet(small_network)
        a = ps.add(1, 2, 0.5)
        b = ps.add(1, 2, 1.0)
        assert (a.point_id, b.point_id) == (0, 1)
        assert len(ps) == 2

    def test_add_with_reversed_endpoints_mirrors_offset(self, small_network):
        ps = PointSet(small_network)
        # 0.5 away from node 2 on edge (1,2) of weight 2 => offset 1.5 from node 1.
        p = ps.add(2, 1, 0.5)
        assert p.edge == (1, 2)
        assert p.offset == pytest.approx(1.5)

    def test_add_on_missing_edge(self, small_network):
        ps = PointSet(small_network)
        with pytest.raises(EdgeNotFoundError):
            ps.add(1, 5, 0.5)

    def test_offset_out_of_range(self, small_network):
        ps = PointSet(small_network)
        with pytest.raises(InvalidPositionError):
            ps.add(1, 2, 2.5)
        with pytest.raises(InvalidPositionError):
            ps.add(1, 2, -0.5)

    def test_offset_clamped_within_tolerance(self, small_network):
        ps = PointSet(small_network)
        p = ps.add(1, 2, 2.0 + 1e-12)
        assert p.offset == 2.0

    def test_duplicate_id_rejected(self, small_network):
        ps = PointSet(small_network)
        ps.add(1, 2, 0.5, point_id=3)
        with pytest.raises(InvalidPositionError):
            ps.add(1, 2, 1.0, point_id=3)

    def test_auto_id_skips_taken_ids(self, small_network):
        ps = PointSet(small_network)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(1, 2, 0.6, point_id=1)
        p = ps.add(1, 2, 0.7)
        assert p.point_id == 2

    def test_from_points_roundtrip(self, small_network, small_points):
        clone = PointSet.from_points(small_network, list(small_points))
        assert len(clone) == len(small_points)
        for p in small_points:
            q = clone.get(p.point_id)
            assert q.edge == p.edge
            assert q.offset == p.offset


class TestPointSetLookup:
    def test_get_and_contains(self, small_points):
        assert small_points.get(0).offset == 0.5
        assert 0 in small_points
        assert 99 not in small_points

    def test_get_missing(self, small_points):
        with pytest.raises(PointNotFoundError):
            small_points.get(99)

    def test_points_on_edge_sorted(self, small_points):
        pts = small_points.points_on_edge(1, 2)
        assert [p.point_id for p in pts] == [0, 1]
        assert [p.offset for p in pts] == [0.5, 1.5]
        # Symmetric lookup.
        assert small_points.points_on_edge(2, 1) == pts

    def test_points_on_empty_edge(self, small_points):
        assert small_points.points_on_edge(3, 5) == []

    def test_points_on_missing_edge(self, small_points):
        with pytest.raises(EdgeNotFoundError):
            small_points.points_on_edge(1, 5)

    def test_points_from_direction(self, small_points):
        from_1 = small_points.points_from(1, 2)
        from_2 = small_points.points_from(2, 1)
        assert [p.point_id for p in from_1] == [0, 1]
        assert [p.point_id for p in from_2] == [1, 0]

    def test_populated_edges(self, small_points):
        assert sorted(small_points.populated_edges()) == [(1, 2), (2, 3), (4, 5)]
        assert small_points.num_populated_edges() == 3

    def test_iteration_matches_len(self, small_points):
        assert len(list(small_points)) == len(small_points)


class TestPointSetMutation:
    def test_remove(self, small_points):
        small_points.remove(0)
        assert 0 not in small_points
        assert [p.point_id for p in small_points.points_on_edge(1, 2)] == [1]

    def test_remove_last_point_clears_edge(self, small_points):
        small_points.remove(2)
        assert (2, 3) not in set(small_points.populated_edges())

    def test_remove_missing(self, small_points):
        with pytest.raises(PointNotFoundError):
            small_points.remove(42)


class TestDistanceToNode:
    def test_both_endpoints(self, small_network, small_points):
        p = small_points.get(0)  # edge (1,2) weight 2, offset 0.5
        assert small_points.distance_to_node(p, 1) == pytest.approx(0.5)
        assert small_points.distance_to_node(p, 2) == pytest.approx(1.5)

    def test_non_adjacent_node(self, small_points):
        p = small_points.get(0)
        with pytest.raises(InvalidPositionError):
            small_points.distance_to_node(p, 3)


class TestLabels:
    def test_labels_mapping(self, small_network):
        ps = PointSet(small_network)
        ps.add(1, 2, 0.5, label=1)
        ps.add(1, 2, 1.0)
        labels = ps.labels()
        assert labels[0] == 1
        assert labels[1] is None
