"""Degenerate and tie-breaking cases across the algorithms.

These exercise configurations that random property tests almost never
generate: coincident points (zero distances), points sitting exactly on
nodes, equal-weight shortest paths, single-edge networks, and the empty
point set.
"""

from __future__ import annotations

import pytest

from repro.baselines.matrix import DistanceMatrix
from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink, EpsLinkEdgewise
from repro.core.kmedoids import NetworkKMedoids
from repro.core.optics import NetworkOPTICS
from repro.core.singlelink import SingleLink
from repro.network.augmented import AugmentedView
from repro.network.distance import network_distance
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet


@pytest.fixture
def coincident_points():
    """Three points at the exact same location, one farther away."""
    net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
    ps = PointSet(net)
    for pid in range(3):
        ps.add(1, 2, 5.0, point_id=pid)
    ps.add(1, 2, 9.0, point_id=3)
    return net, ps


class TestCoincidentPoints:
    def test_zero_distances(self, coincident_points):
        net, ps = coincident_points
        aug = AugmentedView(net, ps)
        assert network_distance(aug, ps.get(0), ps.get(1)) == 0.0
        assert network_distance(aug, ps.get(0), ps.get(3)) == pytest.approx(4.0)

    def test_epslink_groups_coincident(self, coincident_points):
        net, ps = coincident_points
        result = EpsLink(net, ps, eps=0.5).run()
        assert result.as_partition() == {frozenset({0, 1, 2}), frozenset({3})}

    def test_edgewise_agrees(self, coincident_points):
        net, ps = coincident_points
        a = EpsLink(net, ps, eps=0.5).run()
        b = EpsLinkEdgewise(net, ps, eps=0.5).run()
        assert a.same_clustering(b)

    def test_single_link_zero_merges(self, coincident_points):
        net, ps = coincident_points
        dendrogram = SingleLink(net, ps).build_dendrogram()
        distances = dendrogram.merge_distances()
        assert distances[0] == 0.0
        assert distances[1] == 0.0
        assert distances[2] == pytest.approx(4.0)

    def test_dbscan_density_from_coincidence(self, coincident_points):
        net, ps = coincident_points
        # min_pts=3 satisfied purely by the coincident triple.
        result = NetworkDBSCAN(net, ps, eps=0.5, min_pts=3).run()
        assert result.as_partition() == {frozenset({0, 1, 2})}
        assert result.outliers() == [3]

    def test_kmedoids_zero_R(self, coincident_points):
        net, ps = coincident_points
        result = NetworkKMedoids(net, ps, k=2, seed=0).run()
        # Optimal: one medoid on the triple, one on the loner -> R = 0.
        assert result.stats["R"] == pytest.approx(0.0)

    def test_optics_handles_zero_core_distance(self, coincident_points):
        net, ps = coincident_points
        result = NetworkOPTICS(net, ps, max_eps=1.0, min_pts=3).compute()
        by_id = {o.point_id: o for o in result.ordering}
        assert by_id[0].core_distance == 0.0 or by_id[1].core_distance == 0.0


class TestPointsAtNodes:
    def test_point_at_offset_zero_and_full(self):
        """Offsets exactly 0 and W(e) sit on the nodes themselves."""
        net = SpatialNetwork.from_edge_list([(1, 2, 2.0), (2, 3, 3.0)])
        ps = PointSet(net)
        a = ps.add(1, 2, 2.0, point_id=0)  # exactly at node 2
        b = ps.add(2, 3, 0.0, point_id=1)  # also exactly at node 2
        aug = AugmentedView(net, ps)
        assert network_distance(aug, a, b) == pytest.approx(0.0)
        result = EpsLink(net, ps, eps=1e-9).run()
        assert result.num_clusters == 1

    def test_matrix_agrees(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 2.0), (2, 3, 3.0)])
        ps = PointSet(net)
        ps.add(1, 2, 2.0, point_id=0)
        ps.add(2, 3, 0.0, point_id=1)
        dm = DistanceMatrix.from_points(net, ps)
        assert dm.distance(0, 1) == pytest.approx(0.0)


class TestEqualShortestPaths:
    def test_symmetric_diamond(self):
        """Two exactly equal shortest paths: algorithms must not crash or
        double-count."""
        net = SpatialNetwork.from_edge_list(
            [(1, 2, 1.0), (1, 3, 1.0), (2, 4, 1.0), (3, 4, 1.0)]
        )
        ps = PointSet(net)
        a = ps.add(1, 2, 0.0, point_id=0)  # at node 1 (canonical edge 1-2)
        b = ps.add(2, 4, 1.0, point_id=1)  # at node 4
        aug = AugmentedView(net, ps)
        assert network_distance(aug, a, b) == pytest.approx(2.0)
        dendrogram = SingleLink(net, ps).build_dendrogram()
        assert dendrogram.merge_distances() == pytest.approx([2.0])


class TestSinglePointAndEmpty:
    def test_single_point_everywhere(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 5.0)])
        ps = PointSet(net)
        ps.add(1, 2, 2.5)
        assert EpsLink(net, ps, eps=1.0).run().num_clusters == 1
        assert NetworkDBSCAN(net, ps, eps=1.0, min_pts=1).run().num_clusters == 1
        assert NetworkKMedoids(net, ps, k=1, seed=0).run().num_clusters == 1
        dendrogram = SingleLink(net, ps).build_dendrogram()
        assert dendrogram.num_leaves == 1
        assert dendrogram.merges == []

    def test_empty_point_set(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 5.0)])
        ps = PointSet(net)
        result = EpsLink(net, ps, eps=1.0).run()
        assert result.num_points == 0
        assert result.num_clusters == 0
        dendrogram = SingleLink(net, ps).build_dendrogram()
        assert dendrogram.num_leaves == 0


class TestHeavyPopulation:
    def test_hundred_points_one_edge(self):
        """A single edge carrying a long chain stresses the group walks."""
        net = SpatialNetwork.from_edge_list([(1, 2, 100.0)])
        ps = PointSet(net)
        for i in range(100):
            ps.add(1, 2, 0.5 + i, point_id=i)
        a = EpsLink(net, ps, eps=1.0).run()
        b = EpsLinkEdgewise(net, ps, eps=1.0).run()
        assert a.num_clusters == 1
        assert a.same_clustering(b)
        dendrogram = SingleLink(net, ps).build_dendrogram()
        assert len(dendrogram.merges) == 99
        assert max(dendrogram.merge_distances()) == pytest.approx(1.0)
