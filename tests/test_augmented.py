"""Unit tests for the point-augmented network view."""

from __future__ import annotations

import pytest

from repro.network.augmented import (
    AugmentedView,
    NODE,
    POINT,
    node_vertex,
    point_vertex,
)
from repro.network.points import PointSet


@pytest.fixture
def aug(small_network, small_points):
    return AugmentedView(small_network, small_points)


class TestVertexEncoding:
    def test_distinct_kinds(self):
        assert node_vertex(3) == (NODE, 3)
        assert point_vertex(3) == (POINT, 3)
        assert node_vertex(3) != point_vertex(3)

    def test_orderable(self):
        # Vertices act as heap tie-breakers, so they must compare.
        assert sorted([point_vertex(1), node_vertex(2), node_vertex(1)]) == [
            node_vertex(1),
            node_vertex(2),
            point_vertex(1),
        ]


class TestNodeNeighbors:
    def test_empty_edge_yields_node(self, aug):
        # Edge (3,5) has no points: node 3's neighbour along it is node 5.
        nbrs = dict(aug.neighbors(node_vertex(3)))
        assert nbrs[node_vertex(5)] == pytest.approx(1.0)

    def test_populated_edge_yields_first_point(self, aug):
        # Edge (1,2) has p0@0.5 and p1@1.5; from node 1 the first is p0.
        nbrs = dict(aug.neighbors(node_vertex(1)))
        assert nbrs[point_vertex(0)] == pytest.approx(0.5)
        assert node_vertex(2) not in nbrs

    def test_populated_edge_reverse_direction(self, aug):
        # From node 2, the nearest point on (1,2) is p1 at distance 0.5.
        nbrs = dict(aug.neighbors(node_vertex(2)))
        assert nbrs[point_vertex(1)] == pytest.approx(0.5)
        # And the nearest on (2,3) is p2 at distance 1.0.
        assert nbrs[point_vertex(2)] == pytest.approx(1.0)

    def test_degree_preserved(self, aug, small_network):
        for node in small_network.nodes():
            assert len(list(aug.neighbors(node_vertex(node)))) == small_network.degree(node)


class TestPointNeighbors:
    def test_interior_point(self, aug):
        # p0 on (1,2)@0.5: neighbours are node 1 (0.5) and p1 (1.0).
        nbrs = dict(aug.neighbors(point_vertex(0)))
        assert nbrs == {
            node_vertex(1): pytest.approx(0.5),
            point_vertex(1): pytest.approx(1.0),
        }

    def test_last_point_reaches_far_node(self, aug):
        # p1 on (1,2)@1.5: neighbours are p0 (1.0) and node 2 (0.5).
        nbrs = dict(aug.neighbors(point_vertex(1)))
        assert nbrs == {
            point_vertex(0): pytest.approx(1.0),
            node_vertex(2): pytest.approx(0.5),
        }

    def test_sole_point_on_edge(self, aug):
        # p3 on (4,5)@1.0 with weight 2: both endpoints at 1.0.
        nbrs = dict(aug.neighbors(point_vertex(3)))
        assert nbrs == {
            node_vertex(4): pytest.approx(1.0),
            node_vertex(5): pytest.approx(1.0),
        }

    def test_segment_lengths_sum_to_edge_weight(self, aug, small_network, small_points):
        # Walking edge (1,2) node->p0->p1->node sums to the edge weight.
        total = 0.5 + 1.0 + 0.5
        assert total == pytest.approx(small_network.edge_weight(1, 2))


class TestManyPointsOnOneEdge:
    def test_chain_ordering(self, small_network):
        ps = PointSet(small_network)
        offsets = [0.2, 0.4, 0.9, 1.3, 1.9]
        for off in offsets:
            ps.add(1, 2, off)
        aug = AugmentedView(small_network, ps)
        # Walk the chain from node 1 to node 2 following augmented edges.
        walk = [node_vertex(1)]
        seen = {node_vertex(1)}
        while walk[-1] != node_vertex(2):
            candidates = [v for v, _ in aug.neighbors(walk[-1]) if v not in seen]
            # Restrict to vertices on this edge (points 0..4 or node 2).
            candidates = [
                v for v in candidates if v[0] == POINT or v == node_vertex(2)
            ]
            nxt = candidates[0]
            walk.append(nxt)
            seen.add(nxt)
        assert [v for v in walk if v[0] == POINT] == [point_vertex(i) for i in range(5)]

    def test_invalidate_after_mutation(self, small_network):
        ps = PointSet(small_network)
        a = ps.add(1, 2, 0.5)
        aug = AugmentedView(small_network, ps)
        list(aug.neighbors(point_vertex(a.point_id)))  # warm the cache
        b = ps.add(1, 2, 0.2)
        aug.invalidate()
        nbrs = dict(aug.neighbors(point_vertex(a.point_id)))
        assert point_vertex(b.point_id) in nbrs
