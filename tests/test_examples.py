"""Run every example script end to end.

The examples double as integration tests: each script asserts its own
headline claim (e.g. the river city splits under network distance but not
Euclidean), so a plain successful run is a meaningful check.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"
SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _env_with_src() -> dict[str, str]:
    """The subprocess runs from a sandbox cwd, so `repro` must be importable
    via PYTHONPATH rather than an editable install."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


def test_examples_exist():
    assert len(SCRIPTS) >= 3, "the deliverable requires at least three examples"
    assert "quickstart.py" in SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs_cleanly(script, tmp_path):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,  # examples that write artefacts do so in a sandbox
        env=_env_with_src(),
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} printed nothing"
