"""Tests for the SVG renderers (structure-level, via XML parsing)."""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET

import pytest

from repro.core.epslink import EpsLink
from repro.core.singlelink import SingleLink
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.viz import (
    CLUSTER_PALETTE,
    color_for,
    render_merge_curve_svg,
    render_network_svg,
    render_reachability_svg,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestColorFor:
    def test_noise_is_grey(self):
        assert color_for(NOISE) == "#999999"

    def test_palette_cycles(self):
        n = len(CLUSTER_PALETTE)
        assert color_for(0) == color_for(n)
        assert color_for(1) != color_for(2)


class TestNetworkRendering:
    def test_edges_rendered(self, small_network):
        svg = render_network_svg(small_network)
        root = parse(svg)
        lines = root.findall(f"{SVG_NS}line")
        assert len(lines) == small_network.num_edges

    def test_points_rendered_with_cluster_colors(self, small_network, small_points):
        result = EpsLink(small_network, small_points, eps=1.5).run()
        svg = render_network_svg(
            small_network, small_points, assignment=result.assignment
        )
        root = parse(svg)
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == len(small_points)
        fills = {c.get("fill") for c in circles}
        assert len(fills) == result.num_clusters

    def test_ground_truth_coloring_fallback(self, small_network):
        from repro.network.points import PointSet

        ps = PointSet(small_network)
        ps.add(1, 2, 0.5, label=0)
        ps.add(2, 3, 0.5, label=1)
        svg = render_network_svg(small_network, ps)
        circles = parse(svg).findall(f"{SVG_NS}circle")
        assert {c.get("fill") for c in circles} == {color_for(0), color_for(1)}

    def test_noise_points_grey(self, small_network, small_points):
        assignment = {pid: NOISE for pid in small_points.point_ids()}
        svg = render_network_svg(small_network, small_points, assignment=assignment)
        circles = parse(svg).findall(f"{SVG_NS}circle")
        assert {c.get("fill") for c in circles} == {"#999999"}

    def test_writes_file(self, tmp_path, small_network):
        path = tmp_path / "map.svg"
        render_network_svg(small_network, path=str(path))
        assert path.exists()
        parse(path.read_text())

    def test_requires_coordinates(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0)])
        with pytest.raises(ParameterError):
            render_network_svg(net)

    def test_title_escaped(self, small_network):
        svg = render_network_svg(small_network, title="a<b>&c")
        assert "a&lt;b&gt;&amp;c" in svg
        parse(svg)


class TestMergeCurve:
    def test_polyline_and_axes(self, small_network, small_points):
        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        svg = render_merge_curve_svg(dendrogram.merge_distances())
        root = parse(svg)
        assert root.findall(f"{SVG_NS}polyline")
        assert len(root.findall(f"{SVG_NS}line")) == 2  # the two axes

    def test_interesting_markers(self):
        distances = [1.0] * 20 + [10.0]
        svg = render_merge_curve_svg(distances, interesting=[20])
        root = parse(svg)
        assert root.findall(f"{SVG_NS}circle")

    def test_tail_truncation(self):
        svg = render_merge_curve_svg(list(range(1, 200)), tail=49)
        poly = parse(svg).find(f"{SVG_NS}polyline")
        assert len(poly.get("points").split()) == 49

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            render_merge_curve_svg([])


class TestDendrogramRendering:
    def test_paths_per_merge(self, small_network, small_points):
        from repro.viz import render_dendrogram_svg

        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        svg = render_dendrogram_svg(dendrogram)
        root = parse(svg)
        paths = root.findall(f"{SVG_NS}path")
        assert len(paths) == len(dendrogram.merges)

    def test_group_leaves_annotated(self, small_network, small_points):
        from repro.viz import render_dendrogram_svg

        dendrogram = SingleLink(
            small_network, small_points, delta=1.5
        ).build_dendrogram()
        svg = render_dendrogram_svg(dendrogram)
        root = parse(svg)
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "3" in texts  # the p0-p1-p2 delta group

    def test_too_many_leaves_rejected(self, small_network, small_points):
        from repro.viz import render_dendrogram_svg

        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        with pytest.raises(ParameterError):
            render_dendrogram_svg(dendrogram, max_leaves=2)

    def test_forest_renders(self):
        from repro.network.points import PointSet
        from repro.viz import render_dendrogram_svg

        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.2)
        ps.add(1, 2, 0.8)
        ps.add(3, 4, 0.5)
        dendrogram = SingleLink(net, ps).build_dendrogram()
        assert dendrogram.num_roots == 2
        parse(render_dendrogram_svg(dendrogram))


class TestReachabilityPlot:
    def test_bars_per_point(self):
        plot = [(0, math.inf), (1, 0.5), (2, 0.7), (3, math.inf), (4, 0.2)]
        svg = render_reachability_svg(plot, max_eps=1.0)
        root = parse(svg)
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 5
        # Region starts (inf) get the accent colour.
        accents = [r for r in rects if r.get("fill") == "#984ea3"]
        assert len(accents) == 2

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            render_reachability_svg([], max_eps=1.0)

    def test_end_to_end_with_optics(self, small_network, small_points):
        from repro.core.optics import NetworkOPTICS

        result = NetworkOPTICS(small_network, small_points, max_eps=3.0).compute()
        svg = render_reachability_svg(result.reachability_plot(), max_eps=3.0)
        parse(svg)
