"""Tests for repro.serve: service semantics, chaos sweeps, and the CLI.

The service-level contract (see ``docs/resilience.md``): every admitted
request resolves to exactly one outcome — a result or a typed error from
{DeadlineExceeded, Overloaded, CircuitOpen, ...} — workers survive poisoned
requests, shutdown drains cleanly, and under a seeded fault plan the whole
request/outcome history is deterministic.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time

import pytest

from repro import faults, obs
from repro.cli import main
from repro.exceptions import (
    Cancelled,
    DeadlineExceeded,
    Overloaded,
    ParameterError,
)
from repro.faults import CrashPoint, FaultRule
from repro.network.augmented import AugmentedView
from repro.network.queries import knn_query, range_query
from repro.recovery import RetryPolicy, retrying
from repro.resilience import CircuitBreaker, VirtualClock, breaking
from repro.serve import (
    OPS,
    QueryService,
    error_name,
    error_response,
    parse_request,
    result_response,
)
from repro.storage.netstore import NetworkStore
from tests.conftest import make_random_connected_network, scatter_points


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(23)
    net = make_random_connected_network(rng, 30, extra_edges=10)
    pts = scatter_points(rng, net, 40)
    return net, pts


def _drain_into_worker(service, timeout=5.0):
    """Wait until the admission queue is empty (the worker took the item)."""
    t0 = time.monotonic()
    while not service._queue.empty():
        if time.monotonic() - t0 > timeout:
            raise AssertionError("worker never dequeued")
        time.sleep(0.001)


def _gate(service):
    """Block every execution behind an event; returns the release handle."""
    gate = threading.Event()
    orig = service._execute

    def gated(request, aug):
        gate.wait(30)
        return orig(request, aug)

    service._execute = gated
    return gate


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_parse_request(self):
        doc = parse_request('{"op": "range", "point_id": 1, "eps": 2.0}')
        assert doc["op"] == "range"
        with pytest.raises(ParameterError):
            parse_request("not json", lineno=3)
        with pytest.raises(ParameterError):
            parse_request("[1, 2]")
        with pytest.raises(ParameterError):
            parse_request('{"op": "explode"}')

    def test_error_taxonomy(self):
        assert error_name(DeadlineExceeded("s", 1.0, 2.0)) == "DeadlineExceeded"
        assert error_name(Cancelled("x")) == "Cancelled"
        assert error_name(Overloaded(4)) == "Overloaded"
        from repro.exceptions import (
            BudgetExceededError,
            CircuitOpenError,
            StorageError,
        )
        assert error_name(CircuitOpenError("pager", "s", 1.0)) == "CircuitOpen"
        assert error_name(BudgetExceededError("op", 1, 2)) == "BudgetExceeded"
        assert error_name(ParameterError("bad")) == "BadRequest"
        assert error_name(StorageError("hm")) == "StorageError"
        assert error_name(OSError("disk")) == "IOError"
        assert error_name(RuntimeError("?")) == "InternalError"
        # Bare lookup/conversion errors escaping deep algorithm code are
        # internal bugs, not the client's malformed request: the service
        # wraps genuine field-extraction failures in ParameterError.
        assert error_name(KeyError("eps")) == "InternalError"
        assert error_name(TypeError("x")) == "InternalError"
        assert error_name(ValueError("x")) == "InternalError"

    def test_parse_request_rejects_bad_timeout_ms(self):
        for bad in ('"abc"', "[5]", "true", "-1", "NaN"):
            with pytest.raises(ParameterError):
                parse_request(
                    '{"op": "knn", "point_id": 0, "k": 1, '
                    f'"timeout_ms": {bad}}}'
                )
        doc = parse_request(
            '{"op": "knn", "point_id": 0, "k": 1, "timeout_ms": 50.5}'
        )
        assert doc["timeout_ms"] == 50.5

    def test_responses_carry_request_id(self):
        assert result_response({"id": 7}, [1]) == {
            "ok": True, "result": [1], "id": 7,
        }
        assert "id" not in result_response({}, [1])
        doc = error_response({"id": "a"}, Overloaded(2))
        assert doc["ok"] is False and doc["error"] == "Overloaded"
        assert doc["id"] == "a"


# ----------------------------------------------------------------------
# QueryService semantics
# ----------------------------------------------------------------------
class TestQueryService:
    def test_parameters_validated(self, workload):
        net, pts = workload
        with pytest.raises(ParameterError):
            QueryService(net, pts, workers=0)
        with pytest.raises(ParameterError):
            QueryService(net, pts, queue_depth=0)

    def test_results_match_direct_queries(self, workload):
        net, pts = workload
        aug = AugmentedView(net, pts)
        anchor = pts.get(0)
        with QueryService(net, pts, workers=2) as svc:
            got = svc.call({"op": "range", "point_id": 0, "eps": 3.0})
            want = [
                [p.point_id, d] for p, d in range_query(aug, anchor, 3.0)
            ]
            assert got == want
            got = svc.call({"op": "knn", "point_id": 0, "k": 5})
            want = [[p.point_id, d] for p, d in knn_query(aug, anchor, 5)]
            assert got == want

    def test_cluster_request(self, workload):
        net, pts = workload
        from repro.core import EpsLink

        baseline = EpsLink(net, pts, eps=3.0, min_sup=2).run()
        with QueryService(net, pts) as svc:
            got = svc.call({
                "op": "cluster", "algorithm": "eps-link", "eps": 3.0,
                "min_pts": 2,
            })
        assert got["num_clusters"] == baseline.num_clusters
        assert got["assignment"] == {
            str(k): v for k, v in baseline.assignment.items()
        }

    def test_bad_requests_fail_alone(self, workload):
        net, pts = workload
        with QueryService(net, pts, workers=1) as svc:
            bad = svc.submit({"op": "range", "point_id": 0})  # missing eps
            worse = svc.submit({"op": "cluster", "algorithm": "nope"})
            unconvertible = svc.submit(
                {"op": "range", "point_id": 0, "eps": "wide"}
            )
            missing = svc.submit({"op": "range", "point_id": 10**9, "eps": 1.0})
            good = svc.submit({"op": "knn", "point_id": 0, "k": 1})
            # Every malformed-request flavor surfaces as ParameterError
            # (wire name BadRequest), never a bare KeyError/ValueError.
            for future in (bad, worse, unconvertible, missing):
                with pytest.raises(ParameterError):
                    future.result(10)
            assert len(good.result(10)) == 1  # the worker survived them all

    def test_bad_timeout_ms_rejected_at_submit(self, workload):
        net, pts = workload
        with QueryService(net, pts, workers=1) as svc:
            for bad in ("abc", [5], True, -1, float("nan")):
                with pytest.raises(ParameterError):
                    svc.submit(
                        {"op": "knn", "point_id": 0, "k": 1, "timeout_ms": bad}
                    )
            ok = svc.submit(
                {"op": "knn", "point_id": 0, "k": 1, "timeout_ms": 60000}
            )
            assert len(ok.result(10)) == 1

    def test_injected_crash_fails_alone(self, workload):
        net, pts = workload
        with QueryService(net, pts, workers=1) as svc:
            with faults.plan(FaultRule("queries.settle", "crash", after=1)):
                poisoned = svc.submit({"op": "range", "point_id": 0, "eps": 2.0})
                with pytest.raises(CrashPoint):
                    poisoned.result(10)
            healthy = svc.submit({"op": "range", "point_id": 0, "eps": 2.0})
            assert healthy.result(10)  # same worker, still serving

    def test_overload_sheds_typed(self, workload):
        net, pts = workload
        svc = QueryService(net, pts, workers=1, queue_depth=2)
        gate = _gate(svc)
        try:
            req = {"op": "range", "point_id": 0, "eps": 1.0}
            running = svc.submit(dict(req))
            _drain_into_worker(svc)  # the worker holds it at the gate
            queued = [svc.submit(dict(req)) for _ in range(2)]
            with pytest.raises(Overloaded) as exc:
                svc.submit(dict(req))
            assert "2" in str(exc.value)
            gate.set()
            for future in [running, *queued]:
                assert future.result(10) is not None
        finally:
            gate.set()
            assert svc.close()

    def test_request_aged_out_in_queue_is_shed(self, workload):
        net, pts = workload
        vc = VirtualClock()
        svc = QueryService(net, pts, workers=1, clock=vc.monotonic)
        gate = _gate(svc)
        try:
            blocker = svc.submit({"op": "range", "point_id": 0, "eps": 1.0})
            _drain_into_worker(svc)
            aged = svc.submit(
                {"op": "range", "point_id": 0, "eps": 1.0, "timeout_ms": 100}
            )
            vc.advance(0.2)  # its whole budget burns in the queue
            gate.set()
            assert blocker.result(10) is not None
            with pytest.raises(DeadlineExceeded) as exc:
                aged.result(10)
            assert exc.value.site == "serve.dequeue"
        finally:
            gate.set()
            assert svc.close()

    def test_default_timeout_applies(self, workload):
        net, pts = workload
        vc = VirtualClock()
        svc = QueryService(
            net, pts, workers=1, default_timeout_s=0.5, clock=vc.monotonic
        )
        gate = _gate(svc)
        try:
            first = svc.submit(
                {"op": "range", "point_id": 0, "eps": 1.0}, timeout_s=None
            )
            _drain_into_worker(svc)
            doomed = svc.submit({"op": "range", "point_id": 0, "eps": 1.0})
            vc.advance(1.0)
            gate.set()
            assert first.result(10) is not None
            with pytest.raises(DeadlineExceeded):
                doomed.result(10)
        finally:
            gate.set()
            assert svc.close()

    def test_submit_after_close_rejected(self, workload):
        net, pts = workload
        svc = QueryService(net, pts, workers=1)
        assert svc.close()
        with pytest.raises(RuntimeError):
            svc.submit({"op": "range", "point_id": 0, "eps": 1.0})

    def test_graceful_drain_finishes_queued_work(self, workload):
        net, pts = workload
        svc = QueryService(net, pts, workers=2, queue_depth=8)
        futures = [
            svc.submit({"op": "knn", "point_id": i, "k": 3}) for i in range(6)
        ]
        assert svc.close(drain=True)
        for future in futures:
            assert len(future.result(0)) == 3  # already resolved

    def test_hard_close_cancels_queued_work(self, workload):
        net, pts = workload
        svc = QueryService(net, pts, workers=1, queue_depth=4)
        gate = _gate(svc)
        running = svc.submit({"op": "range", "point_id": 0, "eps": 1.0})
        _drain_into_worker(svc)
        queued = svc.submit({"op": "range", "point_id": 0, "eps": 1.0})
        closer = threading.Thread(
            target=lambda: svc.close(drain=False), daemon=True
        )
        closer.start()
        with pytest.raises(Cancelled):
            queued.result(10)
        gate.set()  # release the in-flight request; close can now join
        closer.join(10)
        assert svc._joined()
        assert running.result(10) is not None  # in-flight work still finished

    def test_obs_counters(self, workload):
        net, pts = workload
        obs.reset()
        obs.enable()
        try:
            with QueryService(net, pts, workers=1) as svc:
                good = svc.submit({"op": "range", "point_id": 0, "eps": 1.0})
                bad = svc.submit({"op": "range", "point_id": 0})
                good.result(10)
                with pytest.raises(ParameterError):
                    bad.result(10)
            counters = obs.snapshot()["counters"]
            assert counters.get("serve.submitted") == 2
            assert counters.get("serve.completed") == 1
            assert counters.get("serve.errors") == 1
        finally:
            obs.disable()
            obs.reset()


# ----------------------------------------------------------------------
# Deterministic chaos sweep (single worker + virtual time)
# ----------------------------------------------------------------------
ALLOWED_OUTCOMES = {"DeadlineExceeded", "Overloaded", "CircuitOpen"}


def _outcome(future_or_exc):
    """Collapse a request's fate to ('ok', result) or an error name."""
    if isinstance(future_or_exc, BaseException):
        return error_name(future_or_exc)
    try:
        return ("ok", future_or_exc.result(30))
    except Exception as exc:
        return error_name(exc)


def _chaos_run(seed: int, store_path) -> dict:
    """One full chaos scenario; returns its complete outcome history.

    Deterministic by construction: one worker, a virtual clock driving both
    the request deadlines and every injected delay / retry backoff, and a
    seeded fault plan — thread scheduling can reorder nothing observable.
    """
    vc = VirtualClock()
    store = NetworkStore(store_path)
    spts = store.points()
    history = []
    breaker = CircuitBreaker(
        failure_threshold=3, reset_timeout_s=1e9, clock=vc.monotonic,
    )
    policy = RetryPolicy(max_attempts=50, base_delay=0.0, sleep=vc.sleep)
    svc = QueryService(
        store, spts, workers=1, queue_depth=4, clock=vc.monotonic
    )
    gate = _gate(svc)
    try:
        with retrying(policy):
            # Phase 1: injected latency + transient I/O faults.  Retry
            # absorbs the faults; the delays burn request budgets.
            with faults.plan(
                FaultRule("queries.settle", "delay", probability=0.3,
                          times=None, delay_s=0.05),
                FaultRule("pager.read_page", "error", probability=0.2,
                          times=None, transient=True),
                seed=seed,
                sleep=vc.sleep,
            ):
                batch = []
                blocker = svc.submit(
                    {"id": "p1-0", "op": "range", "point_id": 0, "eps": 2.0}
                )
                batch.append(("p1-0", blocker))
                _drain_into_worker(svc)
                plan = [
                    ("p1-1", {"op": "range", "point_id": 1, "eps": 2.0,
                              "timeout_ms": 100}),
                    ("p1-2", {"op": "knn", "point_id": 2, "k": 4}),
                    ("p1-3", {"op": "range", "point_id": 3, "eps": 3.0,
                              "timeout_ms": 2000}),
                    ("p1-4", {"op": "knn", "point_id": 4, "k": 3,
                              "timeout_ms": 60000}),
                    ("p1-5", {"op": "range", "point_id": 5, "eps": 2.0}),
                    ("p1-6", {"op": "knn", "point_id": 6, "k": 2}),
                    ("p1-7", {"op": "range", "point_id": 7, "eps": 1.0}),
                ]
                for rid, req in plan:  # queue depth 4: the tail is shed
                    req = {"id": rid, **req}
                    try:
                        batch.append((rid, svc.submit(req)))
                    except Overloaded as exc:
                        batch.append((rid, exc))
                vc.advance(0.2)  # ages out the 100 ms request in the queue
                gate.set()
                for rid, fate in batch:
                    history.append((rid, _outcome(fate)))
            # Phase 2: the store fails persistently; the breaker must trip
            # and convert the grind into fast CircuitOpen rejections.
            store.drop_caches()
            with faults.plan(
                FaultRule("pager.read_page", "error", probability=1.0,
                          times=None, transient=True),
                seed=seed,
                sleep=vc.sleep,
            ), breaking(breaker):
                for i in range(4):
                    rid = f"p2-{i}"
                    future = svc.submit(
                        {"id": rid, "op": "range", "point_id": i, "eps": 2.0}
                    )
                    history.append((rid, _outcome(future)))
        closed = svc.close()
    finally:
        gate.set()
        svc.close()
        store.close()
    return {
        "history": history,
        "closed": closed,
        "trips": breaker.trips,
        "rejections": breaker.rejections,
    }


class TestChaosSweep:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        rng = random.Random(23)
        net = make_random_connected_network(rng, 30, extra_edges=10)
        pts = scatter_points(rng, net, 40)
        path = tmp_path_factory.mktemp("chaos") / "w.store"
        NetworkStore.build(path, net, pts).close()
        return path

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_request_gets_exactly_one_typed_outcome(
        self, seed, store_path
    ):
        run = _chaos_run(seed, store_path)
        assert run["closed"], "a worker thread leaked"
        assert len(run["history"]) == 12  # 8 submitted + shed, 4 persistent
        names = []
        for rid, outcome in run["history"]:
            if isinstance(outcome, tuple):
                assert outcome[0] == "ok"
                names.append("ok")
            else:
                assert outcome in ALLOWED_OUTCOMES, (
                    f"{rid} ended as {outcome!r}"
                )
                names.append(outcome)
        # The full four-outcome spectrum appears in every seeded run.
        assert "ok" in names
        assert "DeadlineExceeded" in names  # the queue-aged 100 ms request
        assert "Overloaded" in names  # the submissions beyond the queue
        assert names[-4:] == ["CircuitOpen"] * 4  # persistent-fault phase
        assert run["trips"] == 1
        assert run["rejections"] >= 3  # every post-trip read rejected fast

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chaos_is_deterministic(self, seed, store_path):
        assert _chaos_run(seed, store_path) == _chaos_run(seed, store_path)


# ----------------------------------------------------------------------
# Live telemetry: stats op, histograms, gauges, request-scoped tracing
# ----------------------------------------------------------------------
class _RaisingHistogram:
    """Stand-in instrument that must never be touched on the disabled path."""

    def observe(self, value):
        raise AssertionError("histogram work performed while obs is disabled")


class TestServeTelemetry:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_stats_op_returns_live_snapshot(self, workload):
        net, pts = workload
        obs.enable()
        with QueryService(net, pts, workers=1) as svc:
            for i in range(4):
                svc.call({"op": "knn", "point_id": i, "k": 3})
            snap = svc.call({"op": "stats"})
            json.dumps(snap)  # the wire answer must serialise as-is
            assert snap["uptime_s"] >= 0.0
            lat = snap["histograms"]["serve.latency"]
            # One worker: all four knn latencies were observed before the
            # stats request was dequeued.
            assert lat["count"] == 4
            for q in ("p50", "p90", "p99"):
                assert isinstance(lat[q], float)
            assert lat["p50"] <= lat["p90"] <= lat["p99"]
            assert lat["min"] <= lat["p50"] <= lat["max"]
            assert snap["histograms"]["serve.queue_wait"]["count"] >= 4
            assert snap["histograms"]["serve.exec"]["count"] >= 4
            gauges = snap["gauges"]
            assert gauges["serve.workers_live"] == 1
            assert gauges["serve.queue_depth"] == 0
            assert gauges["serve.inflight"] == 1  # the stats request itself
            assert gauges["breaker.state"] is None  # no breaker installed
            assert snap["counters"]["serve.completed"] >= 4

    def test_stats_reports_installed_breaker_state(self, workload):
        net, pts = workload
        obs.enable()
        with QueryService(net, pts, workers=1) as svc:
            with breaking(CircuitBreaker()):
                snap = svc.call({"op": "stats"})
        assert snap["gauges"]["breaker.state"] == 0  # closed

    def test_stats_op_serves_with_obs_disabled(self, workload):
        net, pts = workload
        assert not obs.is_enabled()
        with QueryService(net, pts, workers=1) as svc:
            svc.call({"op": "knn", "point_id": 0, "k": 2})
            snap = svc.call({"op": "stats"})
        assert snap["counters"] == {}
        assert snap["histograms"]["serve.latency"]["count"] == 0
        assert snap["gauges"]["serve.workers_live"] == 1

    def test_disabled_path_performs_no_histogram_work(self, workload):
        """With --stats/--trace/--metrics-file all absent the hot path does
        one flag check and nothing else: swap the service's instruments for
        raising stand-ins and serve anyway."""
        net, pts = workload
        assert not obs.is_enabled()
        with QueryService(net, pts, workers=2) as svc:
            boom = _RaisingHistogram()
            svc._h_latency = svc._h_queue_wait = svc._h_exec = boom
            for i in range(6):
                assert svc.call({"op": "knn", "point_id": i, "k": 2})
        assert obs.STATE.counters == {}
        from repro.obs.metrics import REGISTRY

        assert REGISTRY.histogram("serve.latency").count == 0

    def test_chaos_counters_match_wire_outcomes(self, workload, tmp_path):
        """The snapshot's shed/deadline/completed tallies must equal what
        the wire actually answered, request for request."""
        from repro.obs.metrics import REGISTRY

        net, pts = workload
        obs.enable()
        vc = VirtualClock()
        svc = QueryService(
            net, pts, workers=1, queue_depth=2, clock=vc.monotonic
        )
        gate = _gate(svc)
        fates = []
        try:
            fates.append(svc.submit({"op": "range", "point_id": 0, "eps": 2.0}))
            _drain_into_worker(svc)  # worker holds it at the gate
            fates.append(svc.submit(
                {"op": "range", "point_id": 1, "eps": 2.0, "timeout_ms": 100}
            ))
            fates.append(svc.submit({"op": "knn", "point_id": 2, "k": 3}))
            for _ in range(3):  # queue full: all three shed
                try:
                    fates.append(svc.submit({"op": "knn", "point_id": 3, "k": 2}))
                except Overloaded as exc:
                    fates.append(exc)
            vc.advance(0.2)  # ages out the 100 ms request in the queue
            gate.set()
            wire = [_outcome(f) for f in fates]
        finally:
            gate.set()
            assert svc.close()  # joins workers: every observe has landed
        shed = sum(1 for o in wire if o == "Overloaded")
        expired = sum(1 for o in wire if o == "DeadlineExceeded")
        ok = sum(1 for o in wire if isinstance(o, tuple))
        assert (shed, expired, ok) == (3, 1, 2)
        snap = svc.stats_snapshot()
        counters = snap["counters"]
        assert counters["serve.shed"] == shed
        assert counters["serve.deadline_exceeded"] == expired
        assert counters["serve.completed"] == ok
        assert counters["serve.errors"] == expired
        assert counters["serve.submitted"] == len(wire) - shed
        # Every admitted request was dequeued and timed; shed ones never.
        assert snap["histograms"]["serve.latency"]["count"] == len(wire) - shed
        assert REGISTRY.histogram("serve.queue_wait").count == len(wire) - shed
        # CI uploads this snapshot as the chaos-sweep artifact.
        artifact = os.environ.get("REPRO_CHAOS_METRICS")
        if artifact:
            with open(artifact, "w", encoding="utf-8") as fh:
                json.dump(
                    {"wire_outcomes": [
                        o if isinstance(o, str) else "ok" for o in wire
                    ], **snap},
                    fh, indent=1, sort_keys=True, default=str,
                )
                fh.write("\n")

    def test_request_scoped_tracing_records_only_flagged(
        self, workload, tmp_path
    ):
        net, pts = workload
        trace = tmp_path / "trace.jsonl"
        obs.enable(trace_path=str(trace), sample_requests=True)
        with QueryService(net, pts, workers=2) as svc:
            svc.call({"op": "knn", "point_id": 0, "k": 3})  # not traced
            svc.call({
                "op": "cluster", "algorithm": "eps-link", "eps": 2.0,
                "trace": True, "id": "T1",
            })
        obs.disable()
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 1
        assert roots[0]["name"] == "serve.request"
        assert roots[0]["attrs"] == {"request_id": "T1", "op": "cluster"}
        # The flagged request's inner spans landed under its root.
        assert {r["name"] for r in records} > {"serve.request"}
        ids = {r["span_id"] for r in records}
        assert all(
            r["parent_id"] in ids for r in records if r["parent_id"] is not None
        )

    def test_trace_requests_get_generated_ids_when_missing(
        self, workload, tmp_path
    ):
        net, pts = workload
        trace = tmp_path / "trace.jsonl"
        obs.enable(trace_path=str(trace), sample_requests=True)
        with QueryService(net, pts, workers=1) as svc:
            svc.call({"op": "knn", "point_id": 0, "k": 2, "trace": True})
        obs.disable()
        roots = [
            json.loads(line) for line in trace.read_text().splitlines()
            if json.loads(line)["parent_id"] is None
        ]
        assert len(roots) == 1
        assert roots[0]["attrs"]["request_id"].startswith("req-")

    def test_trace_file_integrity_under_concurrent_workers(
        self, workload, tmp_path
    ):
        """Hammer the pool with traced requests: every JSONL line parses,
        span ids are unique, and every parent resolves to a span in the
        file that started no later than its child."""
        net, pts = workload
        trace = tmp_path / "trace.jsonl"
        obs.enable(trace_path=str(trace), sample_requests=True)
        with QueryService(net, pts, workers=4, queue_depth=256) as svc:
            futures = [
                svc.submit({
                    "op": "cluster", "algorithm": "eps-link", "eps": 2.0,
                    "trace": True, "id": f"c{i}",
                })
                for i in range(8)
            ]
            futures += [
                svc.submit({
                    "op": "knn", "point_id": i % len(pts), "k": 2,
                    "trace": True, "id": f"k{i}",
                })
                for i in range(16)
            ]
            for future in futures:
                future.result(60)
        obs.disable()
        records = [
            json.loads(line) for line in trace.read_text().splitlines()
        ]  # a torn line would fail to parse
        by_id = {r["span_id"]: r for r in records}
        assert len(by_id) == len(records)  # no duplicated span ids
        for r in records:
            parent_id = r["parent_id"]
            if parent_id is None:
                continue
            parent = by_id[parent_id]  # resolves within the file
            assert parent["thread"] == r["thread"]
            assert parent["start_s"] <= r["start_s"] + 1e-9
        roots = [r for r in records if r["parent_id"] is None]
        assert len(roots) == 24
        assert {r["name"] for r in roots} == {"serve.request"}
        assert {r["attrs"]["request_id"] for r in roots} == (
            {f"c{i}" for i in range(8)} | {f"k{i}" for i in range(16)}
        )


class TestConcurrentStoreReads:
    def test_shared_store_serves_correct_results_concurrently(self, tmp_path):
        """Many workers over one disk-backed store: every answer must match
        the sequential ground truth (the pager/buffer locks make the
        shared handle safe; without them an interleaved seek+read returns
        another request's page, which still passes its CRC)."""
        rng = random.Random(7)
        net = make_random_connected_network(rng, 30, extra_edges=10)
        pts = scatter_points(rng, net, 40)
        path = tmp_path / "w.store"
        NetworkStore.build(path, net, pts, page_size=512).close()
        # A tiny buffer keeps misses/evictions hot so the physical read
        # path is exercised constantly, not just on first touch.
        store = NetworkStore(path, buffer_bytes=512 * 2)
        try:
            spts = store.points()
            aug = AugmentedView(store, spts)
            expected = {
                i: [[p.point_id, d] for p, d in
                    range_query(aug, spts.get(i), 2.5)]
                for i in range(10)
            }
            svc = QueryService(store, spts, workers=6, queue_depth=128)
            with svc:
                futures = [
                    (i, svc.submit({"op": "range", "point_id": i, "eps": 2.5}))
                    for _ in range(4) for i in range(10)
                ]
                for i, future in futures:
                    assert future.result(60) == expected[i], f"point {i}"
        finally:
            store.close()


class TestMultiWorkerInvariants:
    def test_every_future_resolves_and_pool_drains(self, workload):
        net, pts = workload
        svc = QueryService(net, pts, workers=4, queue_depth=64)
        futures = []
        for i in range(30):
            req = {"op": OPS[i % 2], "point_id": i % len(pts)}
            if req["op"] == "range":
                req["eps"] = 2.0
            else:
                req["k"] = 3
            if i % 7 == 0:
                req["timeout_ms"] = 0  # unmeetable by design
            futures.append(svc.submit(req))
        assert svc.close(drain=True)
        for future in futures:
            try:
                result = future.result(0)
            except Exception as exc:
                assert error_name(exc) in ("DeadlineExceeded", "Cancelled")
            else:
                assert isinstance(result, list)


# ----------------------------------------------------------------------
# The serve CLI
# ----------------------------------------------------------------------
class TestServeCLI:
    @pytest.fixture
    def cli_workload(self, tmp_path):
        path = tmp_path / "w.json"
        assert main([
            "generate", "--grid", "5x5", "--points", "30", "--out", str(path),
        ]) == 0
        return path

    def test_round_trip(self, cli_workload, tmp_path, capsys):
        reqs = tmp_path / "reqs.ldjson"
        reqs.write_text("\n".join([
            '{"id": "r1", "op": "range", "point_id": 0, "eps": 2.0}',
            '{"id": "r2", "op": "knn", "point_id": 0, "k": 3}',
            '{"id": "r3", "op": "cluster", "algorithm": "eps-link", "eps": 1.5}',
            '{"id": "r4", "op": "knn", "point_id": 0, "k": 2, "timeout_ms": 0}',
            '{"id": "r5", "op": "explode"}',
            "not json",
            "",
        ]))
        out = tmp_path / "resp.ldjson"
        assert main([
            "serve", str(cli_workload), "--input", str(reqs),
            "--output", str(out), "--workers", "2",
        ]) == 0
        docs = [
            json.loads(line) for line in out.read_text().splitlines() if line
        ]
        assert [d.get("id") for d in docs] == ["r1", "r2", "r3", "r4", "r5", None]
        by_id = {d.get("id"): d for d in docs}
        assert by_id["r1"]["ok"] and len(by_id["r1"]["result"]) >= 1
        assert by_id["r2"]["ok"] and len(by_id["r2"]["result"]) == 3
        assert by_id["r3"]["ok"] and by_id["r3"]["result"]["num_clusters"] >= 1
        assert by_id["r4"] == {
            "ok": False, "error": "DeadlineExceeded",
            "message": by_id["r4"]["message"], "id": "r4",
        }
        assert by_id["r5"]["error"] == "BadRequest"
        assert by_id[None]["error"] == "BadRequest"
        assert "served 3/6" in capsys.readouterr().err

    def test_bad_timeout_ms_fails_alone(self, cli_workload, tmp_path, capsys):
        """One malformed timeout_ms answers BadRequest; the session serves on."""
        reqs = tmp_path / "reqs.ldjson"
        reqs.write_text("\n".join([
            '{"id": "r1", "op": "knn", "point_id": 0, "k": 2,'
            ' "timeout_ms": "abc"}',
            '{"id": "r2", "op": "knn", "point_id": 0, "k": 2,'
            ' "timeout_ms": -5}',
            '{"id": "r3", "op": "knn", "point_id": 0, "k": 2}',
            "",
        ]))
        out = tmp_path / "resp.ldjson"
        assert main([
            "serve", str(cli_workload), "--input", str(reqs),
            "--output", str(out),
        ]) == 0
        docs = [
            json.loads(line) for line in out.read_text().splitlines() if line
        ]
        by_id = {d["id"]: d for d in docs}
        assert by_id["r1"]["error"] == "BadRequest"
        assert by_id["r2"]["error"] == "BadRequest"
        assert by_id["r3"]["ok"] is True
        assert "served 1/3" in capsys.readouterr().err

    def test_resilience_flags_accepted(self, cli_workload, tmp_path):
        reqs = tmp_path / "reqs.ldjson"
        reqs.write_text('{"id": 1, "op": "knn", "point_id": 0, "k": 2}\n')
        out = tmp_path / "resp.ldjson"
        assert main([
            "serve", str(cli_workload), "--input", str(reqs),
            "--output", str(out), "--retries", "3",
            "--breaker-threshold", "5", "--breaker-reset-ms", "500",
            "--default-timeout-ms", "60000", "--queue-depth", "2",
        ]) == 0
        doc = json.loads(out.read_text().splitlines()[0])
        assert doc["ok"] is True

    def test_stats_op_over_the_wire(self, cli_workload, tmp_path, capsys):
        reqs = tmp_path / "reqs.ldjson"
        reqs.write_text("\n".join([
            '{"id": "q1", "op": "range", "point_id": 0, "eps": 2.0}',
            '{"id": "q2", "op": "knn", "point_id": 0, "k": 3}',
            '{"id": "s", "op": "stats"}',
            "",
        ]))
        # --stats turns telemetry on for the session.  No --output: stdout
        # is the wire, so every line of it must parse as JSON — the
        # "wrote trace" line and the --stats tables belong on stderr.
        assert main([
            "serve", str(cli_workload), "--input", str(reqs),
            "--workers", "1", "--stats",
            "--trace", str(tmp_path / "trace.jsonl"),
        ]) == 0
        captured = capsys.readouterr()
        by_id = {
            d["id"]: d for d in map(json.loads, captured.out.splitlines())
        }
        assert "wrote trace" in captured.err
        stats = by_id["s"]
        assert stats["ok"] is True
        lat = stats["result"]["histograms"]["serve.latency"]
        assert lat["count"] == 2
        assert lat["p50"] <= lat["p90"] <= lat["p99"]
        assert stats["result"]["gauges"]["serve.workers_live"] == 1
        assert stats["result"]["counters"]["serve.completed"] == 2

    def test_metrics_file_export(self, cli_workload, tmp_path, capsys):
        reqs = tmp_path / "reqs.ldjson"
        reqs.write_text("\n".join([
            '{"id": "r1", "op": "range", "point_id": 0, "eps": 2.0}',
            '{"id": "r2", "op": "knn", "point_id": 0, "k": 3}',
            '{"id": "r3", "op": "knn", "point_id": 1, "k": 2}',
            "",
        ]))
        out = tmp_path / "resp.ldjson"
        mfile = tmp_path / "metrics.jsonl"
        assert main([
            "serve", str(cli_workload), "--input", str(reqs),
            "--output", str(out),
            "--metrics-file", str(mfile), "--metrics-interval-s", "60",
        ]) == 0
        docs = [json.loads(line) for line in mfile.read_text().splitlines()]
        assert docs, "the exporter must write a final line on close"
        final = docs[-1]
        assert final["schema"] == "repro.obs.metrics-snapshot/v1"
        assert final["histograms"]["serve.latency"]["count"] == 3
        assert final["counters"]["serve.completed"] == 3
        assert "wrote metrics" in capsys.readouterr().err

    def test_metrics_interval_validated(self, cli_workload, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "serve", str(cli_workload),
                "--metrics-file", str(tmp_path / "m.jsonl"),
                "--metrics-interval-s", "0",
            ])

    def test_trace_flag_records_only_flagged_requests(
        self, cli_workload, tmp_path
    ):
        reqs = tmp_path / "reqs.ldjson"
        reqs.write_text("\n".join([
            '{"id": "plain", "op": "knn", "point_id": 0, "k": 2}',
            '{"id": "traced", "op": "knn", "point_id": 0, "k": 2,'
            ' "trace": true}',
            "",
        ]))
        out = tmp_path / "resp.ldjson"
        trace = tmp_path / "trace.jsonl"
        assert main([
            "serve", str(cli_workload), "--input", str(reqs),
            "--output", str(out), "--trace", str(trace),
        ]) == 0
        roots = [
            r for r in map(json.loads, trace.read_text().splitlines())
            if r["parent_id"] is None
        ]
        assert [r["attrs"]["request_id"] for r in roots] == ["traced"]
