"""End-to-end tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.io import load_result_file, load_workload_file


@pytest.fixture
def workload_file(tmp_path):
    path = tmp_path / "w.json"
    rc = main([
        "generate", "--grid", "8x8", "--points", "120", "--k", "3",
        "--seed", "1", "--out", str(path),
    ])
    assert rc == 0
    return path


class TestGenerate:
    def test_grid_workload(self, workload_file):
        network, points = load_workload_file(workload_file)
        assert network.num_nodes == 64
        assert len(points) == 120

    def test_paper_analogue(self, tmp_path):
        out = tmp_path / "ol.json"
        rc = main([
            "generate", "--workload", "OL", "--scale", "0.02",
            "--out", str(out),
        ])
        assert rc == 0
        network, points = load_workload_file(out)
        assert network.num_nodes > 50
        assert len(points) == 0  # no --points requested

    def test_delaunay(self, tmp_path):
        out = tmp_path / "d.json"
        assert main(["generate", "--delaunay", "60", "--out", str(out)]) == 0
        network, _ = load_workload_file(out)
        assert network.num_nodes == 60

    def test_explicit_s_init(self, tmp_path, capsys):
        out = tmp_path / "s.json"
        main([
            "generate", "--grid", "6x6", "--points", "40", "--k", "2",
            "--s-init", "0.05", "--out", str(out),
        ])
        printed = capsys.readouterr().out
        assert "suggested eps" in printed
        assert "0.375" in printed  # 1.5 * 0.05 * 5


class TestCluster:
    @pytest.mark.parametrize(
        "extra",
        [
            ["--algorithm", "eps-link", "--eps", "1.0"],
            ["--algorithm", "dbscan", "--eps", "1.0", "--min-pts", "3"],
            ["--algorithm", "k-medoids", "--k", "3"],
            ["--algorithm", "optics", "--eps", "1.0"],
            ["--algorithm", "single-link", "--stop", "k", "--k", "3"],
            ["--algorithm", "single-link", "--stop", "distance", "--eps", "1.0"],
        ],
    )
    def test_each_algorithm(self, tmp_path, workload_file, extra):
        out = tmp_path / "c.json"
        rc = main(["cluster", str(workload_file), "--out", str(out), *extra])
        assert rc == 0
        result = load_result_file(out)
        assert result.num_points == 120

    def test_single_link_dendrogram_output(self, tmp_path, workload_file):
        import json as jsonlib

        from repro.core.dendrogram import Dendrogram

        out = tmp_path / "c.json"
        dendro = tmp_path / "d.json"
        rc = main([
            "cluster", str(workload_file), "--algorithm", "single-link",
            "--stop", "k", "--k", "3", "--dendrogram", str(dendro),
            "--out", str(out),
        ])
        assert rc == 0
        doc = jsonlib.loads(dendro.read_text())
        dendrogram = Dendrogram.from_dict(doc)
        assert dendrogram.num_points == 120

    def test_dendrogram_flag_rejected_elsewhere(self, tmp_path, workload_file):
        with pytest.raises(SystemExit):
            main([
                "cluster", str(workload_file), "--algorithm", "eps-link",
                "--eps", "1.0", "--dendrogram", str(tmp_path / "d.json"),
                "--out", str(tmp_path / "c.json"),
            ])

    def test_eps_required(self, tmp_path, workload_file):
        with pytest.raises(SystemExit):
            main([
                "cluster", str(workload_file), "--algorithm", "eps-link",
                "--out", str(tmp_path / "c.json"),
            ])

    def test_empty_workload_rejected(self, tmp_path):
        empty = tmp_path / "empty.json"
        main(["generate", "--grid", "4x4", "--out", str(empty)])
        with pytest.raises(SystemExit):
            main([
                "cluster", str(empty), "--algorithm", "eps-link",
                "--eps", "1.0", "--out", str(tmp_path / "c.json"),
            ])


class TestEvaluateRenderInfo:
    def test_evaluate_prints_metrics(self, tmp_path, workload_file, capsys):
        out = tmp_path / "c.json"
        main(["cluster", str(workload_file), "--algorithm", "eps-link",
              "--eps", "0.4", "--out", str(out)])
        capsys.readouterr()
        rc = main(["evaluate", str(workload_file), str(out)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) >= {"ari", "nmi", "purity", "clusters"}
        assert -1.0 <= report["ari"] <= 1.0

    def test_render_svg(self, tmp_path, workload_file):
        cjson = tmp_path / "c.json"
        main(["cluster", str(workload_file), "--algorithm", "eps-link",
              "--eps", "0.4", "--out", str(cjson)])
        svg = tmp_path / "map.svg"
        rc = main(["render", str(workload_file), "--result", str(cjson),
                   "--out", str(svg)])
        assert rc == 0
        assert svg.read_text().startswith("<svg")

    def test_render_without_result(self, tmp_path, workload_file):
        svg = tmp_path / "plain.svg"
        assert main(["render", str(workload_file), "--out", str(svg)]) == 0
        assert "<circle" in svg.read_text()

    def test_info(self, workload_file, capsys):
        rc = main(["info", str(workload_file)])
        assert rc == 0
        info = json.loads(capsys.readouterr().out)
        assert info["nodes"] == 64
        assert info["points"] == 120
        assert info["connected"] is True
        assert info["labels"] == [-1, 0, 1, 2]
