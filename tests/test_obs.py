"""The observability subsystem: spans, counters, traces, zero-overhead path.

Covers the four guarantees repro.obs makes:

* span nesting — parent/child links and timing containment invariants;
* thread isolation — the active span is per-thread via contextvars while
  aggregates land in the shared registry;
* one namespace — storage and traversal instrumentation aggregate into the
  same counter registry;
* zero overhead while disabled — ``span()`` hands out a shared singleton
  and ``add()`` allocates nothing.
"""

from __future__ import annotations

import gc
import itertools
import json
import sys
import threading

import pytest

from repro import obs
from repro.datagen import grid_city
from repro.eval.counters import OpCounter, StatsRegistry
from repro.network.augmented import AugmentedView
from repro.network.dijkstra import single_source
from repro.network.points import PointSet
from repro.network.queries import range_query
from repro.storage.netstore import NetworkStore


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
# Span nesting and timing invariants
# ----------------------------------------------------------------------
def test_span_nesting_parent_child_links():
    obs.enable()
    with obs.span("outer") as outer:
        assert obs.current_span() is outer
        assert outer.parent_id is None
        with obs.span("inner") as inner:
            assert obs.current_span() is inner
            assert inner.parent_id == outer.span_id
        assert obs.current_span() is outer
    assert obs.current_span() is None


def test_span_timing_containment():
    """A child span's duration never exceeds its parent's."""
    obs.enable()
    with obs.span("parent") as parent:
        with obs.span("child") as child:
            sum(range(1000))
    assert child.duration_s is not None and parent.duration_s is not None
    assert 0.0 <= child.duration_s <= parent.duration_s
    # Child starts after the parent, ends before the parent ends.
    assert child.start_s >= parent.start_s
    assert child.start_s + child.duration_s <= parent.start_s + parent.duration_s
    snap = obs.snapshot()
    assert snap["spans"]["parent"]["count"] == 1
    assert snap["spans"]["child"]["count"] == 1


def test_span_exception_restores_parent_and_flags_error(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs.enable(trace_path=str(trace))
    with pytest.raises(ValueError):
        with obs.span("outer"):
            with obs.span("failing"):
                raise ValueError("boom")
    assert obs.current_span() is None
    obs.disable()
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    by_name = {r["name"]: r for r in records}
    assert by_name["failing"]["error"] is True
    assert "error" not in by_name["outer"] or by_name["outer"]["error"] is True
    assert by_name["failing"]["parent_id"] == by_name["outer"]["span_id"]


def test_trace_jsonl_records_are_well_formed(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs.enable(trace_path=str(trace))
    with obs.span("a", label="x"):
        with obs.span("b"):
            pass
    obs.disable()
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    assert [r["name"] for r in records] == ["b", "a"]  # completion order
    for r in records:
        assert set(r) >= {"name", "span_id", "parent_id", "start_s", "dur_s", "thread"}
        assert r["dur_s"] >= 0.0
        assert r["start_s"] >= 0.0
    assert records[1]["attrs"] == {"label": "x"}


# ----------------------------------------------------------------------
# Thread isolation
# ----------------------------------------------------------------------
def test_threads_have_isolated_span_stacks():
    obs.enable()
    seen: dict[str, object] = {}
    barrier = threading.Barrier(2)

    def worker(tag: str):
        # New threads start with a fresh contextvars context: no inherited
        # active span from the main thread.
        seen[f"{tag}-initial"] = obs.current_span()
        with obs.span(f"{tag}.work") as sp:
            barrier.wait(timeout=5)  # both threads hold their span open
            seen[f"{tag}-active"] = obs.current_span() is sp
            seen[f"{tag}-parent"] = sp.parent_id

    with obs.span("main.outer"):
        threads = [
            threading.Thread(target=worker, args=(t,)) for t in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
    assert seen["t1-initial"] is None and seen["t2-initial"] is None
    assert seen["t1-active"] and seen["t2-active"]
    # Thread spans are roots: the main thread's span is not their parent.
    assert seen["t1-parent"] is None and seen["t2-parent"] is None
    # All three spans still aggregated in the shared registry.
    snap = obs.snapshot()
    assert set(snap["spans"]) == {"main.outer", "t1.work", "t2.work"}


def test_counter_adds_from_threads_all_land():
    obs.enable()

    def worker():
        for _ in range(100):
            obs.add("test.threaded")

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    # CPython dict updates are atomic enough under the GIL for counting.
    assert obs.STATE.counters["test.threaded"] == 400


# ----------------------------------------------------------------------
# Counter aggregation across layers
# ----------------------------------------------------------------------
def test_storage_and_traversal_share_one_registry(tmp_path):
    network = grid_city(6, 6, seed=0)
    points = PointSet(network)
    for u, v, w in itertools.islice(network.edges(), 12):
        points.add(u, v, w / 2)
    obs.enable()
    with NetworkStore.build(tmp_path / "net.db", network, points) as store:
        aug = AugmentedView(store, points)
        single_source(network, next(iter(network.nodes())))
        first_pid = next(iter(points)).point_id
        range_query(aug, points.get(first_pid), 2.0)
    counters = obs.snapshot()["counters"]
    # One namespace: traversal, query, and storage counts side by side.
    assert counters["dijkstra.runs"] == 1
    assert counters["dijkstra.heap_pops"] > 0
    assert counters["queries.range_queries"] == 1
    assert counters["storage.physical_reads"] > 0
    assert counters["storage.buffer_misses"] > 0
    # netstore.build was traced as a span in the same state.
    assert obs.snapshot()["spans"]["netstore.build"]["count"] == 1


def test_opcounter_shims_publish_into_obs():
    ops = OpCounter(heap_pops=7, nodes_settled=3)
    d = ops.as_dict()
    assert d == {
        "heap_pushes": 0,
        "heap_pops": 7,
        "nodes_settled": 3,
        "edges_relaxed": 0,
        "points_scanned": 0,
    }
    assert all(isinstance(k, str) for k in d)  # the documented dict[str, int]
    obs.enable()
    ops.publish("legacy")
    assert obs.STATE.counters["legacy.heap_pops"] == 7
    assert obs.STATE.counters["legacy.nodes_settled"] == 3
    assert "legacy.heap_pushes" not in obs.STATE.counters  # zeros elided


def test_stats_registry_publish():
    reg = StatsRegistry()
    reg.counter("probe").heap_pops += 5
    obs.enable()
    reg.publish()
    assert obs.STATE.counters["ops.probe.heap_pops"] == 5


# ----------------------------------------------------------------------
# Disabled path: zero overhead
# ----------------------------------------------------------------------
def test_disabled_span_is_the_shared_singleton():
    assert not obs.is_enabled()
    assert obs.span("anything") is obs.NOOP_SPAN
    assert obs.span("other", k=1) is obs.NOOP_SPAN
    with obs.span("x") as sp:
        assert sp is obs.NOOP_SPAN


def test_disabled_add_records_nothing():
    assert not obs.is_enabled()
    obs.add("ghost.counter", 99)
    assert obs.STATE.counters == {}


@pytest.mark.skipif(
    not hasattr(sys, "getallocatedblocks"),
    reason="needs CPython's sys.getallocatedblocks",
)
def test_disabled_path_does_not_allocate():
    """While disabled, span()/add() allocate no objects at all."""
    assert not obs.is_enabled()

    def exercise():
        for _ in range(100):
            with obs.span("hot", attr=1):
                obs.add("hot.counter")

    exercise()  # warm up caches (method/code objects, etc.)
    gc.collect()
    before = sys.getallocatedblocks()
    exercise()
    gc.collect()
    after = sys.getallocatedblocks()
    # Allow a little slack for interpreter-internal noise.
    assert after - before <= 2, f"disabled obs path allocated {after - before} blocks"


def test_enable_fresh_resets_and_accumulating_mode_keeps():
    obs.enable()
    obs.add("x.y", 5)
    obs.disable()
    obs.enable(fresh=False)
    obs.add("x.y", 1)
    assert obs.STATE.counters["x.y"] == 6
    obs.enable()  # fresh=True default
    assert obs.STATE.counters == {}


def test_accumulating_reenable_keeps_epoch_and_span_starts_monotone():
    """enable(fresh=False) must not rebase the epoch: span start_s values
    accumulated across enable/disable cycles stay monotone instead of
    jumping backwards to a new zero."""
    obs.enable()
    first_epoch = obs.STATE.epoch
    assert first_epoch > 0.0
    with obs.span("cycle.one") as s1:
        pass
    obs.disable()
    obs.enable(fresh=False)
    assert obs.STATE.epoch == first_epoch
    with obs.span("cycle.two") as s2:
        pass
    assert s2.start_s >= s1.start_s
    obs.disable()
    # A fresh enable is the one legitimate rebase point.
    obs.enable()
    assert obs.STATE.epoch > first_epoch


def test_counter_increments_survive_heavy_contention():
    """Hammer one counter name from many threads: the read-modify-write in
    add() runs under the state lock, so no increment is ever lost."""
    obs.enable()
    n_threads, n_iters = 8, 2000
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait(10)
        for _ in range(n_iters):
            obs.add("test.contended")
            obs.add("test.valued", 3)

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert obs.STATE.counters["test.contended"] == n_threads * n_iters
    assert obs.STATE.counters["test.valued"] == n_threads * n_iters * 3


def test_span_aggregates_survive_heavy_contention():
    """Span count/total fold-in has the same lost-update exposure as
    counters; the lock must cover it too."""
    obs.enable()
    n_threads, n_iters = 8, 500
    barrier = threading.Barrier(n_threads)

    def worker():
        barrier.wait(10)
        for _ in range(n_iters):
            with obs.span("test.contended_span"):
                pass

    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert obs.STATE.span_count["test.contended_span"] == n_threads * n_iters


# ----------------------------------------------------------------------
# Request-scoped trace sampling
# ----------------------------------------------------------------------
def test_sampled_scope_gates_trace_export(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs.enable(trace_path=str(trace), sample_requests=True)
    assert not obs.is_sampled()
    with obs.span("outside.work"):
        pass
    with obs.sampled():
        assert obs.is_sampled()
        with obs.span("inside.work"):
            with obs.span("inside.child"):
                pass
    assert not obs.is_sampled()
    obs.disable()
    names = [
        json.loads(line)["name"] for line in trace.read_text().splitlines()
    ]
    # Only spans opened inside the sampled scope reach the trace file...
    assert names == ["inside.child", "inside.work"]
    # ...while the aggregates record everything either way.
    spans = obs.snapshot()["spans"]
    assert spans["outside.work"]["count"] == 1
    assert spans["inside.work"]["count"] == 1


def test_sampling_off_traces_everything(tmp_path):
    trace = tmp_path / "trace.jsonl"
    obs.enable(trace_path=str(trace))  # sample_requests defaults off
    with obs.span("plain.work"):
        pass
    obs.disable()
    names = [
        json.loads(line)["name"] for line in trace.read_text().splitlines()
    ]
    assert names == ["plain.work"]
    # disable() must drop the sampling flag along with everything else.
    assert obs.STATE.sampling is False
