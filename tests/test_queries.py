"""Tests for network range and kNN queries, validated against brute force."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.network.augmented import AugmentedView
from repro.network.distance import network_distance
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.network.queries import knn_query, nearest_point, range_query

from tests.conftest import make_random_connected_network, scatter_points


@pytest.fixture
def aug(small_network, small_points):
    return AugmentedView(small_network, small_points)


class TestRangeQuery:
    def test_known_ranges(self, aug, small_points):
        # Distances from p0: p1=1.0, p2=2.5, p3=5.5.
        q = small_points.get(0)
        got = range_query(aug, q, eps=2.5)
        ids = [p.point_id for p, _ in got]
        assert ids == [0, 1, 2]
        dists = dict((p.point_id, d) for p, d in got)
        assert dists[1] == pytest.approx(1.0)
        assert dists[2] == pytest.approx(2.5)

    def test_exclude_query(self, aug, small_points):
        got = range_query(aug, small_points.get(0), eps=2.5, include_query=False)
        assert [p.point_id for p, _ in got] == [1, 2]

    def test_zero_eps_only_query(self, aug, small_points):
        got = range_query(aug, small_points.get(0), eps=0.0)
        assert [p.point_id for p, _ in got] == [0]

    def test_negative_eps_empty(self, aug, small_points):
        assert range_query(aug, small_points.get(0), eps=-1.0) == []

    def test_sorted_by_distance(self, aug, small_points):
        got = range_query(aug, small_points.get(0), eps=10.0)
        dists = [d for _, d in got]
        assert dists == sorted(dists)
        assert len(got) == 4


class TestKnnQuery:
    def test_known_neighbors(self, aug, small_points):
        got = knn_query(aug, small_points.get(0), k=2)
        assert [p.point_id for p, _ in got] == [1, 2]

    def test_k_zero(self, aug, small_points):
        assert knn_query(aug, small_points.get(0), k=0) == []

    def test_k_exceeds_population(self, aug, small_points):
        got = knn_query(aug, small_points.get(0), k=10)
        assert len(got) == 3  # all other points

    def test_include_query(self, aug, small_points):
        got = knn_query(aug, small_points.get(0), k=1, include_query=True)
        assert got[0][0].point_id == 0
        assert got[0][1] == 0.0

    def test_nearest_point(self, aug, small_points):
        hit = nearest_point(aug, small_points.get(0))
        assert hit is not None
        assert hit[0].point_id == 1

    def test_nearest_point_alone(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0)])
        ps = PointSet(net)
        p = ps.add(1, 2, 0.5)
        aug = AugmentedView(net, ps)
        assert nearest_point(aug, p) is None


# ---------------------------------------------------------------------------
# Property tests against brute force
# ---------------------------------------------------------------------------

@st.composite
def query_instance(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = random.Random(seed)
    n_nodes = draw(st.integers(min_value=3, max_value=12))
    net = make_random_connected_network(rng, n_nodes, extra_edges=draw(st.integers(0, 6)))
    points = scatter_points(rng, net, draw(st.integers(min_value=3, max_value=10)))
    eps = draw(st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
    k = draw(st.integers(min_value=1, max_value=5))
    return net, points, eps, k


@settings(max_examples=50, deadline=None)
@given(query_instance())
def test_property_range_query_matches_bruteforce(instance):
    net, points, eps, _ = instance
    aug = AugmentedView(net, points)
    pts = list(points)
    query = pts[0]
    got = {p.point_id for p, _ in range_query(aug, query, eps)}
    want = {
        p.point_id
        for p in pts
        if network_distance(aug, query, p) <= eps + 1e-12
    }
    assert got == want


@settings(max_examples=50, deadline=None)
@given(query_instance())
def test_property_knn_matches_bruteforce(instance):
    net, points, _, k = instance
    aug = AugmentedView(net, points)
    pts = list(points)
    query = pts[0]
    got = knn_query(aug, query, k)
    brute = sorted(
        (network_distance(aug, query, p), p.point_id)
        for p in pts
        if p.point_id != query.point_id
    )
    want_dists = [d for d, _ in brute[:k]]
    got_dists = [d for _, d in got]
    assert got_dists == pytest.approx(want_dists)
