"""The live-metrics layer: histograms, gauges, exporter, renderers, lint.

Covers the contracts the serve telemetry rides on:

* histograms — exact count/sum/min/max, deterministic bucket placement,
  monotone quantile estimates, in-place reset (object identity survives);
* gauges — read-time sampling, failure isolation (a raising callable reads
  as ``None``), ownership-checked unregistration;
* the registry — get-or-create sharing, ``obs.reset()`` integration;
* the JSONL metrics exporter — periodic lines plus a final line on close,
  every line independently parseable;
* the Prometheus text renderer — cumulative buckets, ``+Inf``, sums;
* the ``tools/check_metric_names.py`` taxonomy lint, which must pass on
  the shipped source tree and fail on off-namespace names.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs.export import SNAPSHOT_SCHEMA, MetricsExporter
from repro.obs.metrics import (
    REGISTRY,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe,
)
from repro.obs.report import render_prometheus

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_TOOL = REPO_ROOT / "tools" / "check_metric_names.py"


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
class TestHistogram:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            Histogram("serve.test", start=0.0)
        with pytest.raises(ValueError):
            Histogram("serve.test", factor=1.0)
        with pytest.raises(ValueError):
            Histogram("serve.test", buckets=0)

    def test_count_and_sum_are_exact(self):
        h = Histogram("serve.test")
        values = [0.001, 0.002, 0.004, 0.1, 3.5]
        for v in values:
            h.observe(v)
        assert h.count == len(values)
        assert h.sum == pytest.approx(sum(values))
        assert h.min == pytest.approx(min(values))
        assert h.max == pytest.approx(max(values))

    def test_bucket_placement_is_deterministic(self):
        # bounds: 1, 2, 4, 8; overflow above 8.
        h = Histogram("serve.test", start=1.0, factor=2.0, buckets=4)
        for v in (0.5, 1.0, 1.5, 3.0, 9.0):
            h.observe(v)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert h.bucket_counts == [2, 1, 1, 0, 1]

    def test_quantiles_monotone_and_clamped(self):
        h = Histogram("serve.test")
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1ms .. 100ms
        p50, p90, p99 = h.quantile(0.5), h.quantile(0.9), h.quantile(0.99)
        assert p50 <= p90 <= p99
        assert h.min <= p50 and p99 <= h.max
        # The median of a 1..100ms uniform spread sits mid-range, not at
        # either extreme: the interpolation really interpolates.
        assert 0.01 < p50 < 0.1

    def test_empty_histogram_reads_none(self):
        h = Histogram("serve.test")
        assert h.quantile(0.5) is None
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0.0
        assert snap["min"] is None and snap["max"] is None
        assert snap["p50"] is None and snap["p99"] is None
        assert snap["buckets"] == []

    def test_snapshot_shape_is_json_ready(self):
        h = Histogram("serve.test", start=1.0, factor=2.0, buckets=2)
        h.observe(1.5)
        h.observe(100.0)  # overflow
        snap = h.snapshot()
        json.dumps(snap)
        assert snap["buckets"] == [[2.0, 1], [None, 1]]
        assert snap["count"] == 2

    def test_reset_zeroes_in_place(self):
        h = Histogram("serve.test")
        h.observe(0.5)
        counts = h.bucket_counts
        h.reset()
        assert h.count == 0 and h.sum == 0.0
        assert h.bucket_counts is counts  # same list, zeroed
        assert sum(counts) == 0
        h.observe(0.25)  # the held reference keeps working
        assert h.count == 1

    def test_concurrent_observes_lose_nothing(self):
        h = Histogram("serve.test")
        n_threads, n_iters = 8, 2000
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait(10)
            for i in range(n_iters):
                h.observe(0.001 * (1 + i % 7))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert h.count == n_threads * n_iters
        assert sum(h.bucket_counts) == n_threads * n_iters


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------
class TestGauge:
    def test_reads_sample_the_callable(self):
        box = {"v": 1}
        g = Gauge("serve.test_gauge", lambda: box["v"])
        assert g.read() == 1
        box["v"] = 7.5
        assert g.read() == 7.5

    def test_failures_and_non_numbers_read_none(self):
        def boom():
            raise RuntimeError("sensor broken")

        assert Gauge("serve.g", boom).read() is None
        assert Gauge("serve.g", lambda: None).read() is None
        assert Gauge("serve.g", lambda: True).read() is None
        assert Gauge("serve.g", lambda: "up").read() is None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_histogram_get_or_create_shares_one_instrument(self):
        reg = MetricsRegistry()
        a = reg.histogram("serve.test")
        b = reg.histogram("serve.test")
        assert a is b
        a.observe(0.1)
        assert reg.snapshot()["histograms"]["serve.test"]["count"] == 1

    def test_gauge_replace_and_owned_unregister(self):
        reg = MetricsRegistry()
        first = reg.gauge("serve.g", lambda: 1)
        second = reg.gauge("serve.g", lambda: 2)  # replaces
        assert reg.read_gauges()["serve.g"] == 2
        # The displaced owner cannot tear down its successor...
        reg.unregister_gauge("serve.g", owner=first)
        assert reg.read_gauges()["serve.g"] == 2
        # ...but the current owner can.
        reg.unregister_gauge("serve.g", owner=second)
        assert reg.read_gauges() == {}
        reg.unregister_gauge("serve.g")  # absent: a no-op, not an error

    def test_reset_zeroes_histograms_and_drops_gauges(self):
        reg = MetricsRegistry()
        h = reg.histogram("serve.test")
        h.observe(0.5)
        reg.gauge("serve.g", lambda: 3)
        reg.reset()
        assert h.count == 0
        assert reg.histograms()["serve.test"] is h  # identity survives
        assert reg.gauges() == {}

    def test_obs_reset_reaches_the_global_registry(self):
        h = REGISTRY.histogram("serve.test_reset_hook")
        h.observe(0.5)
        REGISTRY.gauge("serve.test_reset_gauge", lambda: 1)
        obs.reset()
        assert h.count == 0
        assert "serve.test_reset_gauge" not in REGISTRY.gauges()

    def test_module_observe_is_gated_on_enabled(self):
        observe("serve.test_gated", 0.5)
        assert "serve.test_gated" not in REGISTRY.histograms()
        obs.enable()
        observe("serve.test_gated", 0.5)
        assert REGISTRY.histogram("serve.test_gated").count == 1


# ----------------------------------------------------------------------
# JSONL exporter
# ----------------------------------------------------------------------
class TestExporter:
    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsExporter(str(tmp_path / "m.jsonl"), interval_s=0)

    def test_final_line_on_close_and_schema(self, tmp_path):
        obs.enable()
        obs.add("serve.test_counter", 3)
        REGISTRY.histogram("serve.test").observe(0.5)
        path = tmp_path / "m.jsonl"
        with MetricsExporter(str(path), interval_s=60.0):
            pass  # closed immediately: only the final snapshot line
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        doc = json.loads(lines[0])
        assert doc["schema"] == SNAPSHOT_SCHEMA
        assert doc["uptime_s"] >= 0.0
        assert doc["counters"]["serve.test_counter"] == 3
        assert doc["histograms"]["serve.test"]["count"] == 1

    def test_periodic_lines_all_parse(self, tmp_path):
        obs.enable()
        path = tmp_path / "m.jsonl"
        exporter = MetricsExporter(str(path), interval_s=0.02)
        deadline = time.monotonic() + 5.0
        while exporter.lines_written < 3 and time.monotonic() < deadline:
            obs.add("serve.test_ticks")
            time.sleep(0.01)
        exporter.close()
        lines = path.read_text().splitlines()
        assert len(lines) >= 4  # >=3 periodic + the final close line
        docs = [json.loads(line) for line in lines]
        assert all(d["schema"] == SNAPSHOT_SCHEMA for d in docs)
        # Counters are cumulative, so successive snapshots are monotone.
        ticks = [d["counters"].get("serve.test_ticks", 0) for d in docs]
        assert ticks == sorted(ticks)
        assert exporter.lines_written == len(lines)

    def test_close_is_idempotent_enough(self, tmp_path):
        path = tmp_path / "m.jsonl"
        exporter = MetricsExporter(str(path), interval_s=60.0)
        exporter.close()
        exporter.close()  # second close: no crash, no extra line
        assert len(path.read_text().splitlines()) == 1


# ----------------------------------------------------------------------
# Prometheus renderer
# ----------------------------------------------------------------------
class TestPrometheusRenderer:
    def test_renders_counters_histograms_gauges(self):
        snap = {
            "counters": {"serve.completed": 5},
            "histograms": {
                "serve.latency": {
                    "count": 3,
                    "sum": 0.75,
                    "buckets": [[0.25, 2], [None, 1]],
                },
            },
            "gauges": {"serve.queue_depth": 4, "breaker.state": None},
        }
        text = render_prometheus(snap)
        assert "# TYPE repro_serve_completed counter" in text
        assert "repro_serve_completed 5" in text
        assert '# TYPE repro_serve_latency_seconds histogram' in text
        assert 'repro_serve_latency_seconds_bucket{le="0.25"} 2' in text
        # Cumulative buckets: the overflow line carries the full count.
        assert 'repro_serve_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_serve_latency_seconds_sum 0.75" in text
        assert "repro_serve_latency_seconds_count 3" in text
        assert "repro_serve_queue_depth 4" in text
        # Unreadable gauges are skipped, not rendered as "None".
        assert "breaker_state" not in text
        assert text.endswith("\n")

    def test_inf_bucket_synthesised_when_absent(self):
        snap = {
            "histograms": {
                "serve.latency": {
                    "count": 2, "sum": 0.2, "buckets": [[0.25, 2]],
                },
            },
        }
        text = render_prometheus(snap)
        assert 'le="+Inf"} 2' in text

    def test_live_render_reads_both_registries(self):
        obs.enable()
        obs.add("serve.test_live")
        REGISTRY.histogram("serve.test_h").observe(0.1)
        REGISTRY.gauge("serve.test_g", lambda: 9)
        text = render_prometheus()
        assert "repro_serve_test_live 1" in text
        assert "repro_serve_test_h_seconds_count 1" in text
        assert "repro_serve_test_g 9" in text


# ----------------------------------------------------------------------
# Metric-name taxonomy lint
# ----------------------------------------------------------------------
class TestMetricNameLint:
    def test_shipped_source_tree_passes(self):
        proc = subprocess.run(
            [sys.executable, str(LINT_TOOL), str(REPO_ROOT / "src" / "repro")],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_off_taxonomy_names_fail(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '_obs_add("rogue_namespace.count")\n'
            '_obs_add("serve")\n'
            'span("Serve.CamelCase")\n'
        )
        proc = subprocess.run(
            [sys.executable, str(LINT_TOOL), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "unknown namespace" in proc.stdout
        assert "dotted subsystem prefix" in proc.stdout
        assert "not lowercase dotted" in proc.stdout

    def test_fstring_prefix_is_checked(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text('_obs_add(f"breaker.transitions.{state}")\n')
        proc = subprocess.run(
            [sys.executable, str(LINT_TOOL), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout
        bad = tmp_path / "bad.py"
        bad.write_text('_obs_add(f"rogue.{state}")\n')
        proc = subprocess.run(
            [sys.executable, str(LINT_TOOL), str(tmp_path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "rogue" in proc.stdout
