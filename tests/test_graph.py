"""Unit tests for the in-memory spatial network model."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    InvalidWeightError,
    NetworkError,
    NodeNotFoundError,
)
from repro.network.graph import SpatialNetwork, normalize_edge


class TestNormalizeEdge:
    def test_orders_endpoints(self):
        assert normalize_edge(5, 2) == (2, 5)
        assert normalize_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(NetworkError):
            normalize_edge(3, 3)


class TestConstruction:
    def test_empty_network(self):
        net = SpatialNetwork()
        assert net.num_nodes == 0
        assert net.num_edges == 0
        assert len(net) == 0

    def test_add_nodes_and_edges(self, small_network):
        assert small_network.num_nodes == 5
        assert small_network.num_edges == 5
        assert small_network.has_edge(1, 2)
        assert small_network.has_edge(2, 1)
        assert not small_network.has_edge(1, 5)

    def test_add_node_idempotent(self):
        net = SpatialNetwork()
        net.add_node(1)
        net.add_node(1)
        assert net.num_nodes == 1

    def test_coords_update_on_readd(self):
        net = SpatialNetwork()
        net.add_node(1, x=0.0, y=0.0)
        net.add_node(1, x=3.0, y=4.0)
        assert net.node_coords(1) == (3.0, 4.0)

    def test_partial_coords_rejected(self):
        net = SpatialNetwork()
        with pytest.raises(NetworkError):
            net.add_node(1, x=1.0)

    def test_edge_weight_defaults_to_euclidean(self):
        net = SpatialNetwork()
        net.add_node(1, x=0.0, y=0.0)
        net.add_node(2, x=3.0, y=4.0)
        net.add_edge(1, 2)
        assert net.edge_weight(1, 2) == pytest.approx(5.0)

    def test_edge_readd_replaces_weight(self):
        net = SpatialNetwork()
        net.add_edge(1, 2, 2.0)
        net.add_edge(2, 1, 7.0)
        assert net.num_edges == 1
        assert net.edge_weight(1, 2) == 7.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, math.inf, math.nan])
    def test_invalid_weights_rejected(self, bad):
        net = SpatialNetwork()
        with pytest.raises(InvalidWeightError):
            net.add_edge(1, 2, bad)

    def test_self_loop_rejected(self):
        net = SpatialNetwork()
        with pytest.raises(NetworkError):
            net.add_edge(4, 4, 1.0)

    def test_from_edge_list_roundtrip(self, small_network):
        clone = SpatialNetwork.from_edge_list(
            small_network.edges(),
            coords={n: small_network.node_coords(n) for n in small_network.nodes()},
        )
        assert clone.num_nodes == small_network.num_nodes
        assert clone.num_edges == small_network.num_edges
        assert sorted(clone.edges()) == sorted(small_network.edges())


class TestAccessors:
    def test_neighbors(self, small_network):
        nbrs = dict(small_network.neighbors(1))
        assert nbrs == {2: 2.0, 4: 4.0}

    def test_neighbors_missing_node(self, small_network):
        with pytest.raises(NodeNotFoundError):
            list(small_network.neighbors(99))

    def test_degree(self, small_network):
        assert small_network.degree(1) == 2
        assert small_network.degree(5) == 2

    def test_edge_weight_symmetric(self, small_network):
        assert small_network.edge_weight(1, 2) == small_network.edge_weight(2, 1)

    def test_edge_weight_missing(self, small_network):
        with pytest.raises(EdgeNotFoundError):
            small_network.edge_weight(1, 5)

    def test_edges_are_canonical_and_unique(self, small_network):
        edges = list(small_network.edges())
        assert len(edges) == small_network.num_edges
        assert all(u < v for u, v, _ in edges)

    def test_contains(self, small_network):
        assert 1 in small_network
        assert 99 not in small_network

    def test_total_weight(self, small_network):
        assert small_network.total_weight() == pytest.approx(12.0)

    def test_node_coords_missing_node(self, small_network):
        with pytest.raises(NodeNotFoundError):
            small_network.node_coords(42)

    def test_node_without_coords(self):
        net = SpatialNetwork()
        net.add_node(7)
        with pytest.raises(NetworkError):
            net.node_coords(7)
        assert not net.has_coords(7)


class TestMutation:
    def test_remove_edge(self, small_network):
        small_network.remove_edge(1, 2)
        assert not small_network.has_edge(1, 2)
        assert small_network.num_edges == 4

    def test_remove_missing_edge(self, small_network):
        with pytest.raises(EdgeNotFoundError):
            small_network.remove_edge(1, 5)


class TestDerivedNetworks:
    def test_subnetwork(self, small_network):
        sub = small_network.subnetwork({1, 2, 3})
        assert sub.num_nodes == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)
        assert sub.num_edges == 2
        # Coordinates survive.
        assert sub.node_coords(1) == small_network.node_coords(1)

    def test_subnetwork_missing_node(self, small_network):
        with pytest.raises(NodeNotFoundError):
            small_network.subnetwork({1, 99})

    def test_copy_is_independent(self, small_network):
        clone = small_network.copy()
        clone.remove_edge(1, 2)
        assert small_network.has_edge(1, 2)
        assert not clone.has_edge(1, 2)

    def test_reweighted(self, small_network):
        doubled = small_network.reweighted(lambda u, v, w: 2 * w)
        assert doubled.edge_weight(1, 2) == pytest.approx(4.0)
        assert doubled.num_edges == small_network.num_edges
        # Original unchanged.
        assert small_network.edge_weight(1, 2) == pytest.approx(2.0)

    def test_repr(self, small_network):
        assert "nodes=5" in repr(small_network)
