"""Tests for repro.resilience: deadlines, cancellation, breakers, delay faults.

The contract under test (see ``docs/resilience.md``): a run that exceeds
its deadline or is cancelled stops at a cooperative checkpoint with a typed
interrupt, leaves any periodic snapshot intact so ``--resume`` completes it
identically, and a circuit breaker on the storage read path converts
persistent I/O failure into fast typed rejections instead of per-page
retry grinds.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import faults, obs
from repro.cli import main
from repro.exceptions import (
    BudgetExceededError,
    Cancelled,
    CircuitOpenError,
    DeadlineExceeded,
    Interrupted,
    ParameterError,
)
from repro.faults import FaultRule, InjectedIOError
from repro.network.augmented import AugmentedView
from repro.network.dijkstra import single_source, single_source_with_paths
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.network.queries import knn_query, range_query
from repro.recovery import RetryPolicy, retrying
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CancelToken,
    CircuitBreaker,
    Deadline,
    TickingClock,
    VirtualClock,
    breaking,
)
from repro.resilience.deadline import STATE, check, current
from repro.storage.pager import PagedFile
from tests.test_checkpoint_resume import MAKERS, _Capture, _same, _workload


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()
    assert STATE.engaged == 0, "a deadline activation leaked"


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def baselines(workload):
    net, pts = workload
    return {name: make(net, pts).run() for name, make in MAKERS.items()}


def line_network(n: int = 12) -> tuple[SpatialNetwork, PointSet]:
    net = SpatialNetwork()
    for i in range(n):
        net.add_node(i)
    for i in range(n - 1):
        net.add_edge(i, i + 1, 1.0)
    pts = PointSet(net)
    for i in range(n - 1):
        pts.add(i, i + 1, 0.5, point_id=i)
    return net, pts


# ----------------------------------------------------------------------
# Deterministic clocks
# ----------------------------------------------------------------------
class TestClocks:
    def test_virtual_clock_advances(self):
        vc = VirtualClock()
        assert vc.monotonic() == 0.0
        vc.advance(1.5)
        assert vc.monotonic() == 1.5
        vc.sleep(0.5)
        assert vc.monotonic() == 2.0

    def test_virtual_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_ticking_clock_steps_per_read(self):
        tc = TickingClock(step=2.0, start=10.0)
        assert tc.monotonic() == 12.0
        assert tc() == 14.0
        assert tc.reads == 2


# ----------------------------------------------------------------------
# CancelToken
# ----------------------------------------------------------------------
class TestCancelToken:
    def test_first_cancel_wins(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.cancel("operator request")
        assert not token.cancel("too late")
        assert token.cancelled
        assert token.reason == "operator request"

    def test_raise_if_cancelled(self):
        token = CancelToken()
        token.raise_if_cancelled("site.x")  # not tripped: no-op
        token.cancel("shutdown")
        with pytest.raises(Cancelled) as exc:
            token.raise_if_cancelled("site.x", partial={"done": 3})
        assert "shutdown" in str(exc.value)
        assert exc.value.partial == {"done": 3}


# ----------------------------------------------------------------------
# Deadline semantics
# ----------------------------------------------------------------------
class TestDeadline:
    def test_negative_timeout_rejected(self):
        with pytest.raises(ParameterError):
            Deadline(-0.1)

    def test_no_limit_never_expires(self):
        vc = VirtualClock()
        d = Deadline(None, clock=vc.monotonic)
        vc.advance(1e9)
        assert not d.expired()
        assert d.remaining() == float("inf")
        d.check("site.a")
        assert d.checks == 1

    def test_expiry_is_clock_driven(self):
        vc = VirtualClock()
        d = Deadline(5.0, clock=vc.monotonic)
        d.check("site.a")
        vc.advance(4.999)
        d.check("site.a")
        assert not d.expired()
        vc.advance(0.001)
        with pytest.raises(DeadlineExceeded) as exc:
            d.check("site.a", partial=[1, 2])
        err = exc.value
        assert err.site == "site.a"
        assert err.timeout_s == 5.0
        assert err.elapsed_s >= 5.0
        assert err.checks == 3
        assert err.partial == [1, 2]

    def test_zero_timeout_expires_at_first_check(self):
        d = Deadline(0.0)
        with pytest.raises(DeadlineExceeded):
            d.check("site.a")

    def test_cancel_beats_expiry(self):
        vc = VirtualClock()
        d = Deadline(5.0, clock=vc.monotonic)
        vc.advance(10.0)  # both expired AND cancelled: cancel reported first
        d.cancel("user hit ^C")
        with pytest.raises(Cancelled):
            d.check("site.a")

    def test_ticking_clock_expires_at_exact_check(self):
        # One clock read at construction, one per check: expires at check N.
        n = 7
        d = Deadline(float(n), clock=TickingClock())
        for _ in range(n - 1):
            d.check("site.a")
        with pytest.raises(DeadlineExceeded) as exc:
            d.check("site.a")
        assert exc.value.checks == n

    def test_activation_arms_and_restores(self):
        assert STATE.engaged == 0
        assert current() is None
        check("site.a")  # disarmed: free no-op
        outer = Deadline(None)
        inner = Deadline(None)
        with outer.activate():
            assert STATE.engaged == 1
            assert current() is outer
            with inner.activate():
                assert STATE.engaged == 2
                assert current() is inner
                check("site.b")
                assert inner.checks == 1 and outer.checks == 0
            assert current() is outer
        assert STATE.engaged == 0
        assert current() is None

    def test_interrupt_taxonomy(self):
        assert issubclass(DeadlineExceeded, Interrupted)
        assert issubclass(Cancelled, Interrupted)
        assert issubclass(BudgetExceededError, Interrupted)

    def test_obs_counters(self):
        obs.reset()
        obs.enable()
        try:
            with pytest.raises(DeadlineExceeded):
                Deadline(0.0).check("s")
            d = Deadline(None)
            d.cancel("x")
            with pytest.raises(Cancelled):
                d.check("s")
            counters = obs.snapshot()["counters"]
            assert counters.get("resilience.deadline_exceeded") == 1
            assert counters.get("resilience.cancelled") == 1
        finally:
            obs.disable()
            obs.reset()


# ----------------------------------------------------------------------
# Deadline wired through the traversals
# ----------------------------------------------------------------------
class TestDeadlineInTraversals:
    def test_dijkstra_interrupted_with_partial(self):
        net, _ = line_network(12)
        with Deadline(4.0, clock=TickingClock()).activate():
            with pytest.raises(DeadlineExceeded) as exc:
                single_source(net, 0)
        partial = exc.value.partial
        assert isinstance(partial, dict) and 0 < len(partial) < 12

    def test_dijkstra_with_paths_interrupted(self):
        net, _ = line_network(12)
        with Deadline(3.0, clock=TickingClock()).activate():
            with pytest.raises(DeadlineExceeded):
                single_source_with_paths(net, 0)

    def test_queries_interrupted(self):
        net, pts = line_network(12)
        aug = AugmentedView(net, pts)
        anchor = pts.get(0)
        with Deadline(2.0, clock=TickingClock()).activate():
            with pytest.raises(DeadlineExceeded) as exc:
                range_query(aug, anchor, 100.0)
        assert exc.value.site in ("queries.settle", "augmented.neighbors")
        with Deadline(2.0, clock=TickingClock()).activate():
            with pytest.raises(DeadlineExceeded):
                knn_query(aug, anchor, 5)

    def test_disarmed_results_unchanged(self):
        net, pts = line_network(12)
        plain = single_source(net, 0)
        with Deadline(None).activate():
            armed = single_source(net, 0)
        assert plain == armed

    def test_cancel_from_outside(self):
        net, _ = line_network(12)
        d = Deadline(None)
        d.cancel("test says stop")
        with d.activate():
            with pytest.raises(Cancelled) as exc:
                single_source(net, 0)
        assert "test says stop" in str(exc.value)


# ----------------------------------------------------------------------
# Deadline through the clustering algorithms
# ----------------------------------------------------------------------
class TestDeadlineInAlgorithms:
    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_unmeetable_deadline_interrupts_and_tags(self, name, workload):
        net, pts = workload
        algo = MAKERS[name](net, pts)
        algo.deadline = Deadline(0.0)
        with pytest.raises(DeadlineExceeded) as exc:
            algo.run()
        assert exc.value.algorithm == algo.algorithm_name
        assert exc.value.checks == 1

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_generous_deadline_does_not_perturb(self, name, workload, baselines):
        net, pts = workload
        algo = MAKERS[name](net, pts)
        algo.deadline = Deadline(3600.0)
        assert _same(baselines[name], algo.run())
        assert algo.deadline.checks > 0, f"{name} hit no cooperative checks"


class TestDeadlineResume:
    """Interrupt at arbitrary cooperative checks; resume must be identical."""

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_interrupt_anywhere_then_resume_identical(
        self, name, workload, baselines
    ):
        net, pts = workload
        # Size the sweep: total cooperative checks of an uninterrupted run.
        counter = MAKERS[name](net, pts)
        counter.deadline = Deadline(None)
        assert _same(baselines[name], counter.run())
        total = counter.deadline.checks
        assert total > 0, f"{name} never reached a cooperative check"
        sweep = sorted({1, total // 3, (2 * total) // 3, total - 1} - {0})
        for at in sweep:
            algo = MAKERS[name](net, pts)
            # TickingClock: the deadline expires at exactly check `at`.
            algo.deadline = Deadline(float(at), clock=TickingClock())
            cap = _Capture()
            algo.checkpoint = cap
            with pytest.raises(DeadlineExceeded):
                algo.run()
            resumed = MAKERS[name](net, pts)
            if cap.states:
                resumed.resume_from(cap.states[-1])
            # else: interrupted before the first snapshot — fresh run IS
            # the correct resume.
            assert _same(baselines[name], resumed.run()), (
                f"{name} diverged after interrupt at check {at}/{total}"
            )


# ----------------------------------------------------------------------
# Circuit breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_parameters_validated(self):
        with pytest.raises(ParameterError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ParameterError):
            CircuitBreaker(reset_timeout_s=-1.0)
        with pytest.raises(ParameterError):
            CircuitBreaker(half_open_probes=0)

    def test_trip_reject_halfopen_close_cycle(self):
        vc = VirtualClock()
        br = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=10.0, clock=vc.monotonic
        )
        assert br.state == CLOSED
        for _ in range(2):
            br.record_failure()
        assert br.state == CLOSED  # below threshold
        br.record_failure()
        assert br.state == OPEN
        assert br.trips == 1
        with pytest.raises(CircuitOpenError) as exc:
            br.allow("pager.read_page")
        assert br.rejections == 1
        assert 0 < exc.value.retry_after_s <= 10.0
        vc.advance(10.0)
        assert br.state == HALF_OPEN
        br.allow("pager.read_page")  # the single probe slot
        with pytest.raises(CircuitOpenError):
            br.allow("pager.read_page")  # probes exhausted
        br.record_success()
        assert br.state == CLOSED
        br.allow("pager.read_page")  # closed again: flows freely

    def test_halfopen_probe_failure_reopens(self):
        vc = VirtualClock()
        br = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=vc.monotonic
        )
        br.record_failure()
        assert br.state == OPEN
        vc.advance(5.0)
        assert br.state == HALF_OPEN
        br.allow("x")
        br.record_failure()
        assert br.state == OPEN
        assert br.trips == 2

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(failure_threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == CLOSED  # never 2 *consecutive* failures

    def test_call_classifies_failures(self):
        br = CircuitBreaker(failure_threshold=1, reset_timeout_s=1e9)

        def boom():
            raise ParameterError("not a dependency failure")

        with pytest.raises(ParameterError):
            br.call("x", boom)
        assert br.state == CLOSED  # uncounted

        def io_boom():
            raise OSError("disk died")

        with pytest.raises(OSError):
            br.call("x", io_boom)
        assert br.state == OPEN

    def test_uncounted_exception_releases_probe_slot(self):
        vc = VirtualClock()
        br = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=vc.monotonic
        )
        br.record_failure()
        vc.advance(1.0)
        assert br.state == HALF_OPEN

        def boom():
            raise ParameterError("probe aborted for unrelated reasons")

        with pytest.raises(ParameterError):
            br.call("x", boom)
        # The slot must be free again or the breaker wedges half-open.
        assert br.call("x", lambda: 42) == 42
        assert br.state == CLOSED

    def test_allow_reports_probe_admission(self):
        vc = VirtualClock()
        br = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=vc.monotonic
        )
        assert br.allow("x") is False  # closed: no probe slot held
        br.record_failure()
        vc.advance(1.0)
        assert br.allow("x") is True  # half-open: took the probe slot

    def test_closed_admission_cannot_free_anothers_probe_slot(self):
        """A call admitted while CLOSED that fails with an uncounted
        exception after the breaker half-opened must not release the slot
        a real probe is holding (that would over-admit probes)."""
        vc = VirtualClock()
        br = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1.0, clock=vc.monotonic
        )
        started = threading.Event()
        release = threading.Event()
        outcome: list[BaseException] = []

        def slow_then_interrupted():
            started.set()
            assert release.wait(10)
            raise ParameterError("uncounted: not a dependency failure")

        def closed_caller():
            try:
                br.call("x", slow_then_interrupted)
            except BaseException as exc:
                outcome.append(exc)

        t = threading.Thread(target=closed_caller, daemon=True)
        t.start()
        assert started.wait(10)  # admitted while CLOSED
        br.record_failure()  # trips open behind its back
        vc.advance(1.0)
        assert br.state == HALF_OPEN
        assert br.allow("probe") is True  # the one probe slot is now held
        release.set()
        t.join(10)
        assert isinstance(outcome[0], ParameterError)
        # The probe slot must still be occupied by the real probe.
        with pytest.raises(CircuitOpenError):
            br.allow("x")

    def test_obs_counters(self):
        obs.reset()
        obs.enable()
        try:
            vc = VirtualClock()
            br = CircuitBreaker(
                failure_threshold=1, reset_timeout_s=1.0, clock=vc.monotonic
            )
            br.record_failure()  # trip
            with pytest.raises(CircuitOpenError):
                br.allow("x")
            vc.advance(1.0)
            br.allow("x")  # half-open probe
            br.record_success()  # close
            counters = obs.snapshot()["counters"]
            assert counters.get("breaker.trips") == 1
            assert counters.get("breaker.rejections") == 1
            assert counters.get("breaker.half_opens") == 1
            assert counters.get("breaker.closes") == 1
            assert counters.get("breaker.failures") == 1
            assert counters.get("breaker.transitions.open") == 1
            assert counters.get("breaker.transitions.closed") == 1
        finally:
            obs.disable()
            obs.reset()


# ----------------------------------------------------------------------
# Breaker on the pager read path
# ----------------------------------------------------------------------
def _paged_file(tmp_path, pages: int = 4) -> PagedFile:
    pf = PagedFile(tmp_path / "data.pag", page_size=512)
    for i in range(pages):
        pid = pf.allocate()
        pf.write_page(pid, bytes([i]) * 16)
    pf.commit()
    return pf


class TestBreakerOnPager:
    def test_persistent_fault_trips_then_fails_fast(self, tmp_path):
        pf = _paged_file(tmp_path)
        vc = VirtualClock()
        br = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=60.0, clock=vc.monotonic
        )
        rule = FaultRule(
            "pager.read_page", "error", probability=1.0, times=None,
            transient=True,
        )
        policy = RetryPolicy(max_attempts=5, base_delay=0.0, sleep=vc.sleep)
        with faults.plan(rule), retrying(policy), breaking(br):
            # The tripping call itself surfaces CircuitOpen: the breaker
            # opens mid-retry and CircuitOpenError is not retryable.
            with pytest.raises(CircuitOpenError):
                pf.read_page(1)
            assert br.state == OPEN
            assert rule.fired == 3  # threshold attempts, not 5
            # Every later read fails fast without touching the store.
            with pytest.raises(CircuitOpenError):
                pf.read_page(2)
            assert rule.fired == 3
        pf.close()

    def test_recovery_closes_breaker(self, tmp_path):
        pf = _paged_file(tmp_path)
        vc = VirtualClock()
        br = CircuitBreaker(
            failure_threshold=2, reset_timeout_s=30.0, clock=vc.monotonic
        )
        rule = FaultRule(
            "pager.read_page", "error", probability=1.0, times=2,
            transient=True,
        )
        with faults.plan(rule), breaking(br):
            with pytest.raises(InjectedIOError):
                pf.read_page(1)
            with pytest.raises(InjectedIOError):
                pf.read_page(1)
            assert br.state == OPEN
            vc.advance(30.0)  # cool-down: the fault plan is exhausted now
            assert pf.read_page(1)[:16] == bytes([0]) * 16
            assert br.state == CLOSED
        pf.close()

    def test_disarmed_breaker_leaves_reads_alone(self, tmp_path):
        pf = _paged_file(tmp_path)
        assert pf.read_page(1)[:16] == bytes([0]) * 16
        pf.close()


# ----------------------------------------------------------------------
# The `delay` fault kind
# ----------------------------------------------------------------------
class TestDelayFault:
    def test_delay_kind_validated(self):
        with pytest.raises(ValueError):
            FaultRule("x", "delay", after=1)  # delay_s required
        with pytest.raises(ValueError):
            FaultRule("x", "delay", after=1, delay_s=-0.5)
        with pytest.raises(ValueError):
            FaultRule("x", "error", after=1, delay_s=1.0)  # wrong kind

    def test_delay_sleeps_and_continues(self):
        vc = VirtualClock()
        rule = FaultRule("s", "delay", probability=1.0, times=None, delay_s=0.25)
        with faults.plan(rule, sleep=vc.sleep):
            faults.fire("s")  # stalls, does not raise
            faults.fire("s")
        assert vc.monotonic() == 0.5
        assert rule.fired == 2

    def test_delay_composes_with_error_rules(self):
        vc = VirtualClock()
        with faults.plan(
            FaultRule("s", "delay", after=1, delay_s=1.0),
            FaultRule("s", "error", after=1),
            sleep=vc.sleep,
        ):
            with pytest.raises(InjectedIOError):
                faults.fire("s")  # slow AND failing: both rules apply
        assert vc.monotonic() == 1.0

    def test_plan_restores_sleep(self):
        import time as _time

        saved = faults.STATE.sleep
        vc = VirtualClock()
        with faults.plan(sleep=vc.sleep):
            assert faults.STATE.sleep == vc.sleep
        assert faults.STATE.sleep is saved is _time.sleep

    def test_delay_makes_deadline_expire(self):
        """Injected latency is observed by the next cooperative check."""
        vc = VirtualClock()
        net, _ = line_network(6)
        rule = FaultRule("dijkstra.settle", "delay", after=1, delay_s=9.0)
        with faults.plan(rule, sleep=vc.sleep):
            with Deadline(5.0, clock=vc.monotonic).activate():
                with pytest.raises(DeadlineExceeded):
                    single_source(net, 0)


# ----------------------------------------------------------------------
# CLI: --timeout-ms -> exit 3 -> resume
# ----------------------------------------------------------------------
@pytest.fixture
def cli_workload(tmp_path):
    path = tmp_path / "w.json"
    assert main([
        "generate", "--grid", "6x6", "--points", "40", "--out", str(path),
    ]) == 0
    return path


def _result_doc(path):
    doc = json.loads(path.read_text())
    doc["stats"] = {
        k: v for k, v in doc.get("stats", {}).items() if "time_s" not in k
    }
    return doc


class TestCLITimeout:
    ARGS = ["--algorithm", "k-medoids", "--k", "4", "--seed", "0"]

    def test_unmeetable_deadline_exits_3_then_resume(
        self, cli_workload, tmp_path, capsys
    ):
        full = tmp_path / "full.json"
        assert main([
            "cluster", str(cli_workload), *self.ARGS, "--out", str(full),
        ]) == 0
        ckpt = tmp_path / "run.ckpt"
        aborted = tmp_path / "aborted.json"
        code = main([
            "cluster", str(cli_workload), *self.ARGS, "--out", str(aborted),
            "--timeout-ms", "0", "--checkpoint", str(ckpt),
            "--checkpoint-every", "1",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "deadline exceeded" in err
        assert not aborted.exists()
        resumed = tmp_path / "resumed.json"
        assert main([
            "cluster", str(cli_workload), *self.ARGS, "--out", str(resumed),
            "--resume", str(ckpt),
        ]) == 0
        assert _result_doc(full) == _result_doc(resumed)

    def test_generous_deadline_completes(self, cli_workload, tmp_path):
        out = tmp_path / "out.json"
        assert main([
            "cluster", str(cli_workload), *self.ARGS, "--out", str(out),
            "--timeout-ms", "3600000",
        ]) == 0
        assert out.exists()
