"""Tests for the synthetic network and cluster generators."""

from __future__ import annotations

import math
from collections import Counter

import pytest

from repro.datagen.clusters import ClusterSpec, generate_clustered_points, suggest_eps
from repro.datagen.networks import delaunay_road_network, grid_city
from repro.datagen.workloads import PAPER_WORKLOADS, load_network, load_workload
from repro.eval.metrics import NOISE, adjusted_rand_index
from repro.exceptions import ParameterError
from repro.network.components import is_connected


class TestGridCity:
    def test_dimensions(self):
        net = grid_city(6, 5, seed=1)
        assert net.num_nodes == 30
        assert is_connected(net)

    def test_removal_reduces_edges_but_keeps_connectivity(self):
        dense = grid_city(10, 10, removal=0.0, seed=2)
        thinned = grid_city(10, 10, removal=0.3, seed=2)
        assert thinned.num_edges < dense.num_edges
        assert is_connected(thinned)

    def test_weights_positive_and_near_spacing(self):
        net = grid_city(8, 8, spacing=2.0, jitter=0.2, seed=3)
        for _, _, w in net.edges():
            assert 0 < w < 2.0 * 2  # jitter bounded

    def test_deterministic(self):
        a = grid_city(7, 7, seed=11)
        b = grid_city(7, 7, seed=11)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_jitter_zero_gives_exact_grid(self):
        net = grid_city(4, 4, jitter=0.0, removal=0.0, seed=0)
        for _, _, w in net.edges():
            assert w == pytest.approx(1.0)

    @pytest.mark.parametrize("kwargs", [
        {"width": 0, "height": 3},
        {"width": 3, "height": 3, "jitter": 0.7},
        {"width": 3, "height": 3, "removal": 1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            grid_city(**kwargs)


class TestDelaunayRoadNetwork:
    def test_connected_and_planar_density(self):
        net = delaunay_road_network(200, seed=4)
        assert net.num_nodes == 200
        assert is_connected(net)
        avg_degree = 2 * net.num_edges / net.num_nodes
        assert 2.0 < avg_degree <= 3.2

    def test_target_degree_respected(self):
        sparse = delaunay_road_network(150, target_degree=2.2, seed=5)
        dense = delaunay_road_network(150, target_degree=4.0, seed=5)
        assert sparse.num_edges < dense.num_edges

    def test_tiny_networks(self):
        assert delaunay_road_network(2, seed=0).num_edges == 1
        assert delaunay_road_network(3, seed=0).num_edges == 2

    def test_deterministic(self):
        a = delaunay_road_network(80, seed=9)
        b = delaunay_road_network(80, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_validation(self):
        with pytest.raises(ParameterError):
            delaunay_road_network(1)
        with pytest.raises(ParameterError):
            delaunay_road_network(10, target_degree=1.5)


class TestClusterSpec:
    def test_s_final(self):
        spec = ClusterSpec(k=3, s_init=2.0, magnification=5.0)
        assert spec.s_final == pytest.approx(10.0)

    def test_suggest_eps_matches_paper(self):
        spec = ClusterSpec(k=3, s_init=2.0, magnification=5.0)
        assert suggest_eps(spec) == pytest.approx(1.5 * 2.0 * 5.0)

    @pytest.mark.parametrize("kwargs", [
        {"k": 0, "s_init": 1.0},
        {"k": 2, "s_init": 0.0},
        {"k": 2, "s_init": 1.0, "magnification": 1.0},
        {"k": 2, "s_init": 1.0, "outlier_fraction": 1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParameterError):
            ClusterSpec(**kwargs)


class TestGenerateClusteredPoints:
    @pytest.fixture
    def network(self):
        return grid_city(15, 15, removal=0.1, seed=7)

    def test_counts_and_labels(self, network):
        spec = ClusterSpec(k=4, s_init=0.05, outlier_fraction=0.01)
        points = generate_clustered_points(network, 400, spec, seed=1)
        assert len(points) == 400
        labels = Counter(p.label for p in points)
        assert labels[NOISE] == 4  # 1% of 400
        cluster_sizes = [labels[i] for i in range(4)]
        assert sum(cluster_sizes) == 396
        assert max(cluster_sizes) - min(cluster_sizes) <= 1  # even split

    def test_zero_outliers(self, network):
        spec = ClusterSpec(k=2, s_init=0.05, outlier_fraction=0.0)
        points = generate_clustered_points(network, 100, spec, seed=2)
        assert all(p.label != NOISE for p in points)

    def test_deterministic(self, network):
        spec = ClusterSpec(k=3, s_init=0.05)
        a = generate_clustered_points(network, 200, spec, seed=5)
        b = generate_clustered_points(network, 200, spec, seed=5)
        assert [(p.edge, p.offset, p.label) for p in a] == [
            (p.edge, p.offset, p.label) for p in b
        ]

    def test_clusters_are_spatially_coherent(self, network):
        """Points of one cluster must lie close together on the network:
        the max gap the generator can produce is 1.5 * s_init * F."""
        from repro.core.epslink import EpsLink

        spec = ClusterSpec(k=3, s_init=0.03, outlier_fraction=0.0)
        seed_edges = [(0, 1), (112, 113), (224, 223)]
        seed_edges = [e for e in seed_edges if network.has_edge(*e)]
        points = generate_clustered_points(network, 150, spec, seed=3)
        eps = suggest_eps(spec) * 1.01
        result = EpsLink(network, points, eps=eps).run()
        # Every generated cluster is intact inside a single eps-link cluster
        # (eps-link clusters may merge planted clusters that landed nearby,
        # but may never split one).
        for label in range(3):
            member_clusters = {
                result.cluster_of(p.point_id)
                for p in points
                if p.label == label
            }
            assert len(member_clusters) == 1

    def test_well_separated_clusters_recovered(self, network):
        """With far-apart seeds, eps-link recovers the planted clustering."""
        from repro.core.epslink import EpsLink

        spec = ClusterSpec(k=2, s_init=0.02, outlier_fraction=0.0)
        corner_a = min(network.nodes())
        corner_b = max(network.nodes())
        edge_a = (corner_a, next(iter(dict(network.neighbors(corner_a)))))
        edge_b = (corner_b, next(iter(dict(network.neighbors(corner_b)))))
        points = generate_clustered_points(
            network, 60, spec, seed=4, seed_edges=[edge_a, edge_b]
        )
        result = EpsLink(network, points, eps=suggest_eps(spec) * 1.01).run()
        truth = {p.point_id: p.label for p in points}
        predicted = dict(result.assignment)
        if result.num_clusters == 2:
            assert adjusted_rand_index(truth, predicted) == pytest.approx(1.0)

    def test_validation(self, network):
        spec = ClusterSpec(k=5, s_init=0.05)
        with pytest.raises(ParameterError):
            generate_clustered_points(network, 3, spec)
        with pytest.raises(ParameterError):
            generate_clustered_points(network, 100, spec, seed_edges=[(0, 1)])


class TestWorkloads:
    def test_paper_specs_present(self):
        assert set(PAPER_WORKLOADS) == {"NA", "SF", "TG", "OL"}
        assert PAPER_WORKLOADS["OL"].paper_nodes == 6105

    @pytest.mark.parametrize("name", ["SF", "TG", "OL"])
    def test_load_network_scaled(self, name):
        net = load_network(name, scale=1 / 64, seed=0)
        want = PAPER_WORKLOADS[name].paper_nodes / 64
        assert net.num_nodes == pytest.approx(want, rel=0.25)
        assert is_connected(net)

    def test_na_is_sparse(self):
        net = load_network("NA", scale=1 / 256, seed=0)
        ratio = net.num_edges / net.num_nodes
        assert ratio < 1.25  # highway-skeleton density

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            load_network("XX")
        with pytest.raises(ParameterError):
            load_workload("XX")

    def test_bad_scale(self):
        with pytest.raises(ParameterError):
            load_network("OL", scale=0.0)

    def test_load_workload_bundle(self):
        net, points, spec = load_workload("OL", scale=1 / 32, k=5, seed=1)
        assert is_connected(net)
        assert spec.k == 5
        assert len(points) >= 20
        labels = {p.label for p in points}
        assert labels - {NOISE} == set(range(5))

    def test_load_workload_custom_points(self):
        net, points, _ = load_workload("OL", scale=1 / 32, k=3, n_points=90, seed=2)
        assert len(points) == 90

    def test_load_workload_clusters_recoverable(self):
        """With separated seeds (the default), eps-link at the generator's
        eps recovers the planted clusters."""
        from repro.core.epslink import EpsLink
        from repro.datagen.clusters import suggest_eps

        net, points, spec = load_workload("TG", scale=1 / 16, k=5, seed=3)
        result = EpsLink(net, points, eps=suggest_eps(spec), min_sup=2).run()
        truth = {p.point_id: p.label for p in points}
        ari = adjusted_rand_index(truth, dict(result.assignment), noise="drop")
        assert ari > 0.95

    def test_load_workload_without_seed_separation(self):
        net, points, spec = load_workload(
            "OL", scale=1 / 32, k=3, seed=4, separate_seeds=False
        )
        assert len(points) > 0
