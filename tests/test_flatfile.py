"""Tests for the slotted-page record file."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.flatfile import RecordFile, rid_decode, rid_encode
from repro.storage.pager import BufferManager, PagedFile


@pytest.fixture
def recfile(tmp_path):
    f = PagedFile(tmp_path / "records.db", page_size=512)
    buf = BufferManager(f, capacity_bytes=512 * 8)
    yield RecordFile(buf)
    buf.close()


class TestRidEncoding:
    def test_roundtrip(self):
        rid = rid_encode(123, 45)
        assert rid_decode(rid) == (123, 45)

    def test_distinct(self):
        assert rid_encode(1, 0) != rid_encode(0, 1)

    def test_slot_range(self):
        from repro.exceptions import PageError

        with pytest.raises(PageError):
            rid_encode(1, 1 << 16)


class TestSmallRecords:
    def test_append_and_read(self, recfile):
        rid = recfile.append(b"hello world")
        assert recfile.read(rid) == b"hello world"

    def test_empty_record(self, recfile):
        rid = recfile.append(b"")
        assert recfile.read(rid) == b""

    def test_many_records_same_page(self, recfile):
        rids = [recfile.append(f"rec{i}".encode()) for i in range(10)]
        for i, rid in enumerate(rids):
            assert recfile.read(rid) == f"rec{i}".encode()
        # Small records share pages.
        pages = {rid_decode(rid)[0] for rid in rids}
        assert len(pages) == 1

    def test_page_rollover(self, recfile):
        # 512-byte pages: ~100-byte records force rollover after a few.
        rids = [recfile.append(bytes([i]) * 100) for i in range(20)]
        pages = {rid_decode(rid)[0] for rid in rids}
        assert len(pages) > 1
        for i, rid in enumerate(rids):
            assert recfile.read(rid) == bytes([i]) * 100

    def test_bad_slot(self, recfile):
        from repro.exceptions import PageError

        rid = recfile.append(b"x")
        pid, _ = rid_decode(rid)
        with pytest.raises(PageError):
            recfile.read(rid_encode(pid, 99))


class TestOverflowRecords:
    def test_record_larger_than_page(self, recfile):
        data = bytes(range(256)) * 8  # 2048 bytes on 512-byte pages
        rid = recfile.append(data)
        assert recfile.read(rid) == data

    def test_record_exactly_at_boundary(self, recfile):
        capacity = 512 - 4 - 4  # page minus header minus one slot
        data = b"a" * capacity
        rid = recfile.append(data)
        assert recfile.read(rid) == data
        rid2 = recfile.append(b"b" * (capacity + 1))
        assert recfile.read(rid2) == b"b" * (capacity + 1)

    def test_interleaved_small_and_large(self, recfile):
        expected = {}
        rng = random.Random(0)
        for i in range(30):
            size = rng.choice([3, 50, 600, 1500])
            data = bytes([i % 256]) * size
            expected[recfile.append(data)] = data
        for rid, data in expected.items():
            assert recfile.read(rid) == data

    def test_huge_record(self, recfile):
        data = b"z" * 10_000
        rid = recfile.append(data)
        assert recfile.read(rid) == data


class TestPersistence:
    def test_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        f = PagedFile(path, page_size=512)
        buf = BufferManager(f)
        rf = RecordFile(buf)
        rid_small = rf.append(b"small")
        rid_big = rf.append(b"B" * 3000)
        current = rf.current_page
        buf.close()

        f2 = PagedFile(path)
        buf2 = BufferManager(f2)
        rf2 = RecordFile(buf2, current_page=current)
        assert rf2.read(rid_small) == b"small"
        assert rf2.read(rid_big) == b"B" * 3000
        rid_new = rf2.append(b"after reopen")
        assert rf2.read(rid_new) == b"after reopen"
        buf2.close()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(min_size=0, max_size=2000), min_size=1, max_size=40),
)
def test_property_roundtrip(tmp_path_factory, records):
    """Every appended record reads back byte-identical, in any mix of
    sizes, including across reopen."""
    path = tmp_path_factory.mktemp("ff") / "prop.db"
    f = PagedFile(path, page_size=512)
    buf = BufferManager(f, capacity_bytes=512 * 4)
    rf = RecordFile(buf)
    rids = [rf.append(data) for data in records]
    for rid, data in zip(rids, records):
        assert rf.read(rid) == data
    current = rf.current_page
    buf.close()
    f2 = PagedFile(path)
    buf2 = BufferManager(f2)
    rf2 = RecordFile(buf2, current_page=current)
    for rid, data in zip(rids, records):
        assert rf2.read(rid) == data
    buf2.close()
