"""Graceful-degradation contracts on disconnected networks.

Clustering on a disconnected network must produce explicit per-component
results with an ``unreachable_pairs`` report — never a silent flood of
noise labels for every component the seed happened not to land in.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ComponentPointSet,
    EpsLink,
    NetworkDBSCAN,
    NetworkKMedoids,
    SingleLink,
    analyze_connectivity,
    distribute_k,
)
from repro.eval.metrics import NOISE
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet


def two_islands(
    sizes: tuple[int, int] = (9, 9)
) -> tuple[SpatialNetwork, PointSet]:
    """Two disjoint chains; one point per edge, ids globally unique."""
    net = SpatialNetwork()
    pts = PointSet(net)
    pid = 0
    base = 0
    for size in sizes:
        for i in range(size + 1):
            net.add_node(base + i)
        for i in range(size):
            net.add_edge(base + i, base + i + 1, 1.0)
            pts.add(base + i, base + i + 1, 0.5, point_id=pid)
            pid += 1
        base += size + 1
    return net, pts


class TestConnectivityReport:
    def test_connected_network(self):
        net, pts = two_islands((5, 0))
        report = analyze_connectivity(net, pts)
        assert report.num_populated_components == 1
        assert report.unreachable_pairs == 0

    def test_two_components(self):
        net, pts = two_islands((9, 9))
        report = analyze_connectivity(net, pts)
        assert report.num_components >= 2
        assert report.num_populated_components == 2
        assert report.point_counts[:2] == [9, 9]
        # Every cross-island pair is unreachable: 9 * 9.
        assert report.unreachable_pairs == 81

    def test_summary_shape(self):
        net, pts = two_islands((6, 3))
        s = analyze_connectivity(net, pts).summary()
        assert s["points_per_component"] == [6, 3]
        assert s["unreachable_pairs"] == 18

    def test_empty_component_sorted_last(self):
        net, pts = two_islands((4, 2))
        net.add_node(999)  # isolated, pointless node
        report = analyze_connectivity(net, pts)
        assert report.point_counts[-1] == 0


class TestComponentPointSet:
    def test_filters_to_component(self):
        net, pts = two_islands((4, 3))
        report = analyze_connectivity(net, pts)
        big = ComponentPointSet(pts, report.components[0])
        small = ComponentPointSet(pts, report.components[1])
        assert len(big) == 4
        assert len(small) == 3
        assert set(big.point_ids()) | set(small.point_ids()) == set(
            pts.point_ids()
        )
        assert set(big.point_ids()).isdisjoint(small.point_ids())

    def test_get_refuses_foreign_point(self):
        from repro.exceptions import PointNotFoundError

        net, pts = two_islands((4, 3))
        report = analyze_connectivity(net, pts)
        big = ComponentPointSet(pts, report.components[0])
        foreign = next(iter(ComponentPointSet(pts, report.components[1])))
        with pytest.raises(PointNotFoundError):
            big.get(foreign.point_id)

    def test_network_is_the_full_backend(self):
        net, pts = two_islands((4, 3))
        report = analyze_connectivity(net, pts)
        view = ComponentPointSet(pts, report.components[0])
        assert view.network is net


class TestDistributeK:
    def test_proportional(self):
        assert distribute_k(4, [9, 9]) == [2, 2]
        assert distribute_k(3, [20, 10]) == [2, 1]

    def test_every_populated_component_served_when_k_allows(self):
        quotas = distribute_k(3, [97, 2, 1])
        assert all(q >= 1 for q in quotas)

    def test_k_smaller_than_components(self):
        quotas = distribute_k(1, [5, 4, 3])
        assert sum(quotas) == 1
        assert quotas[0] == 1  # largest component wins

    def test_never_exceeds_component_size(self):
        quotas = distribute_k(10, [2, 100])
        assert quotas[0] <= 2
        assert sum(quotas) == 10

    def test_k_at_least_total(self):
        assert distribute_k(50, [3, 2]) == [3, 2]

    def test_all_empty(self):
        assert distribute_k(5, [0, 0]) == [0, 0]


class TestKMedoidsDegradation:
    def test_per_component_clustering(self):
        net, pts = two_islands((9, 9))
        result = NetworkKMedoids(net, pts, k=4, seed=0).run()
        assert result.stats["unreachable_pairs"] == 81
        assert result.stats["connectivity"]["num_populated_components"] == 2
        per_comp = result.stats["per_component"]
        assert [c["k"] for c in per_comp] == [2, 2]
        # Every point is clustered; labels are medoid ids, hence unique
        # across components.
        labels = set(result.assignment.values())
        assert NOISE not in labels
        assert len(labels) == 4
        # No cluster spans both islands.
        side = {p.point_id: (0 if p.u < 10 else 1) for p in pts}
        for label in labels:
            members = [p for p, l in result.assignment.items() if l == label]
            assert len({side[m] for m in members}) == 1

    def test_k_one_marks_losing_component_unclustered(self):
        net, pts = two_islands((9, 9))
        result = NetworkKMedoids(net, pts, k=1, seed=0).run()
        clustered = [p for p, l in result.assignment.items() if l != NOISE]
        noise = [p for p, l in result.assignment.items() if l == NOISE]
        assert len(clustered) == 9
        assert len(noise) == 9
        assert result.stats["unclustered_points"] == 9

    def test_connected_network_unchanged(self):
        net, pts = two_islands((12, 0))
        checked = NetworkKMedoids(net, pts, k=3, seed=7).run()
        unchecked = NetworkKMedoids(
            net, pts, k=3, seed=7, check_connectivity=False
        ).run()
        assert checked.assignment == unchecked.assignment

    def test_check_can_be_disabled(self):
        net, pts = two_islands((9, 9))
        result = NetworkKMedoids(
            net, pts, k=2, seed=0, check_connectivity=False
        ).run()
        assert "per_component" not in result.stats


class TestDensityDegradation:
    def test_epslink_crosses_no_component(self):
        net, pts = two_islands((9, 9))
        result = EpsLink(net, pts, eps=1.5).run()
        # Chains of 1.0-spaced points: each island is one cluster.
        assert result.num_clusters == 2

    def test_epslink_optional_report(self):
        net, pts = two_islands((9, 9))
        result = EpsLink(net, pts, eps=1.5, check_connectivity=True).run()
        assert result.stats["unreachable_pairs"] == 81

    def test_dbscan_handles_disconnected_natively(self):
        net, pts = two_islands((9, 9))
        result = NetworkDBSCAN(net, pts, eps=1.5, min_pts=2).run()
        side = {p.point_id: (0 if p.u < 10 else 1) for p in pts}
        for label in set(result.assignment.values()):
            if label == NOISE:
                continue
            members = [p for p, l in result.assignment.items() if l == label]
            assert len({side[m] for m in members}) == 1

    def test_singlelink_handles_disconnected(self):
        net, pts = two_islands((5, 4))
        result = SingleLink(net, pts, stop_k=2).run()
        assert result.num_clusters == 2
