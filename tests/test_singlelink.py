"""Tests for Single-Link and its dendrogram.

Oracles: agglomerative single-link on the exact distance matrix (invariant
7a) and ε-Link for distance cuts (invariant 7b — the paper's Section 5.1
observation that Single-Link stopped at ε reproduces ε-Link exactly).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.classic import matrix_single_link
from repro.baselines.matrix import DistanceMatrix
from repro.core.epslink import EpsLink
from repro.core.singlelink import SingleLink
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

from tests.strategies import clustering_instance


class TestValidation:
    def test_bad_delta(self, small_network, small_points):
        with pytest.raises(ParameterError):
            SingleLink(small_network, small_points, delta=-1.0)

    def test_bad_stop_k(self, small_network, small_points):
        with pytest.raises(ParameterError):
            SingleLink(small_network, small_points, stop_k=0)

    def test_both_stops_rejected(self, small_network, small_points):
        with pytest.raises(ParameterError):
            SingleLink(small_network, small_points, stop_k=2, stop_distance=1.0)


class TestSmallNetwork:
    """Fixture distances: d(p0,p1)=1, d(p1,p2)=1.5, d(p0,p2)=2.5,
    d(p2,p3)=4, d(p0,p3)=5.5, d(p1,p3)=5.5.
    Single-link merges: (p0,p1)@1, (+p2)@1.5, (+p3)@4."""

    def test_merge_distances(self, small_network, small_points):
        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        assert dendrogram.merge_distances() == pytest.approx([1.0, 1.5, 4.0])
        assert dendrogram.num_leaves == 4
        assert dendrogram.num_roots == 1

    def test_cut_k(self, small_network, small_points):
        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        assert dendrogram.cut_k(2).as_partition() == {
            frozenset({0, 1, 2}),
            frozenset({3}),
        }
        assert dendrogram.cut_k(4).as_partition() == {
            frozenset({0}),
            frozenset({1}),
            frozenset({2}),
            frozenset({3}),
        }
        assert dendrogram.cut_k(1).num_clusters == 1

    def test_cut_distance(self, small_network, small_points):
        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        assert dendrogram.cut_distance(1.2).as_partition() == {
            frozenset({0, 1}),
            frozenset({2}),
            frozenset({3}),
        }
        # A cut exactly at a merge distance applies that merge.
        assert dendrogram.cut_distance(1.5).as_partition() == {
            frozenset({0, 1, 2}),
            frozenset({3}),
        }

    def test_run_with_stop_k(self, small_network, small_points):
        result = SingleLink(small_network, small_points, stop_k=2).run()
        assert result.num_clusters == 2

    def test_run_with_stop_distance(self, small_network, small_points):
        result = SingleLink(small_network, small_points, stop_distance=2.0).run()
        assert result.as_partition() == {frozenset({0, 1, 2}), frozenset({3})}

    def test_run_default_merges_all(self, small_network, small_points):
        result = SingleLink(small_network, small_points).run()
        assert result.num_clusters == 1


class TestDeltaHeuristic:
    def test_premerge_groups_leaves(self, small_network, small_points):
        sl = SingleLink(small_network, small_points, delta=1.5)
        dendrogram = sl.build_dendrogram()
        # p0,p1,p2 chain within delta; p3 separate.
        assert dendrogram.num_leaves == 2
        assert dendrogram.merge_distances() == pytest.approx([4.0])
        assert sl.last_stats["initial_clusters"] == 2

    def test_merges_above_delta_unchanged(self, small_network, small_points):
        plain = SingleLink(small_network, small_points).build_dendrogram()
        grouped = SingleLink(small_network, small_points, delta=1.2).build_dendrogram()
        above = [d for d in plain.merge_distances() if d > 1.2]
        assert grouped.merge_distances() == pytest.approx(above)

    def test_cut_below_delta_rejected(self, small_network, small_points):
        dendrogram = SingleLink(small_network, small_points, delta=1.5).build_dendrogram()
        with pytest.raises(ParameterError):
            dendrogram.cut_distance(1.0)

    def test_cut_above_delta_matches_plain(self, small_network, small_points):
        plain = SingleLink(small_network, small_points).build_dendrogram()
        grouped = SingleLink(small_network, small_points, delta=1.2).build_dendrogram()
        assert grouped.cut_distance(2.0).as_partition() == plain.cut_distance(
            2.0
        ).as_partition()


class TestDisconnectedData:
    def test_forest_has_multiple_roots(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.2, point_id=0)
        ps.add(1, 2, 0.8, point_id=1)
        ps.add(3, 4, 0.5, point_id=2)
        dendrogram = SingleLink(net, ps).build_dendrogram()
        assert dendrogram.num_roots == 2
        result = dendrogram.cut_k(1)  # cannot reach 1: returns the 2 roots
        assert result.num_clusters == 2


class TestInterestingLevels:
    def test_detects_sharp_jump(self):
        """Merges at ~1 then a jump to 50 must be flagged (Section 5.3)."""
        net = SpatialNetwork.from_edge_list([(1, 2, 200.0)])
        ps = PointSet(net)
        offsets = [1.0, 2.0, 3.1, 4.0, 5.2, 6.0, 7.1, 8.0, 9.0, 10.2, 60.0, 61.0]
        for off in offsets:
            ps.add(1, 2, off)
        dendrogram = SingleLink(net, ps).build_dendrogram()
        levels = dendrogram.interesting_levels(window=5, factor=3.0)
        distances = dendrogram.merge_distances()
        assert levels, "the ~50-unit jump was not flagged"
        assert any(distances[i] > 40 for i in levels)

    def test_no_jump_no_levels(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 100.0)])
        ps = PointSet(net)
        for i in range(10):
            ps.add(1, 2, 1.0 + i)  # perfectly even spacing
        dendrogram = SingleLink(net, ps).build_dendrogram()
        assert dendrogram.interesting_levels(window=3, factor=3.0) == []

    def test_clusters_before_merge(self, small_network, small_points):
        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        before_last = dendrogram.clusters_before_merge(2)
        assert before_last.as_partition() == {
            frozenset({0, 1, 2}),
            frozenset({3}),
        }


class TestDendrogramSerialization:
    def test_roundtrip(self, small_network, small_points):
        import json

        dendrogram = SingleLink(small_network, small_points, delta=1.2).build_dendrogram()
        doc = json.loads(json.dumps(dendrogram.to_dict()))
        from repro.core.dendrogram import Dendrogram

        back = Dendrogram.from_dict(doc)
        assert back.merge_distances() == pytest.approx(dendrogram.merge_distances())
        assert back.leaf_members == dendrogram.leaf_members
        assert back.premerge_distance == dendrogram.premerge_distance
        assert back.cut_k(2).as_partition() == dendrogram.cut_k(2).as_partition()

    def test_bad_document_rejected(self):
        from repro.core.dendrogram import Dendrogram
        from repro.exceptions import TreeError

        with pytest.raises(TreeError):
            Dendrogram.from_dict({"format": "something"})


class TestLinkageMatrix:
    def test_scipy_compatible_shape(self, small_network, small_points):
        dendrogram = SingleLink(small_network, small_points).build_dendrogram()
        matrix = dendrogram.to_linkage_matrix()
        assert matrix.shape == (3, 4)
        assert list(matrix[:, 2]) == pytest.approx([1.0, 1.5, 4.0])
        # Sizes are cumulative point counts.
        assert list(matrix[:, 3]) == pytest.approx([2.0, 3.0, 4.0])


@settings(max_examples=50, deadline=None)
@given(clustering_instance())
def test_property_matches_matrix_single_link(data):
    """Invariant 7a: merge distances equal the matrix single-link's."""
    net, points, seed = data
    dm = DistanceMatrix.from_points(net, points)
    want = matrix_single_link(dm)
    got = SingleLink(net, points).build_dendrogram()
    assert got.merge_distances() == pytest.approx(
        want.merge_distances(), rel=1e-9, abs=1e-9
    ), f"seed={seed}"
    assert got.num_roots == want.num_roots


@settings(max_examples=40, deadline=None)
@given(clustering_instance(), st.floats(min_value=0.05, max_value=20.0))
def test_property_cut_at_eps_equals_epslink(data, eps):
    """Invariant 7b (paper Section 5.1): Single-Link cut at ε == ε-Link."""
    net, points, seed = data
    dendrogram = SingleLink(net, points).build_dendrogram()
    cut = dendrogram.cut_distance(eps)
    linked = EpsLink(net, points, eps=eps).run()
    assert cut.as_partition() == linked.as_partition(), f"seed={seed} eps={eps}"


@settings(max_examples=30, deadline=None)
@given(
    clustering_instance(min_points=3),
    st.floats(min_value=0.1, max_value=5.0),
)
def test_property_delta_preserves_merges_above_delta(data, delta):
    net, points, seed = data
    plain = SingleLink(net, points).build_dendrogram()
    grouped = SingleLink(net, points, delta=delta).build_dendrogram()
    above = [d for d in plain.merge_distances() if d > delta]
    assert grouped.merge_distances() == pytest.approx(
        above, rel=1e-9, abs=1e-9
    ), f"seed={seed} delta={delta}"
