"""Tests for the ClusteringResult container."""

from __future__ import annotations

import pytest

from repro.core.result import ClusteringResult
from repro.eval.metrics import NOISE


@pytest.fixture
def result():
    return ClusteringResult(
        {0: 0, 1: 0, 2: 1, 3: NOISE, 4: 1},
        algorithm="test",
        params={"eps": 1.0},
        stats={"visited": 10},
    )


class TestViews:
    def test_clusters(self, result):
        assert result.clusters() == {0: [0, 1], 1: [2, 4]}

    def test_num_clusters_excludes_noise(self, result):
        assert result.num_clusters == 2

    def test_num_points(self, result):
        assert result.num_points == 5

    def test_members(self, result):
        assert result.members(0) == [0, 1]
        assert result.members(42) == []

    def test_outliers(self, result):
        assert result.outliers() == [3]
        assert result.is_noise(3)
        assert not result.is_noise(0)

    def test_sizes(self, result):
        assert result.sizes() == {0: 2, 1: 2}

    def test_cluster_of(self, result):
        assert result.cluster_of(2) == 1
        assert result.cluster_of(3) == NOISE

    def test_iter_and_len(self, result):
        assert dict(result) == result.assignment
        assert len(result) == 5

    def test_repr(self, result):
        assert "clusters=2" in repr(result)
        assert "noise=1" in repr(result)


class TestComparison:
    def test_as_partition(self, result):
        assert result.as_partition() == {frozenset({0, 1}), frozenset({2, 4})}

    def test_same_clustering_ignores_labels(self, result):
        relabeled = ClusteringResult(
            {0: 9, 1: 9, 2: 7, 3: NOISE, 4: 7}, algorithm="other"
        )
        assert result.same_clustering(relabeled)

    def test_different_noise_not_same(self, result):
        other = ClusteringResult(
            {0: 0, 1: 0, 2: 1, 3: 1, 4: 1}, algorithm="other"
        )
        assert not result.same_clustering(other)

    def test_different_partition_not_same(self, result):
        other = ClusteringResult(
            {0: 0, 1: 1, 2: 1, 3: NOISE, 4: 0}, algorithm="other"
        )
        assert not result.same_clustering(other)


class TestMetadata:
    def test_params_and_stats_copied(self):
        params = {"eps": 1.0}
        res = ClusteringResult({}, algorithm="x", params=params)
        params["eps"] = 2.0
        assert res.params["eps"] == 1.0

    def test_empty_result(self):
        res = ClusteringResult({}, algorithm="x")
        assert res.num_clusters == 0
        assert res.outliers() == []
