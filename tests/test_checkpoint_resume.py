"""Checkpoint/resume: crash sweeps, snapshot-resume identity, CLI round trips.

The contract under test (see ``docs/robustness.md``): a clustering run
interrupted at *any* point — injected crash, operation-budget abort, or
SIGTERM — restarts from its last snapshot and produces a result identical
to the uninterrupted run (timing stats excluded).
"""

from __future__ import annotations

import json
import os
import random
import signal

import pytest

from repro import faults
from repro.cli import main
from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink, EpsLinkEdgewise
from repro.core.kmedoids import NetworkKMedoids
from repro.core.optics import NetworkOPTICS
from repro.core.singlelink import SingleLink
from repro.faults import CrashPoint, FaultRule
from repro.recovery import CheckpointManager, load_checkpoint
from tests.conftest import make_random_connected_network, scatter_points


def _workload():
    rng = random.Random(11)
    net = make_random_connected_network(rng, 40, extra_edges=15)
    pts = scatter_points(rng, net, 50)
    return net, pts


MAKERS = {
    "k-medoids": lambda n, p: NetworkKMedoids(n, p, k=4, seed=7, n_restarts=2),
    "eps-link": lambda n, p: EpsLink(n, p, eps=3.0, min_sup=2),
    "eps-link-edgewise": lambda n, p: EpsLinkEdgewise(n, p, eps=3.0, min_sup=2),
    "dbscan": lambda n, p: NetworkDBSCAN(n, p, eps=3.0, min_pts=3),
    "optics": lambda n, p: NetworkOPTICS(n, p, max_eps=4.0, min_pts=3),
    "single-link": lambda n, p: SingleLink(n, p, delta=1.0, stop_k=4),
}

CRASH_SITES = {
    "k-medoids": "kmedoids.update_settle",
    "eps-link": "epslink.expand",
    "eps-link-edgewise": "epslink.expand",
    "dbscan": "queries.settle",
    "optics": "queries.settle",
    "single-link": "dijkstra.settle",
}


def _strip(stats: dict) -> dict:
    return {k: v for k, v in stats.items() if "time_s" not in k}


def _same(a, b) -> bool:
    return a.assignment == b.assignment and _strip(a.stats) == _strip(b.stats)


@pytest.fixture(scope="module")
def workload():
    return _workload()


@pytest.fixture(scope="module")
def baselines(workload):
    net, pts = workload
    return {name: make(net, pts).run() for name, make in MAKERS.items()}


def _site_hit_count(name, workload) -> int:
    """Total hits the algorithm makes at its crash site (sweep sizing)."""
    net, pts = workload
    with faults.plan(FaultRule("no.such.site", "crash", after=10**9)):
        MAKERS[name](net, pts).run()
        return faults.hits(CRASH_SITES[name])


class TestCrashResume:
    """Kill at a swept set of hit indices; resume must match the baseline."""

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_crash_then_resume_identical(
        self, name, workload, baselines, tmp_path
    ):
        net, pts = workload
        total = _site_hit_count(name, workload)
        assert total > 0, f"{name} never reaches {CRASH_SITES[name]}"
        sweep = sorted({1, max(1, total // 4), max(1, total // 2), total})
        for hit in sweep:
            ckpt = tmp_path / f"{name}-{hit}.ckpt"
            algo = MAKERS[name](net, pts)
            algo.checkpoint = CheckpointManager(ckpt, every=1)
            with pytest.raises(CrashPoint):
                with faults.plan(
                    FaultRule(CRASH_SITES[name], "crash", after=hit)
                ):
                    algo.run()
            resumed = MAKERS[name](net, pts)
            if ckpt.exists():
                resumed.resume_from(load_checkpoint(ckpt)["state"])
            # else: killed before the first snapshot — a fresh run IS the
            # correct resume.
            result = resumed.run()
            assert _same(baselines[name], result), (
                f"{name} diverged when crashed at hit {hit}/{total}"
            )

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_resume_under_sparse_checkpointing(
        self, name, workload, baselines, tmp_path
    ):
        """``every > 1`` loses snapshots, never correctness."""
        net, pts = workload
        total = _site_hit_count(name, workload)
        hit = max(1, (2 * total) // 3)
        ckpt = tmp_path / f"{name}.ckpt"
        algo = MAKERS[name](net, pts)
        algo.checkpoint = CheckpointManager(ckpt, every=5)
        with pytest.raises(CrashPoint):
            with faults.plan(FaultRule(CRASH_SITES[name], "crash", after=hit)):
                algo.run()
        resumed = MAKERS[name](net, pts)
        if ckpt.exists():
            resumed.resume_from(load_checkpoint(ckpt)["state"])
        assert _same(baselines[name], resumed.run())


class _Capture:
    """Duck-typed CheckpointManager recording every snapshot (JSON trip)."""

    def __init__(self):
        self.states = []

    def tick(self, state_fn):
        self.states.append(json.loads(json.dumps(state_fn())))

    def save(self, state):
        self.states.append(json.loads(json.dumps(state)))

    def remove(self):
        pass


class TestSnapshotResume:
    """Resume from EVERY snapshot a run ever takes — not just crash points."""

    @pytest.mark.parametrize("name", sorted(MAKERS))
    def test_every_snapshot_resumes_identically(
        self, name, workload, baselines
    ):
        net, pts = workload
        algo = MAKERS[name](net, pts)
        cap = _Capture()
        algo.checkpoint = cap
        assert _same(baselines[name], algo.run())
        assert cap.states, f"{name} never snapshotted"
        step = max(1, len(cap.states) // 8)
        indices = list(range(0, len(cap.states), step))
        indices.append(len(cap.states) - 1)
        for i in sorted(set(indices)):
            resumed = MAKERS[name](net, pts)
            resumed.resume_from(cap.states[i])
            assert _same(baselines[name], resumed.run()), (
                f"{name} diverged resuming from snapshot "
                f"{i + 1}/{len(cap.states)}"
            )


@pytest.fixture
def cli_workload(tmp_path):
    path = tmp_path / "w.json"
    assert main([
        "generate", "--grid", "6x6", "--points", "40", "--out", str(path),
    ]) == 0
    return path


def _result_doc(path):
    doc = json.loads(path.read_text())
    doc["stats"] = {
        k: v for k, v in doc.get("stats", {}).items() if "time_s" not in k
    }
    return doc


class TestCLIBudgetAbortResume:
    """Exit-3 budget abort, then ``--resume`` completes with the same result."""

    CASES = {
        "eps-link": (
            ["--algorithm", "eps-link", "--eps", "0.6"], "60",
        ),
        "k-medoids": (
            ["--algorithm", "k-medoids", "--k", "5", "--restarts", "2",
             "--seed", "3"], "300",
        ),
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_budget_abort_then_resume(self, name, cli_workload, tmp_path):
        algo_args, cap = self.CASES[name]
        full = tmp_path / "full.json"
        assert main([
            "cluster", str(cli_workload), *algo_args, "--out", str(full),
        ]) == 0

        ckpt = tmp_path / "c.ckpt"
        aborted = tmp_path / "aborted.json"
        rc = main([
            "cluster", str(cli_workload), *algo_args, "--out", str(aborted),
            "--max-expansions", cap,
            "--checkpoint", str(ckpt), "--checkpoint-every", "1",
        ])
        assert rc == 3  # clean budget abort
        assert not aborted.exists()  # no partial result published
        assert ckpt.exists()  # snapshot left for --resume

        resumed = tmp_path / "resumed.json"
        assert main([
            "cluster", str(cli_workload), *algo_args, "--out", str(resumed),
            "--resume", str(ckpt),
        ]) == 0
        assert _result_doc(resumed) == _result_doc(full)
        assert not ckpt.exists()  # removed after the successful finish

    def test_missing_resume_file_runs_fresh(self, cli_workload, tmp_path):
        full = tmp_path / "full.json"
        args = ["--algorithm", "eps-link", "--eps", "0.6"]
        assert main([
            "cluster", str(cli_workload), *args, "--out", str(full),
        ]) == 0
        out = tmp_path / "fresh.json"
        assert main([
            "cluster", str(cli_workload), *args, "--out", str(out),
            "--resume", str(tmp_path / "never-written.ckpt"),
        ]) == 0
        assert _result_doc(out) == _result_doc(full)

    def test_mismatched_checkpoint_rejected(self, cli_workload, tmp_path):
        ckpt = tmp_path / "c.ckpt"
        rc = main([
            "cluster", str(cli_workload), "--algorithm", "k-medoids",
            "--k", "5", "--out", str(tmp_path / "a.json"),
            "--max-expansions", "300",
            "--checkpoint", str(ckpt), "--checkpoint-every", "1",
        ])
        assert rc == 3 and ckpt.exists()
        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "cluster", str(cli_workload), "--algorithm", "k-medoids",
                "--k", "6", "--out", str(tmp_path / "b.json"),
                "--resume", str(ckpt),
            ])

    def test_corrupt_checkpoint_rejected(self, cli_workload, tmp_path):
        ckpt = tmp_path / "c.ckpt"
        args = ["--algorithm", "eps-link", "--eps", "0.6"]
        rc = main([
            "cluster", str(cli_workload), *args,
            "--out", str(tmp_path / "a.json"), "--max-expansions", "60",
            "--checkpoint", str(ckpt), "--checkpoint-every", "1",
        ])
        assert rc == 3
        raw = bytearray(ckpt.read_bytes())
        raw[len(raw) // 2] ^= 0x20
        ckpt.write_bytes(bytes(raw))
        with pytest.raises(SystemExit, match="cannot resume"):
            main([
                "cluster", str(cli_workload), *args,
                "--out", str(tmp_path / "b.json"), "--resume", str(ckpt),
            ])


@pytest.mark.skipif(os.name != "posix", reason="POSIX signals required")
class TestSigterm:
    def test_sigterm_exits_3_and_leaves_checkpoint(
        self, cli_workload, tmp_path
    ):
        full = tmp_path / "full.json"
        args = ["--algorithm", "eps-link", "--eps", "0.6"]
        assert main([
            "cluster", str(cli_workload), *args, "--out", str(full),
        ]) == 0

        ckpt = tmp_path / "c.ckpt"
        killed = tmp_path / "killed.json"
        original_save = CheckpointManager.save
        saves = {"n": 0}

        def save_then_sigterm(self, state):
            original_save(self, state)
            saves["n"] += 1
            if saves["n"] == 3:
                os.kill(os.getpid(), signal.SIGTERM)

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(CheckpointManager, "save", save_then_sigterm)
            rc = main([
                "cluster", str(cli_workload), *args, "--out", str(killed),
                "--checkpoint", str(ckpt), "--checkpoint-every", "1",
            ])
        assert rc == 3
        assert not killed.exists()
        assert ckpt.exists()  # the latest snapshot survives the kill

        resumed = tmp_path / "resumed.json"
        assert main([
            "cluster", str(cli_workload), *args, "--out", str(resumed),
            "--resume", str(ckpt),
        ]) == 0
        assert _result_doc(resumed) == _result_doc(full)
