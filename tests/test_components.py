"""Tests for connectivity utilities."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError, ParameterError
from repro.network.components import (
    connected_components,
    extract_fraction,
    is_connected,
    largest_connected_component,
)
from repro.network.graph import SpatialNetwork


@pytest.fixture
def two_component_network():
    return SpatialNetwork.from_edge_list(
        [(1, 2, 1.0), (2, 3, 1.0), (10, 11, 1.0)], name="twocomp"
    )


class TestConnectedComponents:
    def test_single_component(self, small_network):
        comps = list(connected_components(small_network))
        assert len(comps) == 1
        assert comps[0] == set(small_network.nodes())

    def test_two_components(self, two_component_network):
        comps = sorted(connected_components(two_component_network), key=len)
        assert [len(c) for c in comps] == [2, 3]

    def test_empty_network(self):
        assert list(connected_components(SpatialNetwork())) == []

    def test_isolated_node(self):
        net = SpatialNetwork()
        net.add_node(1)
        comps = list(connected_components(net))
        assert comps == [{1}]


class TestIsConnected:
    def test_connected(self, small_network):
        assert is_connected(small_network)

    def test_disconnected(self, two_component_network):
        assert not is_connected(two_component_network)

    def test_empty_is_connected(self):
        assert is_connected(SpatialNetwork())


class TestLargestComponent:
    def test_extracts_largest(self, two_component_network):
        lcc = largest_connected_component(two_component_network)
        assert set(lcc.nodes()) == {1, 2, 3}
        assert lcc.num_edges == 2

    def test_empty(self):
        assert largest_connected_component(SpatialNetwork()).num_nodes == 0


class TestExtractFraction:
    def test_full_fraction_is_whole_network(self, grid_network):
        sub = extract_fraction(grid_network, 1.0)
        assert sub.num_nodes == grid_network.num_nodes
        assert sub.num_edges == grid_network.num_edges

    @pytest.mark.parametrize("fraction", [0.1, 0.2, 0.5])
    def test_partial_fractions_connected(self, grid_network, fraction):
        sub = extract_fraction(grid_network, fraction)
        want = round(fraction * grid_network.num_nodes)
        assert sub.num_nodes == want
        assert is_connected(sub)

    def test_custom_seed_node(self, grid_network):
        sub = extract_fraction(grid_network, 0.2, seed_node=24)
        assert 24 in sub

    def test_missing_seed(self, grid_network):
        with pytest.raises(NodeNotFoundError):
            extract_fraction(grid_network, 0.2, seed_node=999)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5])
    def test_invalid_fraction(self, grid_network, bad):
        with pytest.raises(ParameterError):
            extract_fraction(grid_network, bad)

    def test_name_includes_percentage(self, grid_network):
        assert "20pct" in extract_fraction(grid_network, 0.2).name
