"""Unit tests for the recovery layer: checkpoint format, retry policy, salvage."""

from __future__ import annotations

import math
import os
import struct
import zlib

import pytest

from repro import obs
from repro.exceptions import CheckpointError
from repro.faults import FaultRule, InjectedIOError, plan
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.recovery import (
    CheckpointManager,
    RetryPolicy,
    call_with_retry,
    load_checkpoint,
    repair_store,
    retrying,
    salvage_store,
    save_checkpoint,
    validate_meta,
)
from repro.recovery.checkpoint import _HEADER, _TRAILER, CHECKPOINT_MAGIC
from repro.recovery.retry import STATE as RETRY_STATE
from repro.storage.netstore import NetworkStore
from repro.storage.verify import verify_store


def small_store(path, page_size=512):
    net = SpatialNetwork.from_edge_list(
        [(1, 2, 2.0), (2, 3, 3.0), (1, 4, 4.0), (3, 5, 1.0), (4, 5, 2.0)]
    )
    pts = PointSet(net)
    pts.add(1, 2, 0.5, point_id=0, label=0)
    pts.add(1, 2, 1.5, point_id=1, label=0)
    pts.add(2, 3, 1.0, point_id=2, label=1)
    pts.add(4, 5, 1.0, point_id=3, label=None)
    NetworkStore.build(path, net, pts, page_size=page_size).close()
    return net, pts


def scan(store):
    edges = sorted(
        (n, nbr, w) for n in store.nodes() for nbr, w in store.neighbors(n)
    )
    points = sorted(
        (p.point_id, p.u, p.v, p.offset, p.label) for p in store.points()
    )
    return edges, points


class TestCheckpointFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "c.ckpt"
        meta = {"algorithm": "eps-link", "eps": 0.5}
        state = {"assignment": {"1": 0, "2": 1}, "cursor": 7,
                 "reach": [1.5, math.inf]}
        save_checkpoint(path, meta, state)
        doc = load_checkpoint(path)
        assert doc["meta"] == meta
        assert doc["state"]["assignment"] == {"1": 0, "2": 1}
        assert doc["state"]["reach"][1] == math.inf  # Infinity survives JSON

    def test_no_tmp_residue(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, {}, {"x": 1})
        assert not os.path.exists(str(path) + ".tmp")

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, {}, {"gen": 1})
        save_checkpoint(path, {}, {"gen": 2})
        assert load_checkpoint(path)["state"]["gen"] == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_truncated(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, {}, {"x": 1})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, {}, {"x": 1})
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_unknown_version(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, {}, {"x": 1})
        raw = bytearray(path.read_bytes())
        struct.pack_into("<H", raw, 4, 99)
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_payload_bit_rot_caught_by_crc(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, {}, {"x": 1})
        raw = bytearray(path.read_bytes())
        raw[_HEADER.size + 2] ^= 0x10
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="CRC32"):
            load_checkpoint(path)

    def test_length_mismatch(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_checkpoint(path, {}, {"x": 1})
        path.write_bytes(path.read_bytes() + b"extra")
        with pytest.raises(CheckpointError, match="length"):
            load_checkpoint(path)

    def test_payload_must_hold_meta_and_state(self, tmp_path):
        payload = b'{"only": 1}'
        blob = (
            _HEADER.pack(CHECKPOINT_MAGIC, 1, len(payload))
            + payload
            + _TRAILER.pack(zlib.crc32(payload) & 0xFFFFFFFF)
        )
        path = tmp_path / "c.ckpt"
        path.write_bytes(blob)
        with pytest.raises(CheckpointError, match="meta/state"):
            load_checkpoint(path)


class TestCheckpointManager:
    def test_saves_every_nth_tick(self, tmp_path):
        path = tmp_path / "c.ckpt"
        mgr = CheckpointManager(path, every=3)
        materialised = []

        def state_fn():
            materialised.append(mgr.ticks)
            return {"tick": mgr.ticks}

        for _ in range(7):
            mgr.tick(state_fn)
        # state_fn only runs on saving ticks — snapshot cost paid 1/every.
        assert materialised == [3, 6]
        assert mgr.saves == 2
        assert load_checkpoint(path)["state"]["tick"] == 6

    def test_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path / "c.ckpt", every=0)

    def test_remove_idempotent(self, tmp_path):
        path = tmp_path / "c.ckpt"
        mgr = CheckpointManager(path)
        mgr.save({"x": 1})
        mgr.remove()
        assert not path.exists()
        mgr.remove()  # no error on double remove

    def test_meta_travels_with_snapshot(self, tmp_path):
        path = tmp_path / "c.ckpt"
        mgr = CheckpointManager(path, meta={"algorithm": "dbscan", "eps": 2.0})
        mgr.save({"x": 1})
        doc = load_checkpoint(path)
        validate_meta(doc["meta"], {"algorithm": "dbscan", "eps": 2.0})
        with pytest.raises(CheckpointError, match="algorithm"):
            validate_meta(doc["meta"], {"algorithm": "optics"})


class TestRetryPolicy:
    def test_transient_injected_error_recovered(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise InjectedIOError("s", transient=True)
            return "ok"

        policy = RetryPolicy(max_attempts=3, sleep=lambda _d: None)
        assert policy.run("s", flaky) == "ok"
        assert calls["n"] == 3

    def test_persistent_injected_error_not_retried(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise InjectedIOError("s", transient=False)

        policy = RetryPolicy(max_attempts=5, sleep=lambda _d: None)
        with pytest.raises(InjectedIOError):
            policy.run("s", broken)
        assert calls["n"] == 1  # surfaced immediately

    def test_oserror_gives_up_after_cap(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("blip")

        policy = RetryPolicy(max_attempts=4, sleep=lambda _d: None)
        with pytest.raises(OSError):
            policy.run("s", always_fails)
        assert calls["n"] == 4

    def test_site_caps_override(self):
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("blip")

        policy = RetryPolicy(
            max_attempts=10, site_caps={"special": 2}, sleep=lambda _d: None
        )
        with pytest.raises(OSError):
            policy.run("special", always_fails)
        assert calls["n"] == 2

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_bounded_and_seeded(self):
        a = [RetryPolicy(base_delay=0.1, jitter=0.5, seed=7).delay(1)
             for _ in range(1)]
        b = [RetryPolicy(base_delay=0.1, jitter=0.5, seed=7).delay(1)
             for _ in range(1)]
        assert a == b  # same seed, same schedule
        assert 0.1 <= a[0] <= 0.15

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)

    def test_retrying_scopes_the_policy(self):
        assert RETRY_STATE.policy is None
        policy = RetryPolicy(sleep=lambda _d: None)
        with retrying(policy):
            assert RETRY_STATE.policy is policy
        assert RETRY_STATE.policy is None

    def test_retrying_restores_on_raise(self):
        with pytest.raises(RuntimeError):
            with retrying(RetryPolicy(sleep=lambda _d: None)):
                raise RuntimeError("boom")
        assert RETRY_STATE.policy is None

    def test_call_with_retry_passthrough_when_disarmed(self):
        assert call_with_retry("s", lambda: 42) == 42

    def test_counters_reported(self):
        obs.enable()
        try:
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] < 2:
                    raise OSError("blip")
                return 1

            RetryPolicy(sleep=lambda _d: None).run("x", flaky)
            counters = obs.snapshot()["counters"]
            assert counters["retry.attempts"] == 1
            assert counters["retry.attempts.x"] == 1
            assert counters["retry.recovered"] == 1
        finally:
            obs.disable()


class TestRetryOnStore:
    def test_transient_read_blip_recovered_end_to_end(self, tmp_path):
        path = tmp_path / "store.db"
        small_store(path)
        store = NetworkStore(path)
        try:
            clean = scan(store)
        finally:
            store.close()
        store = NetworkStore(path)
        try:
            with plan(
                FaultRule("pager.read_page", "error", after=3,
                          transient=True, times=2)
            ):
                with retrying(RetryPolicy(sleep=lambda _d: None)):
                    assert scan(store) == clean
        finally:
            store.close()

    def test_persistent_error_still_surfaces_under_retry(self, tmp_path):
        path = tmp_path / "store.db"
        small_store(path)
        store = NetworkStore(path)
        try:
            with plan(FaultRule("pager.read_page", "error", after=3)):
                with retrying(RetryPolicy(sleep=lambda _d: None)):
                    with pytest.raises(InjectedIOError):
                        scan(store)
        finally:
            store.close()

    def test_no_retry_by_default(self, tmp_path):
        path = tmp_path / "store.db"
        small_store(path)
        store = NetworkStore(path)
        try:
            with plan(
                FaultRule("pager.read_page", "error", after=3, transient=True)
            ):
                with pytest.raises(InjectedIOError):
                    scan(store)
        finally:
            store.close()


class TestSalvage:
    def test_clean_store_full_recovery(self, tmp_path):
        src = tmp_path / "store.db"
        net, pts = small_store(src)
        network, points, report = salvage_store(src)
        assert report.recoverable and report.full_recovery
        assert report.lost_pages == 0
        assert report.salvaged == {"nodes": 5, "edges": 5, "points": 4}
        got = sorted((p.point_id, p.u, p.v, p.offset, p.label) for p in points)
        want = sorted((p.point_id, p.u, p.v, p.offset, p.label) for p in pts)
        assert got == want

    def test_repair_rebuilds_verify_clean_store(self, tmp_path):
        src = tmp_path / "store.db"
        small_store(src)
        dst = tmp_path / "fixed.db"
        report = repair_store(src, dst)
        assert report.full_recovery
        assert report.output == str(dst)
        assert verify_store(dst) == []
        a, b = NetworkStore(src), NetworkStore(dst)
        try:
            assert scan(a) == scan(b)
        finally:
            a.close()
            b.close()

    def test_empty_file_unrecoverable(self, tmp_path):
        src = tmp_path / "empty.db"
        src.write_bytes(b"")
        network, points, report = salvage_store(src)
        assert network is None and points is None
        assert not report.recoverable
        assert not report.full_recovery

    def test_page_size_inferred_from_wrecked_header(self, tmp_path):
        src = tmp_path / "store.db"
        small_store(src, page_size=1024)
        raw = bytearray(src.read_bytes())
        raw[0:20] = os.urandom(20)  # obliterate the entire header struct
        src.write_bytes(bytes(raw))
        network, points, report = salvage_store(src)
        assert report.page_size == 1024
        assert network is not None
        # Header page is quarantined, but record/index pages all survive.
        assert sorted(p.point_id for p in points) == [0, 1, 2, 3]

    def test_missing_source_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            salvage_store(tmp_path / "nope.db")

    def test_dead_index_leaf_recovered_via_orphan_groups(self, tmp_path):
        # Point groups are self-describing: killing the point-tree pages
        # must not lose any points — they come back as orphan records.
        src = tmp_path / "store.db"
        small_store(src)
        from repro.storage.pager import PagedFile

        f = PagedFile(src)
        stride = f.page_size + 4
        meta = f.get_meta()
        f.abort()
        from repro.storage.netstore import _META

        point_root = _META.unpack(meta[: _META.size])[1]
        raw = bytearray(src.read_bytes())
        raw[point_root * stride + 10] ^= 0xFF
        src.write_bytes(bytes(raw))
        network, points, report = salvage_store(src)
        assert report.quarantined_pages == [point_root]
        assert report.salvaged["points"] == 4
        assert report.lost == {"nodes": 0, "edges": 0, "points": 0}
        assert report.full_recovery
