"""Tests for the Section 3.2 object-graph transformation."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings

from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.distance import network_distance
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.network.transform import object_graph, transformation_blowup

from tests.strategies import clustering_instance


class TestSimpleChains:
    def test_chain_on_one_edge(self):
        """Consecutive points connect; non-consecutive are blocked."""
        net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
        ps = PointSet(net)
        for i, off in enumerate((1.0, 4.0, 8.0)):
            ps.add(1, 2, off, point_id=i)
        edges = object_graph(net, ps)
        assert edges == pytest.approx({(0, 1): 3.0, (1, 2): 4.0})

    def test_two_points_weight_is_network_distance(self, small_network):
        ps = PointSet(small_network)
        a = ps.add(1, 2, 0.5, point_id=0)
        b = ps.add(4, 5, 1.0, point_id=1)
        edges = object_graph(small_network, ps)
        aug = AugmentedView(small_network, ps)
        assert edges[(0, 1)] == pytest.approx(network_distance(aug, a, b))

    def test_empty_rejected(self, small_network):
        with pytest.raises(ParameterError):
            object_graph(small_network, PointSet(small_network))


class TestFigure2bRingToClique:
    """The paper's example: objects hanging off a ring see each other
    pairwise without intermediaries -> G' is a clique."""

    @pytest.fixture
    def ring_with_pendants(self):
        k = 6
        net = SpatialNetwork(name="ring")
        for i in range(k):
            net.add_edge(i, (i + 1) % k, 1.0)  # the ring
            net.add_edge(i, 100 + i, 1.0)  # a pendant spoke per ring node
        ps = PointSet(net)
        for i in range(k):
            ps.add(i, 100 + i, 0.5, point_id=i)  # one object per spoke
        return net, ps, k

    def test_clique(self, ring_with_pendants):
        net, ps, k = ring_with_pendants
        edges = object_graph(net, ps)
        assert len(edges) == k * (k - 1) // 2  # the full clique

    def test_clique_weights_are_exact_distances(self, ring_with_pendants):
        net, ps, k = ring_with_pendants
        edges = object_graph(net, ps)
        aug = AugmentedView(net, ps)
        for (a, b), w in edges.items():
            assert w == pytest.approx(
                network_distance(aug, ps.get(a), ps.get(b))
            )

    def test_blowup_metrics(self, ring_with_pendants):
        net, ps, k = ring_with_pendants
        stats = transformation_blowup(net, ps)
        assert stats["clique_fraction"] == pytest.approx(1.0)
        # G' is denser than the (planar) original: the paper's complaint.
        assert stats["transformed_density"] > stats["original_density"]


class TestBlockedPaths:
    def test_blocking_point_cuts_the_edge(self):
        """A point strictly between two others blocks their G' edge even
        when a longer detour exists."""
        net = SpatialNetwork.from_edge_list(
            [(1, 2, 10.0), (1, 3, 20.0), (2, 3, 20.0)]
        )
        ps = PointSet(net)
        ps.add(1, 2, 1.0, point_id=0)
        ps.add(1, 2, 5.0, point_id=1)  # blocks the direct edge
        ps.add(1, 2, 9.0, point_id=2)
        edges = object_graph(net, ps)
        # 0-2 connect around the triangle (1 + 20 + 20 + 1 = 42), not via p1.
        assert (0, 2) in edges
        assert edges[(0, 2)] == pytest.approx(42.0)
        assert edges[(0, 1)] == pytest.approx(4.0)

    def test_disconnected_objects_no_edge(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(3, 4, 0.5, point_id=1)
        assert object_graph(net, ps) == {}


@settings(max_examples=30, deadline=None)
@given(clustering_instance(min_points=2, max_points=8))
def test_property_edge_weights_bound_distances(data):
    """Every G' edge weight is a genuine object-free path length: at least
    the network distance, and the *minimum* over neighbours of (d(p,r) +
    w(r,q)) can never undercut d(p,q)'s triangle bound."""
    net, points, seed = data
    edges = object_graph(net, points)
    aug = AugmentedView(net, points)
    for (a, b), w in edges.items():
        exact = network_distance(aug, points.get(a), points.get(b))
        assert w >= exact - 1e-9, f"seed={seed}"
        assert math.isfinite(w)


@settings(max_examples=25, deadline=None)
@given(clustering_instance(min_points=2, max_points=7))
def test_property_shortest_paths_preserved_in_gprime(data):
    """G' preserves all object-to-object shortest distances: the paper's
    premise that clustering *could* run on G' (before rejecting it on cost
    grounds).  Dijkstra over G' == network distance for reachable pairs."""
    import heapq

    net, points, seed = data
    gprime = object_graph(net, points)
    adj: dict[int, list[tuple[int, float]]] = {}
    for (a, b), w in gprime.items():
        adj.setdefault(a, []).append((b, w))
        adj.setdefault(b, []).append((a, w))
    aug = AugmentedView(net, points)
    ids = sorted(points.point_ids())
    source = ids[0]
    dist = {source: 0.0}
    heap = [(0.0, source)]
    seen = set()
    while heap:
        d, u = heapq.heappop(heap)
        if u in seen:
            continue
        seen.add(u)
        for v, w in adj.get(u, ()):
            nd = d + w
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    for pid in ids[1:]:
        try:
            exact = network_distance(aug, points.get(source), points.get(pid))
        except Exception:
            assert pid not in dist
            continue
        assert dist.get(pid) == pytest.approx(exact, rel=1e-9, abs=1e-9), (
            f"seed={seed} pid={pid}"
        )
