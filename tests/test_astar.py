"""Tests for the Euclidean-bounded (A*) shortest-path search."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import UnreachableError
from repro.network.astar import node_distance_astar, point_distance_astar
from repro.network.augmented import AugmentedView
from repro.network.dijkstra import node_distance
from repro.network.distance import network_distance
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

from tests.conftest import make_grid_network


def euclidean_weighted_network(rng: random.Random, side: int) -> SpatialNetwork:
    """A jittered grid whose weights are the Euclidean node distances —
    the admissibility precondition for the A* heuristic."""
    net = SpatialNetwork(name="astar-grid")

    def nid(i, j):
        return i * side + j

    for i in range(side):
        for j in range(side):
            net.add_node(
                nid(i, j),
                x=i + rng.uniform(-0.2, 0.2),
                y=j + rng.uniform(-0.2, 0.2),
            )
    for i in range(side):
        for j in range(side):
            if i + 1 < side:
                net.add_edge(nid(i, j), nid(i + 1, j))  # Euclidean weight
            if j + 1 < side:
                net.add_edge(nid(i, j), nid(i, j + 1))
    return net


class TestNodeAstar:
    def test_same_node(self, grid_network):
        assert node_distance_astar(grid_network, 3, 3) == (0.0, 0)

    def test_matches_dijkstra(self):
        rng = random.Random(2)
        net = euclidean_weighted_network(rng, 8)
        nodes = sorted(net.nodes())
        for _ in range(30):
            a, b = rng.sample(nodes, 2)
            d_astar, _ = node_distance_astar(net, a, b)
            assert d_astar == pytest.approx(node_distance(net, a, b))

    def test_settles_fewer_vertices_than_dijkstra(self):
        """The point of the Euclidean bound: directed search touches less
        of the network."""
        rng = random.Random(3)
        net = euclidean_weighted_network(rng, 14)
        from repro.network.dijkstra import single_source

        # Corner to the adjacent corner: Dijkstra floods in all directions.
        source, target = 0, 13  # (0,0) -> (0,13)
        _, settled_astar = node_distance_astar(net, source, target)
        settled_dijkstra = len(single_source(net, source, targets=(target,)))
        assert settled_astar < settled_dijkstra

    def test_no_coords_falls_back_to_dijkstra(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (2, 3, 1.0)])
        d, _ = node_distance_astar(net, 1, 3)
        assert d == pytest.approx(2.0)

    def test_unreachable(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        with pytest.raises(UnreachableError):
            node_distance_astar(net, 1, 3)


class TestPointAstar:
    def test_matches_augmented_dijkstra(self):
        rng = random.Random(4)
        net = euclidean_weighted_network(rng, 7)
        edges = list(net.edges())
        ps = PointSet(net)
        for _ in range(12):
            u, v, w = edges[rng.randrange(len(edges))]
            ps.add(u, v, rng.uniform(0, w))
        aug = AugmentedView(net, ps)
        pts = list(ps)
        for _ in range(20):
            p, q = rng.sample(pts, 2)
            d_astar, _ = point_distance_astar(aug, p, q)
            assert d_astar == pytest.approx(network_distance(aug, p, q))

    def test_same_point(self, small_network, small_points):
        aug = AugmentedView(small_network, small_points)
        p = small_points.get(0)
        assert point_distance_astar(aug, p, p) == (0.0, 0)

    def test_unreachable(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        a = ps.add(1, 2, 0.5)
        b = ps.add(3, 4, 0.5)
        aug = AugmentedView(net, ps)
        with pytest.raises(UnreachableError):
            point_distance_astar(aug, a, b)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=3, max_value=7))
def test_property_astar_exact_on_euclidean_weights(seed, side):
    rng = random.Random(seed)
    net = euclidean_weighted_network(rng, side)
    nodes = sorted(net.nodes())
    a, b = rng.sample(nodes, 2)
    d_astar, _ = node_distance_astar(net, a, b)
    assert d_astar == pytest.approx(node_distance(net, a, b), rel=1e-9)
