"""Bit-identity sweep for the CSR traversal backend, plus the twin /
determinism regressions fixed alongside it.

The dict-of-dicts :class:`SpatialNetwork` traversals are the oracle; every
test here asserts that :class:`CSRNetwork` produces *bit-identical* output —
same floats, same tie-breaking, same dict insertion order — across the
query layer, the distance accelerator (with and without landmarks), and all
five clustering algorithms, including disconnected networks and the
all-ties unit grid.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro import obs
from repro.core.dbscan import NetworkDBSCAN
from repro.core.epslink import EpsLink
from repro.core.kmedoids import NetworkKMedoids
from repro.core.optics import NetworkOPTICS
from repro.core.singlelink import SingleLink
from repro.exceptions import (
    BudgetExceededError,
    DeadlineExceeded,
    NodeNotFoundError,
    ParameterError,
    StaleBackendError,
    UnreachableError,
)
from repro.faults import OpBudget
from repro.network.augmented import AugmentedView
from repro.network.csr import CSRNetwork, resolve_backend
from repro.network.dijkstra import (
    multi_source,
    node_distance,
    single_source,
    single_source_with_paths,
)
from repro.network.graph import SpatialNetwork
from repro.network.interface import NetworkBackend
from repro.network.queries import eccentricity_upper_bound, knn_query, range_query
from repro.perf.accel import DistanceAccelerator
from repro.resilience import Deadline, TickingClock
from tests.conftest import (
    make_grid_network,
    make_random_connected_network,
    scatter_points,
)
from tests.strategies import clustering_instance

SWEEP = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _identical(a, b):
    """Equal values AND equal dict insertion order (settle order)."""
    assert a == b
    if isinstance(a, dict):
        assert list(a) == list(b)
    if isinstance(a, tuple):
        for x, y in zip(a, b):
            _identical(x, y)


# ----------------------------------------------------------------------
# Freeze semantics: protocol, ordering, staleness
# ----------------------------------------------------------------------
class TestFreeze:
    def test_protocol_and_order(self):
        rng = random.Random(7)
        net = make_random_connected_network(rng, 12, extra_edges=5)
        csr = CSRNetwork.freeze(net)
        assert isinstance(csr, NetworkBackend)
        assert isinstance(net, NetworkBackend)
        # nodes() preserves source iteration order, not sorted-id order.
        assert list(csr.nodes()) == list(net.nodes())
        assert sorted(csr.edges()) == sorted(net.edges())
        assert csr.num_nodes == net.num_nodes
        assert csr.num_edges == net.num_edges
        for node in net.nodes():
            # neighbors() preserves source adjacency order (counter ties).
            assert list(csr.neighbors(node)) == list(net.neighbors(node))
        u, v, w = next(iter(net.edges()))
        assert csr.edge_weight(u, v) == w

    def test_resolve_backend(self):
        net = make_grid_network(3, 3)
        assert resolve_backend(net, None) is net
        assert resolve_backend(net, "dict") is net
        csr = resolve_backend(net, "csr")
        assert isinstance(csr, CSRNetwork)
        # Freezing a frozen view is a no-op, not a double wrap.
        assert CSRNetwork.freeze(csr) is csr
        with pytest.raises(ParameterError):
            resolve_backend(net, "sparse")

    def test_mutation_after_freeze_is_a_typed_error(self):
        net = make_grid_network(3, 3)
        csr = CSRNetwork.freeze(net)
        assert csr.has_node(0)
        net.add_edge(0, 8, 1.5)
        with pytest.raises(StaleBackendError):
            csr.has_node(0)
        with pytest.raises(StaleBackendError):
            single_source(csr, 0)
        # Re-freezing the mutated source yields a fresh, serving view.
        fresh = CSRNetwork.freeze(net)
        assert fresh.has_edge(0, 8)

    def test_unknown_source_matches_dict_timing(self):
        net = make_grid_network(2, 2)
        csr = CSRNetwork.freeze(net)
        # The dict path only raises when it would expand the node ...
        with pytest.raises(NodeNotFoundError):
            single_source(csr, 99)
        # ... so an empty-target query on an unknown source succeeds.
        _identical(single_source(net, 99, targets=()), single_source(csr, 99, targets=()))


# ----------------------------------------------------------------------
# Traversal bit-identity (random + disconnected networks)
# ----------------------------------------------------------------------
class TestTraversalBitIdentity:
    @SWEEP
    @given(inst=clustering_instance())
    def test_single_source(self, inst):
        net, _, seed = inst
        csr = CSRNetwork.freeze(net)
        rng = random.Random(seed)
        nodes = list(net.nodes())
        cutoff = rng.uniform(0.5, 15.0)
        for source in nodes[:4]:
            _identical(single_source(net, source), single_source(csr, source))
            _identical(
                single_source(net, source, cutoff=cutoff),
                single_source(csr, source, cutoff=cutoff),
            )
            targets = rng.sample(nodes, min(3, len(nodes)))
            _identical(
                single_source(net, source, targets=targets),
                single_source(csr, source, targets=targets),
            )

    @SWEEP
    @given(inst=clustering_instance())
    def test_single_source_with_paths(self, inst):
        net, _, _ = inst
        csr = CSRNetwork.freeze(net)
        for source in list(net.nodes())[:3]:
            _identical(
                single_source_with_paths(net, source),
                single_source_with_paths(csr, source),
            )

    @SWEEP
    @given(inst=clustering_instance())
    def test_multi_source(self, inst):
        net, _, seed = inst
        csr = CSRNetwork.freeze(net)
        rng = random.Random(seed)
        nodes = list(net.nodes())
        seeds = [
            (rng.choice((0.0, rng.uniform(0.0, 2.0))), n, f"m{i}")
            for i, n in enumerate(nodes[:3])
        ]
        _identical(multi_source(net, seeds), multi_source(csr, seeds))

    @SWEEP
    @given(inst=clustering_instance())
    def test_node_distance(self, inst):
        net, _, seed = inst
        csr = CSRNetwork.freeze(net)
        rng = random.Random(seed)
        nodes = list(net.nodes())
        for _ in range(4):
            u, v = rng.choice(nodes), rng.choice(nodes)
            try:
                expected = node_distance(net, u, v)
            except UnreachableError:
                with pytest.raises(UnreachableError):
                    node_distance(csr, u, v)
            else:
                assert node_distance(csr, u, v) == expected

    def test_unit_grid_all_ties(self):
        """Every path on the unit grid ties; settle order must still match."""
        net = make_grid_network(6, 6)
        csr = CSRNetwork.freeze(net)
        for source in (0, 7, 35):
            _identical(single_source(net, source), single_source(csr, source))
            _identical(
                single_source_with_paths(net, source),
                single_source_with_paths(csr, source),
            )
        seeds = [(0.0, 0, "a"), (0.0, 35, "b"), (0.5, 14, "c")]
        _identical(multi_source(net, seeds), multi_source(csr, seeds))


# ----------------------------------------------------------------------
# Query layer + accelerator bit-identity (landmarks 0 and 4)
# ----------------------------------------------------------------------
class TestQueryBitIdentity:
    @SWEEP
    @given(inst=clustering_instance())
    def test_queries_and_accelerator(self, inst):
        net, points, seed = inst
        rng = random.Random(seed)
        aug_dict = AugmentedView(net, points)
        aug_csr = AugmentedView(CSRNetwork.freeze(net), points)
        pts = list(points)
        query = pts[rng.randrange(len(pts))]
        eps = rng.uniform(0.5, 20.0)
        k = rng.randrange(1, len(pts) + 1)
        _identical(
            range_query(aug_dict, query, eps), range_query(aug_csr, query, eps)
        )
        _identical(knn_query(aug_dict, query, k), knn_query(aug_csr, query, k))
        for lm in (0, 4):
            oracle = DistanceAccelerator(aug_dict, landmarks=lm, cache_mb=0.0)
            accel = DistanceAccelerator(aug_csr, landmarks=lm, cache_mb=0.0)
            _identical(
                oracle.range_query(query, eps), accel.range_query(query, eps)
            )
            _identical(oracle.knn_query(query, k), accel.knn_query(query, k))
            other = pts[rng.randrange(len(pts))]
            try:
                expected = oracle.point_distance(query, other)
            except UnreachableError:
                with pytest.raises(UnreachableError):
                    accel.point_distance(query, other)
            else:
                assert accel.point_distance(query, other) == expected


# ----------------------------------------------------------------------
# Algorithms end-to-end via backend="csr"
# ----------------------------------------------------------------------
class TestAlgorithmBitIdentity:
    @SWEEP
    @given(inst=clustering_instance(min_points=3))
    def test_all_five_algorithms(self, inst):
        net, points, seed = inst
        rng = random.Random(seed)
        eps = rng.uniform(1.0, 10.0)
        k = min(2, len(points))
        runs = [
            lambda b: EpsLink(net, points, eps=eps, min_sup=2, backend=b).run(),
            lambda b: NetworkDBSCAN(net, points, eps=eps, min_pts=2, backend=b).run(),
            lambda b: NetworkOPTICS(
                net, points, max_eps=eps, min_pts=2, backend=b
            ).run(),
            lambda b: SingleLink(net, points, delta=eps, backend=b).run(),
            lambda b: NetworkKMedoids(
                net, points, k=k, seed=0, backend=b
            ).run(),
        ]
        for run in runs:
            oracle = run(None)
            csr = run("csr")
            _identical(dict(oracle.assignment), dict(csr.assignment))


# ----------------------------------------------------------------------
# Twin parity: counters, budgets and faults are backend-invariant
# ----------------------------------------------------------------------
class TestTwinParity:
    def _counters(self, fn, *args, **kwargs):
        obs.enable(fresh=True)
        try:
            fn(*args, **kwargs)
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
        return {k: v for k, v in counters.items() if k.startswith("dijkstra.")}

    def test_counted_twins_match_dict_backend(self):
        rng = random.Random(3)
        net = make_random_connected_network(rng, 20, extra_edges=10)
        csr = CSRNetwork.freeze(net)
        for fn in (single_source, single_source_with_paths):
            assert self._counters(fn, net, 0) == self._counters(fn, csr, 0)
        seeds = [(0.0, 0, "a"), (1.0, 5, "b"), (0.0, 11, "c")]
        assert self._counters(multi_source, net, seeds) == self._counters(
            multi_source, csr, seeds
        )

    def test_with_paths_counters_match_single_source(self):
        """Regression: the paths variant under-reported its work."""
        rng = random.Random(5)
        net = make_random_connected_network(rng, 15, extra_edges=6)
        plain = self._counters(single_source, net, 0)
        paths = self._counters(single_source_with_paths, net, 0)
        for key in (
            "dijkstra.runs",
            "dijkstra.heap_pops",
            "dijkstra.heap_pushes",
            "dijkstra.edges_relaxed",
            "dijkstra.nodes_settled",
        ):
            assert paths[key] == plain[key], key

    def test_with_paths_budget_matches_single_source(self):
        """Regression: the guarded paths twin never charged edge relaxations."""
        rng = random.Random(9)
        net = make_random_connected_network(rng, 12, extra_edges=4)
        counts = self._counters(single_source, net, 0)
        relaxed = counts["dijkstra.edges_relaxed"]
        assert relaxed > 0
        # Exactly enough budget passes; one fewer trips on the last edge —
        # for the paths variant exactly as for the distance-only one.
        for fn in (single_source, single_source_with_paths):
            with OpBudget(max_distance_computations=relaxed).activate():
                fn(net, 0)
            with OpBudget(max_distance_computations=relaxed - 1).activate():
                with pytest.raises(BudgetExceededError):
                    fn(net, 0)

    def test_budget_parity_dict_vs_csr(self):
        rng = random.Random(11)
        net = make_random_connected_network(rng, 14, extra_edges=5)
        csr = CSRNetwork.freeze(net)

        def spent(network):
            budget = OpBudget()
            with budget.activate():
                single_source(network, 0)
            return budget.expansions, budget.distance_computations

        assert spent(net) == spent(csr)


# ----------------------------------------------------------------------
# Determinism regressions: copy()/subnetwork() iteration order
# ----------------------------------------------------------------------
class TestCopyOrderRegression:
    def _scrambled_net(self):
        """Node ids whose insertion order differs from both sorted and
        (for str-keyed dicts pre-3.7 style bugs) hash order."""
        net = SpatialNetwork(name="scrambled")
        order = [5, 2, 9, 0, 7, 3]
        for n in order:
            net.add_node(n, x=float(n), y=0.0)
        for a, b in zip(order, order[1:]):
            net.add_edge(a, b, 1.0 + 0.1 * a)
        return net, order

    def test_copy_preserves_iteration_order(self):
        net, order = self._scrambled_net()
        clone = net.copy()
        assert list(clone.nodes()) == order == list(net.nodes())
        for n in order:
            assert list(clone.neighbors(n)) == list(net.neighbors(n))

    def test_subnetwork_preserves_caller_order(self):
        net, _ = self._scrambled_net()
        wanted = [9, 5, 3, 2]
        sub = net.subnetwork(wanted)
        assert list(sub.nodes()) == wanted

    def test_copy_trajectory_identical(self):
        """A traversal on the copy settles in the original's order."""
        rng = random.Random(13)
        net = make_random_connected_network(rng, 18, extra_edges=7)
        clone = net.copy()
        for source in list(net.nodes())[:3]:
            _identical(single_source(net, source), single_source(clone, source))
        # And the copy freezes to the same CSR trajectory too.
        _identical(
            single_source(CSRNetwork.freeze(net), 0),
            single_source(CSRNetwork.freeze(clone), 0),
        )


# ----------------------------------------------------------------------
# Eccentricity scan honours the cooperative deadline
# ----------------------------------------------------------------------
class TestEccentricityGuarded:
    def test_deadline_interrupts_component_scan(self):
        """Regression: the scan expanded the whole component unguarded."""
        net = make_grid_network(6, 6)
        rng = random.Random(17)
        points = scatter_points(rng, net, 8)
        aug = AugmentedView(net, points)
        query = next(iter(points))
        # Checks alternate settle-site / neighbors-site; an odd budget
        # lands the expiry on the settle site added by the fix, whose
        # partial result is the farthest distance found so far.
        with Deadline(3.0, clock=TickingClock()).activate():
            with pytest.raises(DeadlineExceeded) as exc:
                eccentricity_upper_bound(aug, query)
        assert isinstance(exc.value.partial, float)

    def test_budget_charges_expansions(self):
        net = make_grid_network(4, 4)
        rng = random.Random(19)
        points = scatter_points(rng, net, 4)
        aug = AugmentedView(net, points)
        query = next(iter(points))
        with OpBudget(max_expansions=3).activate():
            with pytest.raises(BudgetExceededError):
                eccentricity_upper_bound(aug, query)
        budget = OpBudget()
        with budget.activate():
            bound = eccentricity_upper_bound(aug, query)
        assert bound > 0.0
        assert budget.expansions > 0
