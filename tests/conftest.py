"""Shared fixtures for the test suite.

The ``small_network`` fixture is the hand-computed reference network used
throughout the unit tests:

.. code-block:: text

    1 --2.0-- 2 --3.0-- 3
    |                   |
   4.0                 1.0
    |                   |
    4 --------2.0------ 5

Known shortest node distances: d(1,3)=5, d(1,5)=6, d(2,4)=6, d(2,5)=4.
"""

from __future__ import annotations

import random

import pytest

from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

SMALL_EDGES = [
    (1, 2, 2.0),
    (2, 3, 3.0),
    (1, 4, 4.0),
    (3, 5, 1.0),
    (4, 5, 2.0),
]

SMALL_COORDS = {
    1: (0.0, 1.0),
    2: (2.0, 1.0),
    3: (5.0, 1.0),
    4: (0.0, 0.0),
    5: (5.0, 0.0),
}


@pytest.fixture
def small_network() -> SpatialNetwork:
    return SpatialNetwork.from_edge_list(SMALL_EDGES, coords=SMALL_COORDS, name="small")


@pytest.fixture
def small_points(small_network) -> PointSet:
    """Four points with hand-computed pairwise network distances.

    p0 on (1,2)@0.5, p1 on (1,2)@1.5, p2 on (2,3)@1.0, p3 on (4,5)@1.0.
    d(p0,p1)=1.0, d(p0,p2)=2.5, d(p1,p2)=1.5, d(p0,p3)=5.5 (via node 1),
    d(p1,p3)=5.5 (via nodes 2-3-5: 0.5+3+1+1),
    d(p2,p3)=min(via 2: 1+6+1=8, via 3: 2+1+1=4)=4.0.
    """
    ps = PointSet(small_network)
    ps.add(1, 2, 0.5, point_id=0)
    ps.add(1, 2, 1.5, point_id=1)
    ps.add(2, 3, 1.0, point_id=2)
    ps.add(4, 5, 1.0, point_id=3)
    return ps


def make_grid_network(width: int, height: int, spacing: float = 1.0) -> SpatialNetwork:
    """A width x height grid network with uniform edge weights."""
    net = SpatialNetwork(name=f"grid{width}x{height}")
    def nid(i: int, j: int) -> int:
        return i * height + j
    for i in range(width):
        for j in range(height):
            net.add_node(nid(i, j), x=i * spacing, y=j * spacing)
    for i in range(width):
        for j in range(height):
            if i + 1 < width:
                net.add_edge(nid(i, j), nid(i + 1, j), spacing)
            if j + 1 < height:
                net.add_edge(nid(i, j), nid(i, j + 1), spacing)
    return net


@pytest.fixture
def grid_network() -> SpatialNetwork:
    return make_grid_network(5, 5)


def make_random_connected_network(
    rng: random.Random, n_nodes: int, extra_edges: int = 0
) -> SpatialNetwork:
    """A random connected network: a random spanning tree plus extra edges.

    Weights are uniform in (0.1, 10).  Deterministic given the Random
    instance.
    """
    net = SpatialNetwork(name="random")
    nodes = list(range(n_nodes))
    for node in nodes:
        net.add_node(node, x=rng.uniform(0, 100), y=rng.uniform(0, 100))
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    for i in range(1, n_nodes):
        attach = shuffled[rng.randrange(i)]
        net.add_edge(shuffled[i], attach, rng.uniform(0.1, 10.0))
    added = 0
    attempts = 0
    while added < extra_edges and attempts < extra_edges * 20:
        attempts += 1
        u, v = rng.sample(nodes, 2)
        if not net.has_edge(u, v):
            net.add_edge(u, v, rng.uniform(0.1, 10.0))
            added += 1
    return net


def scatter_points(
    rng: random.Random, network: SpatialNetwork, n_points: int
) -> PointSet:
    """Place points uniformly at random on random edges of the network."""
    edges = list(network.edges())
    ps = PointSet(network)
    for _ in range(n_points):
        u, v, w = edges[rng.randrange(len(edges))]
        ps.add(u, v, rng.uniform(0.0, w))
    return ps
