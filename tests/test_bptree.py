"""Tests for the disk-based B+-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.bptree import BPlusTree
from repro.storage.pager import BufferManager, PagedFile


@pytest.fixture
def tree(tmp_path):
    f = PagedFile(tmp_path / "tree.db", page_size=512)
    buf = BufferManager(f, capacity_bytes=512 * 16)
    yield BPlusTree(buf)
    buf.close()


class TestBasicOperations:
    def test_empty_tree(self, tree):
        assert tree.search(1) is None
        assert list(tree.items()) == []
        assert len(tree) == 0
        assert tree.height() == 1

    def test_insert_and_search(self, tree):
        tree.insert(5, 500)
        tree.insert(1, 100)
        tree.insert(9, 900)
        assert tree.search(5) == 500
        assert tree.search(1) == 100
        assert tree.search(9) == 900
        assert tree.search(7) is None
        assert 5 in tree
        assert 7 not in tree

    def test_replace_value(self, tree):
        tree.insert(5, 500)
        tree.insert(5, 555)
        assert tree.search(5) == 555
        assert len(tree) == 1

    def test_negative_keys_and_values(self, tree):
        tree.insert(-10, -1)
        tree.insert(10, 1)
        assert tree.search(-10) == -1
        assert [k for k, _ in tree.items()] == [-10, 10]

    def test_sorted_iteration(self, tree):
        keys = [9, 3, 7, 1, 5]
        for k in keys:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.items()] == sorted(keys)


class TestSplitsAndHeight:
    def test_many_inserts_force_splits(self, tree):
        n = 500  # 512-byte pages hold ~31 entries: guarantees splits
        for k in range(n):
            tree.insert(k, k)
        assert tree.height() > 1
        assert len(tree) == n
        for k in range(n):
            assert tree.search(k) == k
        tree.check_invariants()

    def test_random_insert_order(self, tree):
        rng = random.Random(1)
        keys = list(range(400))
        rng.shuffle(keys)
        for k in keys:
            tree.insert(k, k * 2)
        assert [k for k, _ in tree.items()] == sorted(keys)
        tree.check_invariants()


class TestRange:
    @pytest.fixture
    def filled(self, tree):
        for k in range(0, 200, 2):  # even keys only
            tree.insert(k, k)
        return tree

    def test_range_inclusive(self, filled):
        got = [k for k, _ in filled.range(10, 20)]
        assert got == [10, 12, 14, 16, 18, 20]

    def test_range_unaligned_bounds(self, filled):
        got = [k for k, _ in filled.range(9, 15)]
        assert got == [10, 12, 14]

    def test_range_empty(self, filled):
        assert list(filled.range(301, 400)) == []

    def test_range_everything(self, filled):
        assert len(list(filled.range(-1000, 1000))) == 100


class TestFloor:
    @pytest.fixture
    def filled(self, tree):
        for k in (10, 20, 30, 400, 500):
            tree.insert(k, k * 10)
        return tree

    def test_exact_hit(self, filled):
        assert filled.floor(30) == (30, 300)

    def test_between_keys(self, filled):
        assert filled.floor(35) == (30, 300)
        assert filled.floor(499) == (400, 4000)

    def test_below_minimum(self, filled):
        assert filled.floor(5) is None

    def test_above_maximum(self, filled):
        assert filled.floor(10_000) == (500, 5000)

    def test_floor_in_large_tree(self, tree):
        for k in range(0, 3000, 10):
            tree.insert(k, k)
        assert tree.floor(1234) == (1230, 1230)
        assert tree.floor(0) == (0, 0)
        assert tree.floor(-1) is None


class TestDelete:
    def test_delete_present(self, tree):
        tree.insert(1, 10)
        tree.insert(2, 20)
        assert tree.delete(1)
        assert tree.search(1) is None
        assert tree.search(2) == 20
        assert len(tree) == 1

    def test_delete_absent(self, tree):
        tree.insert(1, 10)
        assert not tree.delete(99)
        assert len(tree) == 1

    def test_delete_many_then_iterate(self, tree):
        for k in range(300):
            tree.insert(k, k)
        for k in range(0, 300, 3):
            assert tree.delete(k)
        remaining = [k for k, _ in tree.items()]
        assert remaining == [k for k in range(300) if k % 3 != 0]
        for k in range(300):
            want = None if k % 3 == 0 else k
            assert tree.search(k) == want


class TestBulkLoad:
    def _fresh_buffer(self, tmp_path, name="bulk.db"):
        f = PagedFile(tmp_path / name, page_size=512)
        return BufferManager(f, capacity_bytes=512 * 16)

    def test_empty(self, tmp_path):
        buf = self._fresh_buffer(tmp_path)
        tree = BPlusTree.bulk_load(buf, [])
        assert len(tree) == 0
        buf.close()

    def test_matches_insert_built_tree(self, tmp_path):
        items = [(k, k * 3) for k in range(0, 1000, 2)]
        buf = self._fresh_buffer(tmp_path)
        bulk = BPlusTree.bulk_load(buf, items)
        assert list(bulk.items()) == items
        assert len(bulk) == len(items)
        for k, v in items[::37]:
            assert bulk.search(k) == v
        assert bulk.search(1) is None
        bulk.check_invariants()
        buf.close()

    def test_fewer_writes_than_repeated_insert(self, tmp_path):
        items = [(k, k) for k in range(600)]
        buf_bulk = self._fresh_buffer(tmp_path, "b1.db")
        BPlusTree.bulk_load(buf_bulk, items)
        buf_bulk.flush()
        bulk_writes = buf_bulk.file.writes
        buf_bulk.close()
        buf_ins = self._fresh_buffer(tmp_path, "b2.db")
        tree = BPlusTree(buf_ins)
        for k, v in items:
            tree.insert(k, v)
        buf_ins.flush()
        # With a small buffer, inserts rewrite pages repeatedly; bulk load
        # writes each page roughly once.
        assert bulk_writes <= buf_ins.file.writes
        buf_ins.close()

    def test_supports_inserts_after_bulk_load(self, tmp_path):
        buf = self._fresh_buffer(tmp_path)
        tree = BPlusTree.bulk_load(buf, [(k, k) for k in range(0, 100, 2)])
        tree.insert(51, 510)
        assert tree.search(51) == 510
        assert [k for k, _ in tree.range(50, 52)] == [50, 51, 52]
        tree.check_invariants()
        buf.close()

    def test_single_item(self, tmp_path):
        buf = self._fresh_buffer(tmp_path)
        tree = BPlusTree.bulk_load(buf, [(7, 70)])
        assert tree.search(7) == 70
        assert tree.height() == 1
        buf.close()

    def test_unsorted_rejected(self, tmp_path):
        from repro.exceptions import TreeError

        buf = self._fresh_buffer(tmp_path)
        with pytest.raises(TreeError):
            BPlusTree.bulk_load(buf, [(2, 0), (1, 0)])
        with pytest.raises(TreeError):
            BPlusTree.bulk_load(buf, [(1, 0), (1, 1)])
        with pytest.raises(TreeError):
            BPlusTree.bulk_load(buf, [(1, 0)], fill_factor=0.0)
        buf.close()

    def test_floor_and_range_on_bulk_tree(self, tmp_path):
        buf = self._fresh_buffer(tmp_path)
        tree = BPlusTree.bulk_load(buf, [(k, k) for k in range(0, 2000, 10)])
        assert tree.floor(1234) == (1230, 1230)
        assert [k for k, _ in tree.range(95, 125)] == [100, 110, 120]
        buf.close()


class TestPersistence:
    def test_reopen_by_root_pid(self, tmp_path):
        path = tmp_path / "persist.db"
        f = PagedFile(path, page_size=512)
        buf = BufferManager(f)
        tree = BPlusTree(buf)
        for k in range(200):
            tree.insert(k, k * 7)
        root = tree.root_pid
        buf.close()

        f2 = PagedFile(path)
        buf2 = BufferManager(f2)
        tree2 = BPlusTree(buf2, root_pid=root)
        assert len(tree2) == 200
        for k in range(200):
            assert tree2.search(k) == k * 7
        tree2.insert(999, 1)
        assert tree2.search(999) == 1
        buf2.close()


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=-10_000, max_value=10_000), st.integers()),
        min_size=0,
        max_size=300,
    ),
    st.lists(st.integers(min_value=-10_000, max_value=10_000), max_size=60),
)
def test_property_matches_dict(tmp_path_factory, inserts, deletes):
    """Invariant 8: the tree behaves like a sorted dict under arbitrary
    insert/delete interleavings."""
    path = tmp_path_factory.mktemp("bpt") / "prop.db"
    f = PagedFile(path, page_size=512)
    buf = BufferManager(f, capacity_bytes=512 * 8)
    tree = BPlusTree(buf)
    reference: dict[int, int] = {}
    ops = [("ins", k, v) for k, v in inserts] + [("del", k, 0) for k in deletes]
    random.Random(42).shuffle(ops)
    for op, k, v in ops:
        if op == "ins":
            tree.insert(k, v % (1 << 31))
            reference[k] = v % (1 << 31)
        else:
            assert tree.delete(k) == (k in reference)
            reference.pop(k, None)
    assert list(tree.items()) == sorted(reference.items())
    for k in list(reference)[:50]:
        assert tree.search(k) == reference[k]
    tree.check_invariants()
    buf.close()
