"""Tests for the baseline algorithms (matrix-based and Euclidean)."""

from __future__ import annotations

import math
import random

import pytest

from repro.baselines.classic import (
    matrix_agglomerative,
    matrix_kmedoids,
    matrix_single_link,
    threshold_components,
)
from repro.baselines.euclidean import euclidean_distance_matrix
from repro.baselines.matrix import DistanceMatrix, node_distance_matrix
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet

from tests.conftest import make_random_connected_network, scatter_points


@pytest.fixture
def dm(small_network, small_points):
    return DistanceMatrix.from_points(small_network, small_points)


class TestDistanceMatrix:
    def test_known_values(self, dm):
        assert dm.distance(0, 1) == pytest.approx(1.0)
        assert dm.distance(2, 3) == pytest.approx(4.0)
        assert dm.distance(0, 0) == 0.0

    def test_symmetric(self, dm):
        import numpy as np

        assert np.allclose(dm.values, dm.values.T)

    def test_nbytes(self, dm):
        assert dm.nbytes() == 4 * 4 * 8

    def test_shape_validation(self):
        import numpy as np

        with pytest.raises(ParameterError):
            DistanceMatrix([1, 2, 3], np.zeros((2, 2)))

    def test_missing_point(self, dm):
        from repro.exceptions import PointNotFoundError

        with pytest.raises(PointNotFoundError):
            dm.distance(0, 99)


class TestNodeDistanceMatrix:
    def test_matches_single_source(self, small_network):
        from repro.network.dijkstra import single_source

        ids, values = node_distance_matrix(small_network)
        for i, u in enumerate(ids):
            want = single_source(small_network, u)
            for j, v in enumerate(ids):
                assert values[i, j] == pytest.approx(want[v])

    def test_quadratic_size(self, small_network):
        ids, values = node_distance_matrix(small_network)
        assert values.shape == (5, 5)


class TestThresholdComponents:
    def test_validation(self, dm):
        with pytest.raises(ParameterError):
            threshold_components(dm, eps=0.0)

    def test_known_components(self, dm):
        result = threshold_components(dm, eps=1.0)
        assert result.as_partition() == {
            frozenset({0, 1}), frozenset({2}), frozenset({3}),
        }


class TestMatrixKMedoids:
    def test_k_validation(self, dm):
        with pytest.raises(ParameterError):
            matrix_kmedoids(dm, k=0)
        with pytest.raises(ParameterError):
            matrix_kmedoids(dm, k=5)

    def test_deterministic_with_seed(self, dm):
        a = matrix_kmedoids(dm, k=2, seed=3)
        b = matrix_kmedoids(dm, k=2, seed=3)
        assert a.assignment == b.assignment

    def test_r_decreases_with_k(self, small_network):
        rng = random.Random(1)
        net = make_random_connected_network(rng, 20, extra_edges=10)
        points = scatter_points(rng, net, 16)
        dm = DistanceMatrix.from_points(net, points)
        r2 = matrix_kmedoids(dm, k=2, seed=0).stats["R"]
        r8 = matrix_kmedoids(dm, k=8, seed=0).stats["R"]
        assert r8 <= r2


class TestMatrixAgglomerative:
    def test_single_matches_kruskal_variant(self, dm):
        lance = matrix_agglomerative(dm, linkage="single")
        kruskal = matrix_single_link(dm)
        assert lance.merge_distances() == pytest.approx(kruskal.merge_distances())

    def test_single_matches_on_random_instances(self):
        rng = random.Random(5)
        for _ in range(5):
            net = make_random_connected_network(rng, 12, extra_edges=6)
            points = scatter_points(rng, net, 8)
            dm = DistanceMatrix.from_points(net, points)
            lance = matrix_agglomerative(dm, linkage="single")
            kruskal = matrix_single_link(dm)
            assert lance.merge_distances() == pytest.approx(
                kruskal.merge_distances()
            )

    def test_complete_link_hand_example(self):
        """Points at offsets 0, 1, 3 on a line: single merges (0,1)@1 then
        +3@2; complete merges (0,1)@1 then +3@3 (the max distance)."""
        net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
        ps = PointSet(net)
        for off in (0.0, 1.0, 3.0):
            ps.add(1, 2, off)
        dm = DistanceMatrix.from_points(net, ps)
        single = matrix_agglomerative(dm, linkage="single")
        complete = matrix_agglomerative(dm, linkage="complete")
        assert single.merge_distances() == pytest.approx([1.0, 2.0])
        assert complete.merge_distances() == pytest.approx([1.0, 3.0])

    def test_average_link_between_single_and_complete(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
        ps = PointSet(net)
        for off in (0.0, 1.0, 3.0):
            ps.add(1, 2, off)
        dm = DistanceMatrix.from_points(net, ps)
        avg = matrix_agglomerative(dm, linkage="average")
        assert avg.merge_distances() == pytest.approx([1.0, 2.5])

    def test_disconnected_gives_forest(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.2)
        ps.add(1, 2, 0.8)
        ps.add(3, 4, 0.5)
        dm = DistanceMatrix.from_points(net, ps)
        dendrogram = matrix_agglomerative(dm, linkage="complete")
        assert dendrogram.num_roots == 2

    def test_monotone_merges(self):
        rng = random.Random(9)
        net = make_random_connected_network(rng, 15, extra_edges=8)
        points = scatter_points(rng, net, 10)
        dm = DistanceMatrix.from_points(net, points)
        for linkage in ("single", "complete", "average"):
            distances = matrix_agglomerative(dm, linkage=linkage).merge_distances()
            assert distances == sorted(distances)

    def test_bad_linkage(self, dm):
        with pytest.raises(ParameterError):
            matrix_agglomerative(dm, linkage="ward")


class TestEuclideanBaseline:
    def test_straight_line_distances(self, small_network, small_points):
        dm = euclidean_distance_matrix(small_network, small_points)
        # p0 at (0.5, 1.0) and p1 at (1.5, 1.0): Euclidean 1.0.
        assert dm.distance(0, 1) == pytest.approx(1.0)

    def test_euclidean_never_exceeds_network(self, small_network, small_points):
        net_dm = DistanceMatrix.from_points(small_network, small_points)
        euc_dm = euclidean_distance_matrix(small_network, small_points)
        for a in net_dm.ids:
            for b in net_dm.ids:
                if math.isfinite(net_dm.distance(a, b)):
                    assert euc_dm.distance(a, b) <= net_dm.distance(a, b) + 1e-9
