"""Chaos tests for the durable live-mutation tier.

Three fault families, all seeded and deterministic:

* **crash / torn mid-append** — the serve-facing durability contract:
  every mutation whose ``mutate`` call returned (the WAL fsync happened)
  survives the crash; every one that raised vanishes atomically on the
  next open.
* **kill mid-apply** — a worker (or the in-process applier) dies between
  the WAL fsync and the in-memory apply; the durable log rebuilds the
  lost state on replay.
* **kill mid-replay** — a restarted worker dies while replaying the log;
  the pool degrades rather than ever serving from a stale world, and a
  later pool over the same log recovers completely.

The pool-level acceptance test: a 3-process :class:`SupervisedPool`
under seeded SIGKILLs mid-apply converges to the supervisor's epoch with
a clustering bit-identical to a single-threaded oracle replaying the
same log.
"""

from __future__ import annotations

import json
import os
import shutil
import time

import pytest

from repro import faults
from repro.exceptions import Overloaded
from repro.faults import CrashPoint, FaultRule, WorkerKilled
from repro.io import load_workload_file, workload_to_dict
from repro.live import LiveSession, WriteAheadLog
from repro.serve import SupervisedPool
from tests.conftest import make_random_connected_network, scatter_points

import random

CONVERGE_TIMEOUT_S = 60.0


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    rng = random.Random(11)
    net = make_random_connected_network(rng, 16, extra_edges=6)
    pts = scatter_points(rng, net, 12)
    path = tmp_path_factory.mktemp("live_chaos") / "w.json"
    path.write_text(json.dumps(workload_to_dict(net, pts)))
    return str(path)


def mutation_plan(workload_path: str, seed: int, n: int = 10) -> list[dict]:
    """A deterministic mixed insert/reweigh/remove sequence for one seed.

    Only mutations that are conflict-free by construction: inserts use
    live edge weights, reweighs stay positive, removes target ids the
    plan inserted earlier (workers know nothing of the plan — they just
    apply the sequence).
    """
    net, _pts = load_workload_file(workload_path)
    rng = random.Random(1000 + seed)
    edges = sorted((u, v) for u, v, _w in net.edges())
    plan: list[dict] = []
    inserted_slots: list[int] = []
    next_id = 10_000  # clear of the workload's own point ids
    for i in range(n):
        u, v = edges[rng.randrange(len(edges))]
        roll = rng.random()
        if roll < 0.2 and inserted_slots:
            plan.append({
                "kind": "remove_point",
                "point_id": inserted_slots.pop(rng.randrange(
                    len(inserted_slots)
                )),
            })
        elif roll < 0.45:
            plan.append({
                "kind": "reweigh_edge", "u": u, "v": v,
                "weight": round(rng.uniform(0.5, 9.0), 3),
            })
        else:
            plan.append({
                "kind": "insert_point", "u": u, "v": v,
                # Offsets below the smallest weight any edge can ever
                # have (seed weights >= 0.1, reweighs >= 0.5), so the
                # insert is conflict-free whatever came before it.
                "offset": round(rng.uniform(0.0, 0.09), 3),
                "point_id": next_id,
            })
            inserted_slots.append(next_id)
            next_id += 1
    return plan


def oracle_snapshot(workload_path: str, wal_path: str, eps: float) -> dict:
    """A single-threaded oracle: replay the log from scratch, snapshot."""
    net, pts = load_workload_file(workload_path)
    session = LiveSession(
        net, pts, eps=eps, wal=WriteAheadLog(wal_path, read_only=True)
    )
    try:
        session.replay_wal()
        return session.snapshot()
    finally:
        session.close()


def wait_for_live_workers(pool, n: int) -> None:
    """Poll until ``n`` workers are up (mutations broadcast only to live
    workers — sent before any spawn finishes they all arrive as replay
    catch-up, which the chaos sites deliberately skip)."""
    deadline = time.monotonic() + CONVERGE_TIMEOUT_S
    while pool.stats_snapshot()["supervisor"]["live"] < n:
        assert time.monotonic() < deadline, "workers never came up"
        time.sleep(0.05)


def wait_for_worker_epochs(pool, epoch: int) -> dict:
    """Poll until every non-degraded slot has applied ``epoch``."""
    deadline = time.monotonic() + CONVERGE_TIMEOUT_S
    while True:
        snap = pool.stats_snapshot()
        sup = snap["supervisor"]
        lagging = [
            e for i, e in enumerate(sup["worker_epochs"])
            if i not in sup["degraded"] and e < epoch
        ]
        if not lagging and len(sup["degraded"]) < sup["processes"]:
            return snap
        if time.monotonic() > deadline:
            raise AssertionError(
                f"pool never converged to epoch {epoch}: {sup}"
            )
        time.sleep(0.05)


def _assert_reaped(pids):
    for pid in pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        time.sleep(0.2)
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        raise AssertionError(f"worker pid {pid} survived close()")


# ----------------------------------------------------------------------
# Crash / torn mid-append through the session mutation path
# ----------------------------------------------------------------------
class TestCrashMidAppend:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("kind", ["crash", "torn"])
    def test_acked_mutations_survive_unacked_vanish(
        self, tmp_path, workload, seed, kind
    ):
        wal_path = str(tmp_path / f"append_{kind}_{seed}.wal")
        plan = mutation_plan(workload, seed)
        fail_at = 2 + seed  # the (fail_at)-th append dies mid-write
        net, pts = load_workload_file(workload)
        session = LiveSession(
            net, pts, eps=2.0, wal=WriteAheadLog(wal_path)
        )
        acked: list[dict] = []
        rule = FaultRule(
            "wal.append.record", kind, after=fail_at, tear_fraction=0.5
        )
        with faults.plan(rule, seed=seed):
            with pytest.raises(CrashPoint):
                for mutation in plan:
                    session.mutate(mutation)
                    acked.append(mutation)
        session.close()
        assert len(acked) == fail_at - 1
        # Recovery: exactly the acknowledged prefix, nothing else.
        recovered = WriteAheadLog(wal_path)
        assert recovered.last_seq == len(acked)
        assert [m for _s, m in recovered.records()] == acked
        recovered.close()
        # And the replayed world equals an oracle applying that prefix.
        net2, pts2 = load_workload_file(workload)
        expected = LiveSession(net2, pts2, eps=2.0)
        for mutation in acked:
            expected.mutate(mutation)
        assert oracle_snapshot(workload, wal_path, 2.0) == \
            expected.snapshot()
        expected.close()


# ----------------------------------------------------------------------
# Kill mid-apply / mid-replay, single process
# ----------------------------------------------------------------------
class TestKillSingleProcess:
    def test_kill_mid_apply_is_rebuilt_by_replay(self, tmp_path, workload):
        """A kill lands after the fsync but before the in-memory apply:
        the mutation is durable-but-unacknowledged and replay restores
        it — nothing acknowledged is lost, nothing durable is dropped."""
        wal_path = str(tmp_path / "apply_kill.wal")
        plan = mutation_plan(workload, 0)
        net, pts = load_workload_file(workload)
        session = LiveSession(net, pts, eps=2.0, wal=WriteAheadLog(wal_path))
        rule = FaultRule("live.apply", "kill", after=3)
        applied = 0
        with faults.plan(rule, seed=0):
            with pytest.raises(WorkerKilled):
                for mutation in plan:
                    session.mutate(mutation)
                    applied += 1
        session.close()
        assert applied == 2
        # The third mutation hit the log before the kill ...
        with WriteAheadLog(wal_path, read_only=True) as wal:
            assert wal.last_seq == 3
        # ... and a replayed successor world contains it.
        net2, pts2 = load_workload_file(workload)
        expected = LiveSession(net2, pts2, eps=2.0)
        for mutation in plan[:3]:
            expected.mutate(mutation)
        assert oracle_snapshot(workload, wal_path, 2.0) == \
            expected.snapshot()
        expected.close()

    def test_kill_mid_replay_retries_idempotently(self, tmp_path, workload):
        wal_path = str(tmp_path / "replay_kill.wal")
        plan = mutation_plan(workload, 1)
        net, pts = load_workload_file(workload)
        writer = LiveSession(net, pts, eps=2.0, wal=WriteAheadLog(wal_path))
        for mutation in plan:
            writer.mutate(mutation)
        expected = writer.snapshot()
        writer.close()
        net2, pts2 = load_workload_file(workload)
        replica = LiveSession(
            net2, pts2, eps=2.0, wal=WriteAheadLog(wal_path, read_only=True)
        )
        rule = FaultRule("wal.replay.record", "kill", after=4)
        with faults.plan(rule, seed=0):
            with pytest.raises(WorkerKilled):
                replica.replay_wal()
        assert replica.epoch == 3
        # The retry resumes from the epoch; already-applied records are
        # no-op acks, so the second pass lands on the same world.
        replica.replay_wal()
        assert replica.snapshot() == expected
        replica.close()


# ----------------------------------------------------------------------
# The supervised pool under kill chaos (acceptance)
# ----------------------------------------------------------------------
class TestPoolKillMidApply:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_pool_converges_bit_identical_to_oracle(
        self, tmp_path, workload, seed
    ):
        """3 worker processes, seeded SIGKILLs mid-apply: every death is
        restarted through WAL replay + catch-up, the pool converges to
        the supervisor's epoch, and every worker's snapshot is
        bit-identical to a single-threaded oracle replaying the log."""
        wal_path = str(tmp_path / f"pool_seed{seed}.wal")
        plan = mutation_plan(workload, seed, n=10)
        rule = FaultRule("live.apply", "kill", after=3 + seed, times=None)
        pool = SupervisedPool(
            workload, processes=3, wal_path=wal_path, live_eps=2.0,
            fault_rules=(rule,), fault_seed=seed,
            backoff_base_s=0.01, backoff_cap_s=0.05, max_restarts=8,
        )
        try:
            wait_for_live_workers(pool, 3)
            acks = [
                pool.call({"op": "mutate", "mutation": m}) for m in plan
            ]
            assert [a["epoch"] for a in acks] == list(range(1, len(plan) + 1))
            snap = wait_for_worker_epochs(pool, len(plan))
            sup = snap["supervisor"]
            # Apply-frame deaths carry no in-flight request, so they show
            # up as slot restarts rather than request-attributed deaths.
            assert sup["restarts"] >= 1, "no kill fired; dead sweep"
            assert snap["epoch"] == len(plan)
            assert snap["wal"]["last_seq"] == len(plan)
            oracle = pool.session.snapshot()
            # Each snapshot is answered by some worker process; several
            # calls cover the pool, and all must match the oracle exactly.
            for _ in range(6):
                assert pool.call({"op": "snapshot"}) == oracle
        finally:
            closed = pool.close()
        assert closed, "close() left a worker running"
        _assert_reaped(pool.spawned_pids)
        # The durable log alone rebuilds the same world.
        replayed = oracle_snapshot(workload, wal_path, 2.0)
        assert replayed == oracle
        assert replayed["epoch"] == len(plan)
        # CI uploads the per-seed mutation log as the sweep artifact.
        artifact = os.environ.get("REPRO_WAL_ARTIFACT")
        if artifact:
            shutil.copyfile(wal_path, f"{artifact}_seed{seed}.wal")
            with open(f"{artifact}_seed{seed}.json", "w",
                      encoding="utf-8") as fh:
                json.dump(
                    {"seed": seed, "plan": plan, "snapshot": oracle,
                     "supervisor": sup},
                    fh, indent=1, sort_keys=True, default=str,
                )

    def test_restarted_pool_replays_to_the_logged_epoch(
        self, tmp_path, workload
    ):
        """Crash-consistent pool restart: a second pool over the same log
        starts at the logged epoch with the identical clustering."""
        wal_path = str(tmp_path / "restart.wal")
        plan = mutation_plan(workload, 2, n=6)
        pool = SupervisedPool(
            workload, processes=2, wal_path=wal_path, live_eps=2.0,
        )
        try:
            for m in plan:
                pool.call({"op": "mutate", "mutation": m})
            before = pool.session.snapshot()
        finally:
            assert pool.close()
        pool2 = SupervisedPool(
            workload, processes=2, wal_path=wal_path, live_eps=2.0,
        )
        try:
            assert pool2.session.epoch == len(plan)
            assert pool2.session.snapshot() == before
            wait_for_worker_epochs(pool2, len(plan))
            assert pool2.call({"op": "snapshot"}) == before
            # The log stays writable: mutations continue past the replay.
            ack = pool2.call({"op": "mutate", "mutation": {
                "kind": "insert_point", "u": plan[0]["u"],
                "v": plan[0]["v"], "offset": 0.0, "point_id": 77_000,
            }})
            assert ack["epoch"] == len(plan) + 1
        finally:
            assert pool2.close()
        _assert_reaped(pool.spawned_pids + pool2.spawned_pids)


class TestPoolKillMidReplay:
    def test_degrade_then_recover(self, tmp_path, workload):
        """Workers that die mid-replay can never report ready, so the
        pool degrades — it never answers from a stale world — and a
        later pool over the same intact log recovers completely."""
        wal_path = str(tmp_path / "midreplay.wal")
        plan = mutation_plan(workload, 0, n=6)
        net, pts = load_workload_file(workload)
        writer = LiveSession(net, pts, eps=2.0, wal=WriteAheadLog(wal_path))
        for m in plan:
            writer.mutate(m)
        expected = writer.snapshot()
        writer.close()
        rule = FaultRule("wal.replay.record", "kill", after=2, times=None)
        pool = SupervisedPool(
            workload, processes=2, wal_path=wal_path, live_eps=2.0,
            fault_rules=(rule,), fault_seed=0,
            backoff_base_s=0.01, backoff_cap_s=0.02, max_restarts=1,
        )
        try:
            # Every spawn dies replaying record 2; both slots exhaust
            # their storm breaker and retire.
            deadline = time.monotonic() + CONVERGE_TIMEOUT_S
            while True:
                sup = pool.stats_snapshot()["supervisor"]
                if len(sup["degraded"]) == sup["processes"]:
                    break
                assert time.monotonic() < deadline, sup
                time.sleep(0.05)
            # No worker ever served: a query is shed typed, not answered
            # from a half-replayed world.
            with pytest.raises(Overloaded):
                pool.call({"op": "snapshot"})
            # The supervisor's own durable oracle still acknowledges.
            ack = pool.call({"op": "mutate", "mutation": {
                "kind": "insert_point", "u": plan[0]["u"],
                "v": plan[0]["v"], "offset": 0.0, "point_id": 88_000,
            }})
            assert ack["epoch"] == len(plan) + 1
        finally:
            assert pool.close()
        # Same log, no faults: full recovery including the extra record.
        pool2 = SupervisedPool(
            workload, processes=2, wal_path=wal_path, live_eps=2.0,
        )
        try:
            assert pool2.session.epoch == len(plan) + 1
            wait_for_worker_epochs(pool2, len(plan) + 1)
            snap = pool2.call({"op": "snapshot"})
            assert snap["epoch"] == len(plan) + 1
            assert snap["num_points"] == expected["num_points"] + 1
        finally:
            assert pool2.close()
        _assert_reaped(pool2.spawned_pids)
