"""Tests for data-driven eps/delta estimation."""

from __future__ import annotations

import math

import pytest

from repro.core.epslink import EpsLink
from repro.datagen import ClusterSpec, generate_clustered_points, grid_city, suggest_eps
from repro.datagen.clusters import well_separated_seed_edges
from repro.eval.metrics import adjusted_rand_index
from repro.eval.params import estimate_delta, estimate_eps, knn_distance_sample
from repro.exceptions import ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet


@pytest.fixture(scope="module")
def clustered_workload():
    network = grid_city(18, 18, removal=0.1, seed=21)
    spec = ClusterSpec(k=4, s_init=0.02, outlier_fraction=0.02)
    seeds = well_separated_seed_edges(network, 4, seed=22)
    points = generate_clustered_points(network, 600, spec, seed=23, seed_edges=seeds)
    return network, points, spec


class TestKnnDistanceSample:
    def test_sorted_and_sized(self, clustered_workload):
        network, points, _ = clustered_workload
        sample = knn_distance_sample(network, points, k=1, sample_size=50, seed=1)
        assert len(sample) == 50
        assert sample == sorted(sample)
        assert all(d >= 0 for d in sample)

    def test_small_point_set_uses_all(self, small_network, small_points):
        sample = knn_distance_sample(small_network, small_points, k=1, sample_size=100)
        assert len(sample) == 4

    def test_unreachable_neighbors_are_inf(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5)
        ps.add(3, 4, 0.5)
        sample = knn_distance_sample(net, ps, k=1)
        assert all(math.isinf(d) for d in sample)

    def test_empty_point_set(self, small_network):
        assert knn_distance_sample(small_network, PointSet(small_network)) == []

    def test_validation(self, small_network, small_points):
        with pytest.raises(ParameterError):
            knn_distance_sample(small_network, small_points, k=0)
        with pytest.raises(ParameterError):
            knn_distance_sample(small_network, small_points, sample_size=0)


class TestEstimateEps:
    def test_estimated_eps_recovers_clusters(self, clustered_workload):
        """The estimate must land in the window that separates intra-cluster
        gaps (<= 1.5 * s_init * F) from the inter-cluster distances."""
        network, points, spec = clustered_workload
        eps = estimate_eps(network, points, min_pts=2, quantile=0.90, seed=3)
        truth = {p.point_id: p.label for p in points}
        result = EpsLink(network, points, eps=eps, min_sup=3).run()
        ari = adjusted_rand_index(truth, dict(result.assignment), noise="drop")
        assert ari > 0.9

    def test_estimate_scales_with_density(self, clustered_workload):
        network, points, spec = clustered_workload
        eps = estimate_eps(network, points, seed=3)
        # Within an order of magnitude of the generator's known answer.
        known = suggest_eps(spec)
        assert known / 10 < eps < known * 10

    def test_validation(self, clustered_workload):
        network, points, _ = clustered_workload
        with pytest.raises(ParameterError):
            estimate_eps(network, points, quantile=0.0)
        with pytest.raises(ParameterError):
            estimate_eps(network, points, min_pts=1)

    def test_all_isolated_raises(self):
        net = SpatialNetwork.from_edge_list([(1, 2, 1.0), (3, 4, 1.0)])
        ps = PointSet(net)
        ps.add(1, 2, 0.5)
        ps.add(3, 4, 0.5)
        with pytest.raises(ParameterError):
            estimate_eps(net, ps)


class TestEstimateDelta:
    def test_delta_below_eps(self, clustered_workload):
        network, points, _ = clustered_workload
        delta = estimate_delta(network, points, seed=5)
        eps = estimate_eps(network, points, seed=5)
        assert 0 < delta < eps

    def test_delta_preserves_cluster_recovery(self, clustered_workload):
        """Single-Link with the estimated delta still recovers the planted
        clusters when cut at the estimated eps."""
        from repro.core.singlelink import SingleLink

        network, points, spec = clustered_workload
        delta = estimate_delta(network, points, seed=5)
        eps = max(estimate_eps(network, points, quantile=0.90, seed=5), delta)
        dendrogram = SingleLink(network, points, delta=delta).build_dendrogram()
        cut = dendrogram.cut_distance(eps)
        linked = EpsLink(network, points, eps=eps).run()
        assert cut.as_partition() == linked.as_partition()
