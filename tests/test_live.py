"""Tests for the live-mutation session and its wire surface.

Covers the session contract (validation before logging, idempotent
gap-checked apply, epoch monotonicity, bit-comparable snapshots), the
precise staleness wiring (per-region distance-cache invalidation, index
degrade on reweigh), and the threaded :class:`QueryService` answering the
``mutate`` / ``subscribe_epoch`` / ``snapshot`` ops.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.epslink import EpsLink
from repro.exceptions import (
    Cancelled,
    DeadlineExceeded,
    MutationConflict,
    ParameterError,
    ReplayError,
)
from repro.live import LiveSession, WriteAheadLog
from repro.live.mutate import validate_mutation
from repro.network.augmented import AugmentedView
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.perf import DistanceAccelerator, DistanceCache
from repro.serve import LIVE_OPS, QueryService


def make_network() -> SpatialNetwork:
    # A 4-node path plus a chord, long enough that eps=3 clusters locally.
    net = SpatialNetwork()
    for i, (x, y) in enumerate([(0, 0), (10, 0), (20, 0), (30, 0)], start=1):
        net.add_node(i, float(x), float(y))
    net.add_edge(1, 2, 10.0)
    net.add_edge(2, 3, 10.0)
    net.add_edge(3, 4, 10.0)
    net.add_edge(1, 4, 35.0)
    return net


def make_session(tmp_path, *, eps: float = 3.0, name: str = "m.wal"):
    wal = WriteAheadLog(str(tmp_path / name))
    return LiveSession(make_network(), eps=eps, wal=wal)


def insert(u: int, v: int, offset: float, **extra) -> dict:
    return {"kind": "insert_point", "u": u, "v": v, "offset": offset, **extra}


# ----------------------------------------------------------------------
# Validation and conflict detection
# ----------------------------------------------------------------------
class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ParameterError):
            validate_mutation({"kind": "teleport_point"})

    def test_not_an_object(self):
        with pytest.raises(ParameterError):
            validate_mutation(["insert_point"])

    def test_negative_offset(self):
        with pytest.raises(ParameterError):
            validate_mutation(insert(1, 2, -0.5))

    def test_non_finite_weight(self):
        with pytest.raises(ParameterError):
            validate_mutation(
                {"kind": "reweigh_edge", "u": 1, "v": 2, "weight": float("inf")}
            )

    def test_zero_weight(self):
        with pytest.raises(ParameterError):
            validate_mutation(
                {"kind": "reweigh_edge", "u": 1, "v": 2, "weight": 0.0}
            )

    def test_bool_is_not_int(self):
        with pytest.raises(ParameterError):
            validate_mutation({"kind": "remove_point", "point_id": True})

    def test_unknown_keys_dropped(self):
        canonical = validate_mutation(insert(1, 2, 1.0, junk="x"))
        assert "junk" not in canonical

    def test_conflict_unknown_edge(self, tmp_path):
        session = make_session(tmp_path)
        with pytest.raises(MutationConflict):
            session.mutate(insert(1, 3, 1.0))
        session.close()

    def test_conflict_offset_beyond_edge(self, tmp_path):
        session = make_session(tmp_path)
        with pytest.raises(MutationConflict):
            session.mutate(insert(1, 2, 11.0))
        session.close()

    def test_conflict_duplicate_point_id(self, tmp_path):
        session = make_session(tmp_path)
        session.mutate(insert(1, 2, 1.0, point_id=7))
        with pytest.raises(MutationConflict):
            session.mutate(insert(2, 3, 1.0, point_id=7))
        session.close()

    def test_conflict_remove_missing(self, tmp_path):
        session = make_session(tmp_path)
        with pytest.raises(MutationConflict):
            session.mutate({"kind": "remove_point", "point_id": 99})
        session.close()

    def test_conflicts_never_reach_the_log(self, tmp_path):
        """A doomed mutation must not be logged: replay applies every
        record unconditionally, so the log may only hold clean applies."""
        session = make_session(tmp_path)
        session.mutate(insert(1, 2, 1.0))
        for doomed in (
            insert(1, 3, 1.0),                       # no such edge
            insert(1, 2, 99.0),                      # offset beyond edge
            {"kind": "remove_point", "point_id": 42},  # no such point
        ):
            with pytest.raises(MutationConflict):
                session.mutate(doomed)
        assert session.wal.last_seq == 1
        assert session.epoch == 1
        session.close()


# ----------------------------------------------------------------------
# The session mutation path
# ----------------------------------------------------------------------
class TestLiveSession:
    def test_mutate_acks_after_log(self, tmp_path):
        session = make_session(tmp_path)
        ack = session.mutate(insert(1, 2, 1.0))
        assert ack["epoch"] == 1
        assert ack["applied"] is True
        assert "point_id" in ack
        assert session.wal.last_seq == 1
        session.close()

    def test_epoch_monotone(self, tmp_path):
        session = make_session(tmp_path)
        epochs = [
            session.mutate(insert(1, 2, float(i)))["epoch"]
            for i in range(1, 5)
        ]
        assert epochs == [1, 2, 3, 4]
        assert session.epoch == 4
        session.close()

    def test_apply_is_idempotent(self, tmp_path):
        session = make_session(tmp_path)
        session.mutate(insert(1, 2, 1.0, point_id=0))
        before = session.snapshot()
        # Re-delivering an already-applied sequence number is a no-op ack.
        ack = session.apply(1, insert(1, 2, 1.0, point_id=0))
        assert ack == {"epoch": 1, "applied": False}
        assert session.snapshot() == before
        session.close()

    def test_apply_gap_raises(self, tmp_path):
        session = make_session(tmp_path)
        with pytest.raises(ReplayError):
            session.apply(3, insert(1, 2, 1.0))
        session.close()

    def test_read_only_wal_cannot_mutate(self, tmp_path):
        writer = make_session(tmp_path)
        writer.mutate(insert(1, 2, 1.0))
        path = writer.wal.path
        writer.close()
        reader = LiveSession(
            make_network(), eps=3.0,
            wal=WriteAheadLog(path, read_only=True),
        )
        with pytest.raises(ParameterError):
            reader.mutate(insert(1, 2, 2.0))
        reader.close()

    def test_replay_reproduces_snapshot(self, tmp_path):
        writer = make_session(tmp_path)
        writer.mutate(insert(1, 2, 1.0))
        writer.mutate(insert(1, 2, 2.0))
        writer.mutate(insert(2, 3, 5.0))
        writer.mutate({"kind": "reweigh_edge", "u": 2, "v": 3, "weight": 4.0})
        writer.mutate({"kind": "remove_point", "point_id": 1})
        expected = writer.snapshot()
        path = writer.wal.path
        writer.close()
        replica = LiveSession(
            make_network(), eps=3.0,
            wal=WriteAheadLog(path, read_only=True),
        )
        assert replica.replay_wal() == 5
        assert replica.snapshot() == expected
        replica.close()

    def test_replay_to_unreachable_epoch_raises(self, tmp_path):
        writer = make_session(tmp_path)
        writer.mutate(insert(1, 2, 1.0))
        path = writer.wal.path
        writer.close()
        replica = LiveSession(
            make_network(), eps=3.0,
            wal=WriteAheadLog(path, read_only=True),
        )
        with pytest.raises(ReplayError):
            replica.replay_wal(to_seq=7)
        replica.close()

    def test_snapshot_matches_scratch_epslink(self, tmp_path):
        session = make_session(tmp_path)
        for i in range(6):
            session.mutate(insert(1 + i % 3, 2 + i % 3, 1.0 + i))
        session.mutate({"kind": "reweigh_edge", "u": 1, "v": 2, "weight": 6.0})
        scratch = EpsLink(session.network, session.points, eps=3.0).run()
        assert session.live.result().same_clustering(scratch)
        session.close()

    def test_deterministic_point_ids_across_replay(self, tmp_path):
        """Auto-assigned ids must be reproduced by replay, or the log's
        later remove_point records would target the wrong objects."""
        writer = make_session(tmp_path)
        first = writer.mutate(insert(1, 2, 1.0))["point_id"]
        second = writer.mutate(insert(2, 3, 1.0))["point_id"]
        writer.mutate({"kind": "remove_point", "point_id": first})
        path = writer.wal.path
        expected = writer.snapshot()
        writer.close()
        replica = LiveSession(
            make_network(), eps=3.0,
            wal=WriteAheadLog(path, read_only=True),
        )
        replica.replay_wal()
        assert replica.snapshot() == expected
        assert sorted(replica.points.point_ids()) == [second]
        replica.close()

    def test_mutations_since(self, tmp_path):
        session = make_session(tmp_path)
        for i in range(3):
            session.mutate(insert(1, 2, float(i)))
        tail = session.mutations_since(1)
        assert [seq for seq, _ in tail] == [2, 3]
        session.close()

    def test_wait_for_epoch_returns_when_ahead(self, tmp_path):
        session = make_session(tmp_path)
        session.mutate(insert(1, 2, 1.0))
        assert session.wait_for_epoch(0) == {"epoch": 1, "changed": True}
        session.close()

    def test_wait_for_epoch_timeout(self, tmp_path):
        session = make_session(tmp_path)
        with pytest.raises(DeadlineExceeded):
            session.wait_for_epoch(0, timeout_s=0.05)
        session.close()

    def test_wait_for_epoch_woken_by_mutation(self, tmp_path):
        session = make_session(tmp_path)
        seen = {}

        def waiter():
            seen["result"] = session.wait_for_epoch(0, timeout_s=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        session.mutate(insert(1, 2, 1.0))
        thread.join(timeout=5.0)
        assert seen["result"]["epoch"] == 1
        session.close()

    def test_shutdown_cancels_waiters(self, tmp_path):
        session = make_session(tmp_path)
        session.shutdown()
        with pytest.raises(Cancelled):
            session.wait_for_epoch(0, timeout_s=5.0)
        session.close()

    def test_stats_document(self, tmp_path):
        session = make_session(tmp_path)
        session.mutate(insert(1, 2, 1.0))
        doc = session.stats()
        assert doc["epoch"] == 1
        assert doc["wal"]["last_seq"] == 1
        assert doc["wal"]["appended"] == 1
        assert doc["wal"]["path"] == session.wal.path
        session.close()


# ----------------------------------------------------------------------
# Precise staleness: per-region cache invalidation, reweigh degrade
# ----------------------------------------------------------------------
class TestPreciseInvalidation:
    def attach_cache(self, session) -> DistanceCache:
        aug = AugmentedView(session.network, session.points)
        cache = DistanceCache(1.0)
        accel = DistanceAccelerator(aug, landmarks=0, cache_mb=0.0, cache=cache)
        session.attach(aug, accel)
        return cache

    def test_point_mutation_keeps_unaffected_pairs(self, tmp_path):
        session = make_session(tmp_path)
        a = session.mutate(insert(1, 2, 1.0))["point_id"]
        b = session.mutate(insert(2, 3, 1.0))["point_id"]
        cache = self.attach_cache(session)
        cache.put(("p2p", a, b), 10.0)
        # A third point appears elsewhere: the (a, b) distance is provably
        # unchanged and must survive the invalidation.
        session.mutate(insert(3, 4, 1.0))
        assert cache.get(("p2p", a, b)) == 10.0
        session.close()

    def test_removal_drops_touching_pairs(self, tmp_path):
        session = make_session(tmp_path)
        a = session.mutate(insert(1, 2, 1.0))["point_id"]
        b = session.mutate(insert(2, 3, 1.0))["point_id"]
        c = session.mutate(insert(3, 4, 1.0))["point_id"]
        cache = self.attach_cache(session)
        cache.put(("p2p", a, b), 10.0)
        cache.put(("p2p", b, c), 11.0)
        session.mutate({"kind": "remove_point", "point_id": c})
        assert cache.get(("p2p", a, b)) == 10.0
        assert cache.get(("p2p", b, c)) is None
        session.close()

    def test_result_set_entries_dropped_conservatively(self, tmp_path):
        session = make_session(tmp_path)
        a = session.mutate(insert(1, 2, 1.0))["point_id"]
        cache = self.attach_cache(session)
        cache.put(("range", a, 2.0), [(a, 0.0)])
        # Any insertion can add a member to any cached result set.
        session.mutate(insert(3, 4, 1.0))
        assert cache.get(("range", a, 2.0)) is None
        session.close()

    def test_reweigh_clears_everything(self, tmp_path):
        session = make_session(tmp_path)
        a = session.mutate(insert(1, 2, 1.0))["point_id"]
        b = session.mutate(insert(2, 3, 1.0))["point_id"]
        cache = self.attach_cache(session)
        cache.put(("p2p", a, b), 10.0)
        session.mutate({"kind": "reweigh_edge", "u": 3, "v": 4, "weight": 9.0})
        assert cache.get(("p2p", a, b)) is None
        session.close()

    def test_reweigh_hooks_fire_only_on_reweigh(self, tmp_path):
        session = make_session(tmp_path)
        calls: list[tuple[int, int]] = []
        session.add_reweigh_hook(lambda u, v: calls.append((u, v)))
        session.mutate(insert(1, 2, 1.0))
        assert calls == []
        session.mutate({"kind": "reweigh_edge", "u": 1, "v": 2, "weight": 8.0})
        assert calls == [(1, 2)]
        session.close()


# ----------------------------------------------------------------------
# Satellite: invalidation hooks all run, first error re-raised
# ----------------------------------------------------------------------
class TestInvalidateHookDispatch:
    def make_view(self) -> AugmentedView:
        net = make_network()
        return AugmentedView(net, PointSet(net))

    def test_raising_hook_does_not_starve_later_hooks(self):
        aug = self.make_view()
        calls: list[str] = []

        def ok_first():
            calls.append("first")

        def boom():
            calls.append("boom")
            raise RuntimeError("stand-in hook failure")

        def ok_last():
            calls.append("last")

        aug.add_invalidation_hook(ok_first)
        aug.add_invalidation_hook(boom)
        aug.add_invalidation_hook(ok_last)
        with pytest.raises(RuntimeError, match="stand-in hook failure"):
            aug.invalidate()
        assert calls == ["first", "boom", "last"]

    def test_first_error_wins(self):
        aug = self.make_view()

        def boom_a():
            raise RuntimeError("error A")

        def boom_b():
            raise ValueError("error B")

        aug.add_invalidation_hook(boom_a)
        aug.add_invalidation_hook(boom_b)
        with pytest.raises(RuntimeError, match="error A"):
            aug.invalidate()

    def test_refresh_does_not_fire_hooks(self):
        aug = self.make_view()
        calls: list[str] = []
        aug.add_invalidation_hook(lambda: calls.append("hook"))
        aug.refresh()
        assert calls == []


# ----------------------------------------------------------------------
# The threaded QueryService live surface
# ----------------------------------------------------------------------
class TestQueryServiceLive:
    def make_service(self, tmp_path, **kwargs):
        wal = WriteAheadLog(str(tmp_path / "svc.wal"))
        net = make_network()
        session = LiveSession(net, eps=3.0, wal=wal)
        svc = QueryService(
            net, session.points, workers=2, session=session, **kwargs
        )
        return svc, session

    def test_live_ops_refused_without_session(self):
        net = make_network()
        with QueryService(net, PointSet(net), workers=1) as svc:
            for op in sorted(LIVE_OPS):
                with pytest.raises(ParameterError):
                    svc.call({"op": op, "mutation": insert(1, 2, 1.0)})

    def test_mutate_snapshot_subscribe(self, tmp_path):
        svc, session = self.make_service(tmp_path)
        try:
            ack = svc.call({"op": "mutate", "mutation": insert(1, 2, 1.0)})
            assert ack["epoch"] == 1 and ack["applied"] is True
            snap = svc.call({"op": "snapshot"})
            assert snap["epoch"] == 1
            assert snap["num_points"] == 1
            sub = svc.call({"op": "subscribe_epoch", "from_epoch": 0})
            assert sub == {"epoch": 1, "changed": True}
        finally:
            svc.close()
            session.close()

    def test_subscribe_epoch_deadline(self, tmp_path):
        svc, session = self.make_service(tmp_path)
        try:
            with pytest.raises(DeadlineExceeded):
                svc.call({
                    "op": "subscribe_epoch", "from_epoch": 0,
                    "timeout_ms": 50,
                })
        finally:
            svc.close()
            session.close()

    def test_subscribe_epoch_bad_from_epoch(self, tmp_path):
        svc, session = self.make_service(tmp_path)
        try:
            with pytest.raises(ParameterError):
                svc.call({"op": "subscribe_epoch", "from_epoch": "zero"})
        finally:
            svc.close()
            session.close()

    def test_queries_see_mutations(self, tmp_path):
        svc, session = self.make_service(tmp_path)
        try:
            a = svc.call(
                {"op": "mutate", "mutation": insert(1, 2, 1.0)}
            )["point_id"]
            svc.call({"op": "mutate", "mutation": insert(1, 2, 2.0)})
            hits = svc.call({"op": "range", "point_id": a, "eps": 2.0})
            assert sorted(pid for pid, _ in hits) == [0, 1]
        finally:
            svc.close()
            session.close()

    def test_stats_carries_epoch_and_wal_health(self, tmp_path):
        svc, session = self.make_service(tmp_path)
        try:
            svc.call({"op": "mutate", "mutation": insert(1, 2, 1.0)})
            stats = svc.call({"op": "stats"})
            assert stats["epoch"] == 1
            assert stats["wal"]["last_seq"] == 1
            assert stats["gauges"].get("serve.epoch") == 1
        finally:
            svc.close()
            session.close()

    def test_reweigh_degrades_built_index(self, tmp_path):
        svc, session = self.make_service(tmp_path, landmarks=2)
        try:
            assert svc.index_source == "built"
            a = svc.call(
                {"op": "mutate", "mutation": insert(1, 2, 1.0)}
            )["point_id"]
            svc.call({"op": "mutate", "mutation": insert(2, 3, 5.0)})
            svc.call({
                "op": "mutate",
                "mutation": {
                    "kind": "reweigh_edge", "u": 2, "v": 3, "weight": 5.0,
                },
            })
            assert svc.index_source == "degraded"
            assert svc.index_degrade_reason is not None
            # Still serving, bit-identical to the plain path.
            hits = svc.call({"op": "knn", "point_id": a, "k": 2})
            plain = QueryService(session.network, session.points, workers=1)
            try:
                assert hits == plain.call(
                    {"op": "knn", "point_id": a, "k": 2}
                )
            finally:
                plain.close()
        finally:
            svc.close()
            session.close()

    def test_no_deadline_subscribers_do_not_starve_the_pool(self, tmp_path):
        """Parked subscribers must not occupy pool workers: with every
        worker thread blocked in a no-deadline wait, the mutate that
        would advance the epoch could never be dequeued — permanent
        deadlock.  Subscriptions ride a dedicated waiter thread instead."""
        svc, session = self.make_service(tmp_path)  # workers=2
        try:
            subs = [
                svc.submit({"op": "subscribe_epoch", "from_epoch": 0})
                for _ in range(4)
            ]
            ack = svc.call({"op": "mutate", "mutation": insert(1, 2, 1.0)},
                           timeout_s=10.0)
            assert ack["epoch"] == 1
            for future in subs:
                assert future.result(timeout=10.0) == {
                    "epoch": 1, "changed": True,
                }
        finally:
            svc.close()
            session.close()

    def test_close_cancels_parked_subscribers(self, tmp_path):
        svc, session = self.make_service(tmp_path)
        future = svc.submit({"op": "subscribe_epoch", "from_epoch": 0})
        svc.close()
        session.close()
        with pytest.raises(Cancelled):
            future.result(timeout=5.0)
