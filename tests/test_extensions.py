"""Tests for the Section 6 extensions: weight measures, time-dependent
weights, and combined networks with transition edges."""

from __future__ import annotations

import pytest

from repro.core.epslink import EpsLink
from repro.exceptions import InvalidPositionError, ParameterError
from repro.network.graph import SpatialNetwork
from repro.network.multinet import (
    Transition,
    combine_networks,
    split_edge,
)
from repro.network.points import PointSet
from repro.network.timedep import (
    TimeDependentNetwork,
    WeightProfile,
    rush_hour_profile,
    time_parameterized_clusters,
)
from repro.network.weights import (
    apply_measure,
    combine_measures,
    euclidean_measure,
    toll_measure,
    travel_time_measure,
)


class TestWeightMeasures:
    def test_euclidean_measure(self, small_network):
        m = euclidean_measure(small_network)
        # Edge (1,2): nodes at (0,1) and (2,1) -> distance 2.
        assert m[(1, 2)] == pytest.approx(2.0)
        assert set(m) == {(u, v) for u, v, _ in small_network.edges()}

    def test_travel_time_constant_speed(self, small_network):
        m = travel_time_measure(small_network, speed=2.0)
        assert m[(1, 2)] == pytest.approx(1.0)  # length 2 / speed 2

    def test_travel_time_per_edge_speed(self, small_network):
        m = travel_time_measure(
            small_network, speed=lambda u, v, w: 4.0 if (u, v) == (1, 2) else 1.0
        )
        assert m[(1, 2)] == pytest.approx(0.5)
        assert m[(2, 3)] == pytest.approx(3.0)

    def test_travel_time_bad_speed(self, small_network):
        with pytest.raises(ParameterError):
            travel_time_measure(small_network, speed=lambda u, v, w: 0.0)

    def test_toll_measure(self, small_network):
        m = toll_measure(small_network, {(2, 1): 5.0})
        assert m[(1, 2)] == pytest.approx(5.0)
        assert m[(2, 3)] == pytest.approx(1e-9)

    def test_toll_validation(self, small_network):
        with pytest.raises(ParameterError):
            toll_measure(small_network, {(1, 5): 2.0})  # no such edge
        with pytest.raises(ParameterError):
            toll_measure(small_network, {(1, 2): -1.0})

    def test_combine_weighted_sum(self, small_network):
        dist = euclidean_measure(small_network)
        time = travel_time_measure(small_network, speed=2.0)
        combined = combine_measures(small_network, [dist, time], [1.0, 10.0])
        # Edge (1,2): 2.0 * 1 + 1.0 * 10 = 12.
        assert combined.edge_weight(1, 2) == pytest.approx(12.0)

    def test_combine_custom_aggregator(self, small_network):
        dist = euclidean_measure(small_network)
        time = travel_time_measure(small_network, speed=0.5)
        combined = combine_measures(small_network, [dist, time], aggregator=max)
        assert combined.edge_weight(1, 2) == pytest.approx(4.0)  # max(2, 4)

    def test_apply_single_measure(self, small_network):
        time = travel_time_measure(small_network, speed=2.0)
        net = apply_measure(small_network, time)
        assert net.edge_weight(2, 3) == pytest.approx(1.5)
        assert net.num_edges == small_network.num_edges

    def test_combine_validation(self, small_network):
        with pytest.raises(ParameterError):
            combine_measures(small_network, [])
        with pytest.raises(ParameterError):
            combine_measures(
                small_network, [euclidean_measure(small_network)], [1.0, 2.0]
            )
        with pytest.raises(ParameterError):
            combine_measures(small_network, [{(1, 2): 1.0}])  # missing edges

    def test_clustering_changes_with_measure(self):
        """The paper's point: different measures, different clusters."""
        net = SpatialNetwork.from_edge_list(
            [(1, 2, 1.0), (2, 3, 10.0), (3, 4, 1.0)]
        )
        ps = PointSet(net)
        ps.add(1, 2, 0.5, point_id=0)
        ps.add(2, 3, 5.0, point_id=1)
        ps.add(3, 4, 0.5, point_id=2)
        by_distance = EpsLink(net, ps, eps=2.0).run()
        assert by_distance.num_clusters == 3  # the long middle edge separates
        # A "travel time" measure where the middle edge is a fast highway.
        fast = apply_measure(net, {(1, 2): 1.0, (2, 3): 1.0, (3, 4): 1.0})
        ps_fast = PointSet(fast)
        ps_fast.add(1, 2, 0.5, point_id=0)
        ps_fast.add(2, 3, 0.5, point_id=1)
        ps_fast.add(3, 4, 0.5, point_id=2)
        by_time = EpsLink(fast, ps_fast, eps=2.0).run()
        assert by_time.num_clusters == 1


class TestWeightProfile:
    def test_constant_profile(self):
        p = WeightProfile([(0.0, 5.0)])
        assert p(0) == 5.0
        assert p(13.7) == 5.0

    def test_interpolation(self):
        p = WeightProfile([(0.0, 1.0), (12.0, 3.0)], period=24.0)
        assert p(0.0) == pytest.approx(1.0)
        assert p(6.0) == pytest.approx(2.0)
        assert p(12.0) == pytest.approx(3.0)
        # Wraps: 18.0 is halfway from (12, 3) back to (24 -> 0, 1).
        assert p(18.0) == pytest.approx(2.0)

    def test_periodicity(self):
        p = WeightProfile([(0.0, 1.0), (12.0, 3.0)], period=24.0)
        assert p(6.0) == pytest.approx(p(30.0))
        assert p(-18.0) == pytest.approx(p(6.0))

    @pytest.mark.parametrize("bad", [
        {"breakpoints": []},
        {"breakpoints": [(0.0, 1.0)], "period": 0.0},
        {"breakpoints": [(0.0, 1.0), (0.0, 2.0)]},
        {"breakpoints": [(25.0, 1.0)]},
        {"breakpoints": [(0.0, -1.0)]},
    ])
    def test_validation(self, bad):
        with pytest.raises(ParameterError):
            WeightProfile(**bad)

    def test_rush_hour_shape(self):
        p = rush_hour_profile(10.0, peak_factor=3.0, peaks=(8.0,), peak_width=2.0)
        assert p(8.0) == pytest.approx(30.0)
        assert p(6.0) == pytest.approx(10.0)
        assert p(10.0) == pytest.approx(10.0)
        assert p(7.0) == pytest.approx(20.0)
        assert p(0.0) == pytest.approx(10.0)


class TestTimeDependentNetwork:
    @pytest.fixture
    def tdn(self, small_network):
        profile = WeightProfile([(0.0, 2.0), (12.0, 8.0)], period=24.0)
        return TimeDependentNetwork(small_network, {(1, 2): profile})

    def test_weight_at(self, tdn):
        assert tdn.weight_at(1, 2, 0.0) == pytest.approx(2.0)
        assert tdn.weight_at(1, 2, 12.0) == pytest.approx(8.0)
        assert tdn.weight_at(2, 3, 12.0) == pytest.approx(3.0)  # unprofiled

    def test_snapshot(self, tdn, small_network):
        snap = tdn.snapshot(12.0)
        assert snap.edge_weight(1, 2) == pytest.approx(8.0)
        assert snap.edge_weight(2, 3) == pytest.approx(3.0)
        # The base network is untouched.
        assert small_network.edge_weight(1, 2) == pytest.approx(2.0)

    def test_unknown_profiled_edge(self, small_network):
        with pytest.raises(ParameterError):
            TimeDependentNetwork(small_network, {(1, 5): WeightProfile([(0, 1.0)])})

    def test_time_parameterized_clusters(self, small_network):
        """Clusters change with the time of day (Section 6)."""
        ps = PointSet(small_network)
        ps.add(1, 2, 0.2, point_id=0)
        ps.add(1, 2, 1.8, point_id=1)
        profile = WeightProfile([(0.0, 2.0), (12.0, 20.0)], period=24.0)
        tdn = TimeDependentNetwork(small_network, {(1, 2): profile})
        results = time_parameterized_clusters(
            tdn, ps, times=[0.0, 12.0],
            clusterer_factory=lambda net, pts: EpsLink(net, pts, eps=2.5),
        )
        assert results[0.0].num_clusters == 1  # off-peak: 1.6 apart
        assert results[12.0].num_clusters == 2  # rush hour: 16 apart


class TestSplitEdge:
    def test_split_preserves_total_weight(self, small_network):
        new = split_edge(small_network, 1, 2, 0.5)
        assert not small_network.has_edge(1, 2)
        assert small_network.edge_weight(1, new) == pytest.approx(0.5)
        assert small_network.edge_weight(new, 2) == pytest.approx(1.5)

    def test_split_interpolates_coords(self, small_network):
        new = split_edge(small_network, 1, 2, 1.0)
        x, y = small_network.node_coords(new)
        assert (x, y) == pytest.approx((1.0, 1.0))

    def test_split_with_explicit_id(self, small_network):
        new = split_edge(small_network, 1, 2, 0.5, new_node=77)
        assert new == 77

    def test_split_validation(self, small_network):
        with pytest.raises(InvalidPositionError):
            split_edge(small_network, 1, 2, 0.0)
        with pytest.raises(InvalidPositionError):
            split_edge(small_network, 1, 2, 2.0)
        with pytest.raises(ParameterError):
            split_edge(small_network, 1, 2, 0.5, new_node=3)


class TestCombineNetworks:
    @pytest.fixture
    def road_and_canal(self):
        road = SpatialNetwork.from_edge_list(
            [(0, 1, 1.0), (1, 2, 1.0)], name="road"
        )
        canal = SpatialNetwork.from_edge_list([(0, 1, 2.0)], name="canal")
        return road, canal

    def test_namespacing(self, road_and_canal):
        road, canal = road_and_canal
        combo = combine_networks(
            [road, canal],
            [Transition(0, 2, 1, 0, weight=0.5)],
        )
        assert combo.network.num_nodes == 5
        # Road edges intact, canal edges shifted by 3.
        assert combo.network.edge_weight(0, 1) == pytest.approx(1.0)
        assert combo.network.edge_weight(3, 4) == pytest.approx(2.0)
        assert combo.global_node(1, 0) == 3

    def test_transition_edge_connects(self, road_and_canal):
        from repro.network.dijkstra import node_distance

        road, canal = road_and_canal
        combo = combine_networks(
            [road, canal], [Transition(0, 2, 1, 0, weight=0.5)]
        )
        # road node 0 -> road node 2 (2.0) -> transition (0.5) -> canal end (2.0)
        assert node_distance(combo.network, 0, combo.global_node(1, 1)) == (
            pytest.approx(4.5)
        )

    def test_clusters_span_networks(self, road_and_canal):
        road, canal = road_and_canal
        combo = combine_networks(
            [road, canal], [Transition(0, 2, 1, 0, weight=0.1)]
        )
        road_pts = PointSet(road)
        road_pts.add(1, 2, 0.9, point_id=0)
        canal_pts = PointSet(canal)
        canal_pts.add(0, 1, 0.1, point_id=0)  # same local id as the road point
        merged = combo.merge_point_sets([road_pts, canal_pts])
        assert len(merged) == 2
        result = EpsLink(combo.network, merged, eps=0.5).run()
        # 0.1 (rest of road edge) + 0.1 (pier) + 0.1 (canal) = 0.3 <= eps.
        assert result.num_clusters == 1

    def test_transition_validation(self, road_and_canal):
        road, canal = road_and_canal
        with pytest.raises(ParameterError):
            combine_networks([road, canal], [Transition(0, 2, 1, 0, weight=0.0)])
        with pytest.raises(ParameterError):
            combine_networks([road, canal], [Transition(0, 99, 1, 0, weight=1.0)])
        with pytest.raises(ParameterError):
            combine_networks([road, canal], [Transition(0, 2, 5, 0, weight=1.0)])
        with pytest.raises(ParameterError):
            combine_networks([], [])
