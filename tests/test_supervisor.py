"""Tests for repro.serve.supervisor: the multi-process worker pool.

Two layers of coverage, mirroring the pool's injectable seams:

* **Fake workers + VirtualClock** — scripted in-process worker handles
  drive the supervision logic (failover, poison quarantine, restart
  backoff, the storm circuit, gauge lifecycle) with zero wall-clock cost
  and fully deterministic timing.
* **Real subprocesses** — workers are actually spawned, actually
  SIGKILLed by ``kill`` fault rules at seeded execution sites, and the
  whole chaos history is asserted to be deterministic per seed,
  bit-identical to the threaded :class:`~repro.serve.QueryService`
  oracle, with every worker process reaped on close (no orphans).
"""

from __future__ import annotations

import io
import json
import os
import queue
import random
import time

import pytest

from repro import obs
from repro.exceptions import (
    Overloaded,
    PoisonRequest,
    WorkerCrashed,
)
from repro.faults import FaultRule
from repro.obs.metrics import REGISTRY
from repro.resilience import VirtualClock
from repro.serve import (
    QueryService,
    RemoteRequestError,
    SupervisedPool,
    error_name,
)
from repro.serve.frames import MAX_FRAME, read_frame, write_frame
from repro.serve.supervisor import request_fingerprint
from repro.io import workload_to_dict
from tests.conftest import make_random_connected_network, scatter_points


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(23)
    net = make_random_connected_network(rng, 30, extra_edges=10)
    pts = scatter_points(rng, net, 40)
    return net, pts


@pytest.fixture(scope="module")
def workload_path(workload, tmp_path_factory):
    net, pts = workload
    path = tmp_path_factory.mktemp("supervised") / "w.json"
    path.write_text(json.dumps(workload_to_dict(net, pts)))
    return str(path)


# ----------------------------------------------------------------------
# Frame protocol
# ----------------------------------------------------------------------
class TestFrames:
    def test_roundtrip(self):
        buf = io.BytesIO()
        docs = [{"seq": 1, "ok": True}, {"nested": {"a": [1.5, None]}}]
        for doc in docs:
            write_frame(buf, doc)
        buf.seek(0)
        assert [read_frame(buf) for _ in docs] == docs
        assert read_frame(buf) is None  # clean EOF

    def test_every_torn_stream_reads_as_death(self):
        whole = io.BytesIO()
        write_frame(whole, {"seq": 9, "result": [1, 2, 3]})
        frame = whole.getvalue()
        # Any strict prefix — torn length, torn payload — is a death,
        # never garbage and never an exception.
        for cut in range(len(frame)):
            assert read_frame(io.BytesIO(frame[:cut])) is None, cut

    def test_undecodable_payloads_read_as_death(self):
        import struct

        bad_json = b"{not json"
        buf = io.BytesIO(struct.pack(">I", len(bad_json)) + bad_json)
        assert read_frame(buf) is None
        non_dict = b"[1, 2]"
        buf = io.BytesIO(struct.pack(">I", len(non_dict)) + non_dict)
        assert read_frame(buf) is None
        # A corrupt length prefix must not trigger a giant allocation.
        buf = io.BytesIO(struct.pack(">I", MAX_FRAME + 1) + b"x" * 16)
        assert read_frame(buf) is None

    def test_oversize_write_is_refused(self):
        class NullFile:
            def write(self, data):
                return len(data)

            def flush(self):
                pass

        with pytest.raises(ValueError):
            write_frame(NullFile(), {"blob": "x" * (MAX_FRAME + 1)})


class TestFingerprint:
    def test_id_and_trace_do_not_change_the_fingerprint(self):
        base = {"op": "range", "point_id": 3, "eps": 2.0}
        fp = request_fingerprint(base)
        assert request_fingerprint({**base, "id": "r1"}) == fp
        assert request_fingerprint({**base, "trace": True, "id": 9}) == fp

    def test_different_work_differs(self):
        a = request_fingerprint({"op": "range", "point_id": 3, "eps": 2.0})
        b = request_fingerprint({"op": "range", "point_id": 4, "eps": 2.0})
        assert a != b


# ----------------------------------------------------------------------
# Scripted fake workers: deterministic supervision-logic tests
# ----------------------------------------------------------------------
class FakeWorker:
    """In-process worker handle with scripted death.

    ``should_die(request)`` decides, per dispatched request, whether this
    worker answers or dies mid-execution (recv -> None, like a SIGKILL).
    ``born_dead`` workers never produce their ready frame — the
    never-reaches-readiness restart-storm shape.
    """

    _pids = iter(range(50_000, 60_000))

    def __init__(self, should_die=None, born_dead=False):
        self.pid = next(self._pids)
        self._out: queue.Queue = queue.Queue()
        self._dead = born_dead
        self._should_die = should_die or (lambda request: False)
        if born_dead:
            self._out.put(None)
        else:
            self._out.put({"ready": True, "pid": self.pid})

    def send(self, doc):
        if self._dead:
            raise OSError("broken pipe")
        if doc.get("ping"):
            self._out.put({"seq": doc["seq"], "pong": True})
            return
        request = doc["request"]
        if self._should_die(request):
            self.kill()
            return
        self._out.put({
            "seq": doc["seq"], "ok": True,
            "result": ["echo", request.get("id"), self.pid],
        })

    def recv(self):
        return self._out.get()

    def close_stdin(self):
        # A real worker retires on stdin EOF; mirror that exit.
        self._dead = True
        self._out.put(None)

    def kill(self):
        self._dead = True
        self._out.put(None)

    def join(self, timeout_s=None):
        return True

    def alive(self):
        return not self._dead


def _fake_pool(workload_path, factory, vc, **kw):
    kw.setdefault("processes", 2)
    kw.setdefault("backoff_base_s", 0.1)
    kw.setdefault("backoff_cap_s", 0.15)
    return SupervisedPool(
        workload_path, worker_factory=factory,
        clock=vc.monotonic, sleep=vc.sleep, **kw,
    )


def _wait(predicate, timeout=10.0, message="condition never held"):
    t0 = time.monotonic()
    while not predicate():
        if time.monotonic() - t0 > timeout:
            raise AssertionError(message)
        time.sleep(0.002)


class TestFakeSupervision:
    def test_happy_path_and_stats(self, workload_path):
        vc = VirtualClock()
        with _fake_pool(workload_path, lambda i: FakeWorker(), vc) as pool:
            results = [
                pool.call({"id": f"r{i}", "op": "knn", "point_id": 0, "k": 1})
                for i in range(4)
            ]
            assert all(r[0] == "echo" for r in results)
            stats = pool.call({"op": "stats"})
            assert stats["supervisor"]["processes"] == 2
            assert stats["supervisor"]["live"] == 2
            assert stats["supervisor"]["worker_deaths"] == 0

    def test_idempotent_request_fails_over_to_another_worker(
        self, workload_path
    ):
        vc = VirtualClock()
        budget = {"deaths": 1}

        def should_die(request):
            if request.get("boom") and budget["deaths"] > 0:
                budget["deaths"] -= 1
                return True
            return False

        obs.reset()
        obs.enable()
        try:
            with _fake_pool(
                workload_path, lambda i: FakeWorker(should_die), vc
            ) as pool:
                result = pool.call(
                    {"id": "f1", "op": "range", "point_id": 0, "eps": 1.0,
                     "boom": True}
                )
                assert result[0] == "echo"  # retried and answered
            counters = obs.snapshot()["counters"]
            assert counters.get("serve.supervisor.failovers") == 1
            assert counters.get("serve.supervisor.worker_deaths") == 1
            assert counters.get("serve.completed") == 1
        finally:
            obs.disable()
            obs.reset()

    def test_cluster_request_surfaces_worker_crashed(self, workload_path):
        vc = VirtualClock()
        budget = {"deaths": 1}

        def should_die(request):
            if request.get("op") == "cluster" and budget["deaths"] > 0:
                budget["deaths"] -= 1
                return True
            return False

        with _fake_pool(
            workload_path, lambda i: FakeWorker(should_die), vc
        ) as pool:
            with pytest.raises(WorkerCrashed) as exc_info:
                pool.call({"id": "c1", "op": "cluster",
                           "algorithm": "eps-link", "eps": 1.0})
            assert exc_info.value.request_id == "c1"
            # The pool recovered: the next cluster request succeeds.
            assert pool.call({"op": "cluster", "algorithm": "eps-link",
                              "eps": 1.0})[0] == "echo"

    def test_poison_request_is_quarantined(self, workload_path):
        vc = VirtualClock()

        def should_die(request):
            return bool(request.get("boom"))  # every executor dies

        obs.reset()
        obs.enable()
        try:
            with _fake_pool(
                workload_path, lambda i: FakeWorker(should_die), vc,
                max_restarts=10,
            ) as pool:
                poison = {"op": "range", "point_id": 0, "eps": 1.0,
                          "boom": True}
                # Kill #1 (failover) then kill #2 -> quarantine.
                with pytest.raises(PoisonRequest) as exc_info:
                    pool.call({"id": "p1", **poison})
                assert exc_info.value.deaths == 2
                # Same work under a different id is rejected at submission,
                # without being allowed near another worker.
                with pytest.raises(PoisonRequest):
                    pool.submit({"id": "p2", **poison})
                # Healthy requests still flow.
                assert pool.call({"op": "range", "point_id": 1,
                                  "eps": 1.0})[0] == "echo"
            counters = obs.snapshot()["counters"]
            assert counters.get("serve.supervisor.quarantined") == 1
            assert counters.get("serve.supervisor.worker_deaths") == 2
        finally:
            obs.disable()
            obs.reset()

    def test_restart_storm_backoff_degradation_and_counters(
        self, workload_path
    ):
        """Satellite: the always-crashing worker under a VirtualClock.

        With ``max_restarts=3`` / ``base=0.1`` / ``cap=0.15`` the simulated
        history is exact arithmetic: deaths at attempts 0..3, restart
        delays 0.1 / 0.15 / 0.15 (capped exponential), then the slot's
        breaker (threshold 4) trips and the slot degrades.  Every counter
        must match that history, not merely be positive.
        """
        vc = VirtualClock()
        obs.reset()
        obs.enable()
        try:
            pool = _fake_pool(
                workload_path, lambda i: FakeWorker(born_dead=True), vc,
                processes=1, max_restarts=3,
                backoff_base_s=0.1, backoff_cap_s=0.15,
                restart_window_s=5.0,
            )
            try:
                slot = pool._slots[0]
                _wait(lambda: slot.state == "dead",
                      message="slot never degraded")
                # Capped exponential spacing on the virtual clock.
                assert [e["delay_s"] for e in pool.restart_log] == [
                    0.1, 0.15, 0.15,
                ]
                assert [e["t"] for e in pool.restart_log] == pytest.approx(
                    [0.1, 0.25, 0.40]
                )
                assert [e["attempt"] for e in pool.restart_log] == [1, 2, 3]
                # The storm circuit is the slot's breaker: 4 counted
                # failures, one trip, one rejection (the restart attempt
                # that found it open and degraded the slot).
                assert slot.breaker.trips == 1
                assert slot.breaker.rejections == 1
                # Fully degraded pool sheds at submission.
                with pytest.raises(Overloaded):
                    pool.submit({"op": "range", "point_id": 0, "eps": 1.0})
                counters = obs.snapshot()["counters"]
                assert counters.get("serve.supervisor.restarts") == 3
                assert counters.get("serve.supervisor.worker_deaths") == 4
                assert counters.get("serve.supervisor.degraded") == 1
                assert counters.get("breaker.failures") == 4
                assert counters.get("breaker.trips") == 1
                assert counters.get("breaker.rejections") == 1
                assert counters.get("serve.shed") == 1
                snapshot = pool.stats_snapshot()["supervisor"]
                assert snapshot["degraded"] == [0]
                assert snapshot["live"] == 0
            finally:
                assert pool.close()
        finally:
            obs.disable()
            obs.reset()

    def test_degraded_pool_serves_on_surviving_workers(self, workload_path):
        vc = VirtualClock()
        spawned = {"n": 0}

        def factory(slot_index):
            # Slot 0's workers are all stillborn; slot 1's are healthy.
            spawned["n"] += 1
            return FakeWorker(born_dead=(slot_index == 0))

        with _fake_pool(
            workload_path, factory, vc, processes=2, max_restarts=2,
        ) as pool:
            _wait(lambda: pool._slots[0].state == "dead",
                  message="slot 0 never degraded")
            # The pool still answers on the surviving worker.
            for i in range(3):
                assert pool.call({"op": "knn", "point_id": 0,
                                  "k": 1})[0] == "echo"
            assert pool.stats_snapshot()["supervisor"]["live"] == 1

    def test_gauges_track_live_state_across_worker_restart(
        self, workload_path
    ):
        """Satellite: gauge lifecycle across a worker replacement.

        The pool's gauges must read live state after a restart, and a
        rogue re-registration by another component must be taken back
        over on the next replacement (ownership-checked at close)."""
        vc = VirtualClock()
        budget = {"deaths": 1}

        def should_die(request):
            if request.get("boom") and budget["deaths"] > 0:
                budget["deaths"] -= 1
                return True
            return False

        pool = _fake_pool(
            workload_path, lambda i: FakeWorker(should_die), vc, processes=2,
        )
        try:
            def gauge_value(name):
                return REGISTRY.read_gauges().get(name)

            _wait(lambda: gauge_value("serve.workers_live") == 2,
                  message="workers never both ready")
            # Another component steals the gauge (registration replaces).
            REGISTRY.gauge("serve.workers_live", lambda: -99)
            assert gauge_value("serve.workers_live") == -99
            # A worker dies and is replaced: the pool re-asserts its
            # gauges, so the name reads pool state again.
            pool.call({"op": "range", "point_id": 0, "eps": 1.0,
                       "boom": True})
            _wait(lambda: gauge_value("serve.workers_live") == 2,
                  message="gauge not re-registered after restart")
            assert gauge_value("serve.inflight") == 0
        finally:
            assert pool.close()
        # close() unregistered the pool's (re-registered) gauges.
        assert "serve.workers_live" not in REGISTRY.read_gauges()

    def test_hang_detection_kills_and_fails_over(self, workload_path):
        hung = {"workers": 1}

        class AbsorbingWorker(FakeWorker):
            """Absorbs every request forever instead of answering.

            Only the first worker constructed hangs; its replacement (and
            every later worker) is healthy — so the one dispatched request
            must ride the hang-SIGKILL-failover path to come back."""

            def __init__(self):
                super().__init__()
                self._absorb = hung["workers"] > 0
                if self._absorb:
                    hung["workers"] -= 1

            def send(self, doc):
                if self._absorb and "request" in doc:
                    return  # swallow it: the supervisor sees only silence
                super().send(doc)

        obs.reset()
        obs.enable()
        try:
            # Real clock here: the monitor thread sleeps real time, and a
            # VirtualClock would never age `dispatched_at`.  One slot keeps
            # the dispatch -> hang -> kill -> failover order deterministic.
            pool = SupervisedPool(
                workload_path, processes=1,
                worker_factory=lambda i: AbsorbingWorker(),
                hang_timeout_s=0.05, monitor_interval_s=0.01,
                backoff_base_s=0.001, backoff_cap_s=0.002,
            )
            try:
                result = pool.call(
                    {"id": "h1", "op": "range", "point_id": 0, "eps": 1.0}
                )
                assert result[0] == "echo"  # failed over after the SIGKILL
                counters = obs.snapshot()["counters"]
                assert counters.get("serve.supervisor.hangs", 0) >= 1
                assert counters.get("serve.supervisor.failovers") == 1
            finally:
                assert pool.close()
        finally:
            obs.disable()
            obs.reset()

    def test_every_request_one_terminal_outcome_mixed_sweep(
        self, workload_path
    ):
        vc = VirtualClock()
        calls = {"n": 0}

        def should_die(request):
            calls["n"] += 1
            return calls["n"] % 5 == 0  # every 5th dispatched request kills

        with _fake_pool(
            workload_path, lambda i: FakeWorker(should_die), vc,
            processes=2, max_restarts=50, poison_threshold=3,
        ) as pool:
            fates = []
            for i in range(30):
                req = {"id": i, "op": "range", "point_id": i % 7,
                       "eps": 1.0 + i}
                try:
                    fates.append(pool.submit(req))
                except (Overloaded, PoisonRequest) as exc:
                    fates.append(exc)
            outcomes = []
            for fate in fates:
                if isinstance(fate, BaseException):
                    outcomes.append(error_name(fate))
                else:
                    try:
                        fate.result(30)
                        outcomes.append("ok")
                    except Exception as exc:
                        outcomes.append(error_name(exc))
            assert len(outcomes) == 30
            allowed = {"ok", "Overloaded", "WorkerCrashed", "PoisonRequest"}
            assert set(outcomes) <= allowed


# ----------------------------------------------------------------------
# Real subprocesses: SIGKILL chaos, oracle identity, orphan-free close
# ----------------------------------------------------------------------
def _assert_reaped(pids):
    for pid in pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        # PID may exist as an unreaped zombie of *another* process or be
        # recycled; give the scheduler a beat, then insist.
        time.sleep(0.2)
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        raise AssertionError(f"worker pid {pid} survived close()")


class TestProcessPool:
    def test_results_bit_identical_to_threaded_oracle(
        self, workload, workload_path
    ):
        net, pts = workload
        requests = []
        for i, p in enumerate(list(pts)[:6]):
            requests.append({"id": f"r{i}", "op": "range",
                             "point_id": p.point_id, "eps": 2.5})
            requests.append({"id": f"k{i}", "op": "knn",
                             "point_id": p.point_id, "k": 4})
        requests.append({"id": "c", "op": "cluster",
                         "algorithm": "eps-link", "eps": 1.5})
        requests.append({"id": "bad", "op": "range", "point_id": 10 ** 9,
                         "eps": 1.0})
        with SupervisedPool(workload_path, processes=2) as pool, \
                QueryService(net, pts, workers=2) as svc:
            for request in requests:
                fates = []
                for tier in (pool, svc):
                    try:
                        fates.append(("ok", tier.call(dict(request))))
                    except Exception as exc:
                        fates.append((error_name(exc), str(exc)))
                # Same JSON document both ways: results equal after a
                # round-trip, and error taxonomy names match exactly.
                a, b = fates
                assert a[0] == b[0], request
                if a[0] == "ok":
                    assert json.loads(json.dumps(a[1])) == \
                        json.loads(json.dumps(b[1])), request

    def test_worker_side_bad_request_keeps_wire_taxonomy(
        self, workload_path
    ):
        with SupervisedPool(workload_path, processes=1) as pool:
            with pytest.raises(RemoteRequestError) as exc_info:
                pool.call({"op": "range", "point_id": 10 ** 9, "eps": 1.0})
            assert error_name(exc_info.value) == "BadRequest"
            with pytest.raises(RemoteRequestError) as exc_info:
                pool.call({"op": "range", "point_id": 0})  # missing eps
            assert error_name(exc_info.value) == "BadRequest"

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kill_chaos_deterministic_and_orphan_free(
        self, seed, workload, workload_path
    ):
        """The acceptance sweep: seeded SIGKILLs at a traversal site.

        One slot gives a strictly deterministic worker lineage: requests
        are dispatched sequentially to the sole worker, each fresh worker
        counts its fault hits from zero, so the request at which the
        ``after``-th ``queries.settle`` hit fires — and everything
        downstream of it — is exact.  Per seed: the outcome history is
        identical run-to-run, every request ends in exactly one terminal
        outcome, successful results are bit-identical to the threaded
        oracle, and close() reaps every worker process the run spawned."""
        net, pts = workload
        point_ids = [p.point_id for p in pts]

        def chaos_run():
            rule = FaultRule("queries.settle", kind="kill",
                             after=25 + 5 * seed, times=None)
            pool = SupervisedPool(
                workload_path, processes=1,
                fault_rules=(rule,), fault_seed=seed,
                backoff_base_s=0.01, backoff_cap_s=0.05, max_restarts=8,
            )
            history = []
            try:
                for i, pid in enumerate(point_ids[:15]):
                    request = {"id": i, "op": "range", "point_id": pid,
                               "eps": 3.0 + (seed % 3)}
                    try:
                        history.append(
                            (i, "ok", pool.call(request))
                        )
                    except Exception as exc:
                        history.append((i, error_name(exc), None))
                supervisor = pool.stats_snapshot()["supervisor"]
            finally:
                closed = pool.close()
            assert closed, "close() left a worker running"
            _assert_reaped(pool.spawned_pids)
            return history, supervisor

        first_history, first_sup = chaos_run()
        second_history, second_sup = chaos_run()
        # CI uploads the per-seed outcome history as the sweep artifact.
        artifact = os.environ.get("REPRO_SUPERVISION_HISTORY")
        if artifact:
            with open(f"{artifact}_seed{seed}.json", "w",
                      encoding="utf-8") as fh:
                json.dump(
                    {"seed": seed, "history": first_history,
                     "supervisor": first_sup},
                    fh, indent=1, sort_keys=True, default=str,
                )
        # Identical per-seed outcome history, including float payloads.
        assert first_history == second_history
        assert first_sup["worker_deaths"] == second_sup["worker_deaths"]
        assert len(first_history) == 15  # one terminal outcome each
        # The sweep actually exercised supervision.
        assert first_sup["worker_deaths"] >= 1, "no kill fired; dead sweep"
        # Survivor results match the in-process oracle bit-for-bit.
        with QueryService(net, pts, workers=1) as svc:
            for i, status, result in first_history:
                if status != "ok":
                    assert status in {"WorkerCrashed", "PoisonRequest"}
                    continue
                oracle = svc.call({"op": "range",
                                   "point_id": point_ids[i],
                                   "eps": 3.0 + (seed % 3)})
                assert json.loads(json.dumps(result)) == \
                    json.loads(json.dumps(oracle))

    def test_poison_request_quarantined_with_real_kills(
        self, workload, workload_path
    ):
        # after=20 is low enough that one whole-network range request
        # alone crosses it: the executing worker dies, the failover's
        # fresh worker dies at the same deterministic hit, and the
        # fingerprint is quarantined.
        _, pts = workload
        anchor = next(iter(pts)).point_id
        rule = FaultRule("queries.settle", kind="kill", after=20, times=None)
        pool = SupervisedPool(
            workload_path, processes=2, fault_rules=(rule,), fault_seed=0,
            backoff_base_s=0.01, backoff_cap_s=0.05, max_restarts=8,
        )
        try:
            with pytest.raises(PoisonRequest) as exc_info:
                pool.call({"id": "big", "op": "range", "point_id": anchor,
                           "eps": 10 ** 6})
            assert exc_info.value.deaths == 2
            with pytest.raises(PoisonRequest):
                pool.submit({"id": "again", "op": "range",
                             "point_id": anchor, "eps": 10 ** 6})
        finally:
            assert pool.close()
        _assert_reaped(pool.spawned_pids)

    def test_close_is_orphan_free_with_idle_workers(
        self, workload, workload_path
    ):
        _, pts = workload
        anchor = next(iter(pts)).point_id
        pool = SupervisedPool(workload_path, processes=3)
        assert pool.call({"op": "knn", "point_id": anchor, "k": 1})
        assert pool.close()
        assert len(pool.spawned_pids) == 3
        _assert_reaped(pool.spawned_pids)
