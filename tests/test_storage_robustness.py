"""Failure-injection tests for the storage layer: corrupt files, bad record
ids, and undersized configurations must fail loudly, never silently."""

from __future__ import annotations

import struct

import pytest

from repro.exceptions import PageError, StorageError, TreeError
from repro.storage.bptree import BPlusTree
from repro.storage.flatfile import RecordFile, rid_encode
from repro.storage.netstore import NetworkStore
from repro.storage.pager import BufferManager, PagedFile


class TestCorruptPagedFiles:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"GIF89a" + b"\x00" * 600)
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.db"
        path.write_bytes(b"RP")
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_corrupt_meta_length(self, tmp_path):
        path = tmp_path / "meta.db"
        with PagedFile(path, page_size=512):
            pass
        raw = bytearray(path.read_bytes())
        # Overwrite the meta-length field with an absurd value.
        struct.pack_into("<H", raw, struct.calcsize("<4sIQ"), 9999)
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            PagedFile(path)


class TestNetworkStoreRobustness:
    def test_store_requires_meta(self, tmp_path):
        path = tmp_path / "nometa.db"
        with PagedFile(path, page_size=4096):
            pass
        with pytest.raises(StorageError):
            NetworkStore(path)

    def test_reopen_after_clean_close(self, tmp_path, small_network, small_points):
        path = tmp_path / "ok.db"
        NetworkStore.build(path, small_network, small_points).close()
        # Two consecutive reopens both work (close is idempotent).
        for _ in range(2):
            with NetworkStore(path) as store:
                assert store.num_nodes == small_network.num_nodes


class TestRecordFileRobustness:
    def test_read_from_wrong_page_kind(self, tmp_path):
        """Reading a rid pointing at an overflow data page (not a slotted
        page) must fail with a PageError, not return garbage silently."""
        f = PagedFile(tmp_path / "rf.db", page_size=512)
        buf = BufferManager(f)
        rf = RecordFile(buf)
        rf.append(b"x" * 2000)  # creates overflow chain pages
        overflow_pid = f.num_pages - 1
        with pytest.raises(PageError):
            rf.read(rid_encode(overflow_pid, 5))
        buf.close()

    def test_out_of_range_page(self, tmp_path):
        f = PagedFile(tmp_path / "rf2.db", page_size=512)
        buf = BufferManager(f)
        rf = RecordFile(buf)
        rf.append(b"ok")
        with pytest.raises(PageError):
            rf.read(rid_encode(999, 0))
        buf.close()


class TestBPlusTreeRobustness:
    def test_page_too_small(self):
        class TinyFile:
            page_size = 40  # fits barely 1 entry: unusable for a B+-tree

        class TinyBuffer:
            file = TinyFile()

        with pytest.raises(TreeError):
            BPlusTree(TinyBuffer())

    def test_check_invariants_detects_corruption(self, tmp_path):
        f = PagedFile(tmp_path / "corrupt.db", page_size=512)
        buf = BufferManager(f)
        tree = BPlusTree(buf)
        for k in range(10):
            tree.insert(k, k)
        # Corrupt the leaf in place: write keys out of order.
        raw = bytearray(buf.read(tree.root_pid))
        header = struct.Struct("<BHQ")
        entry = struct.Struct("<qq")
        entry.pack_into(raw, header.size, 99, 0)  # first key now largest
        buf.write(tree.root_pid, bytes(raw))
        with pytest.raises(TreeError):
            tree.check_invariants()
        buf.close()
