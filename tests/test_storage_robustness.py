"""Failure-injection tests for the storage layer: corrupt files, bad record
ids, and undersized configurations must fail loudly, never silently."""

from __future__ import annotations

import shutil
import struct

import pytest

from repro.exceptions import PageError, ReproError, StorageError, TreeError
from repro.network.graph import SpatialNetwork
from repro.network.points import PointSet
from repro.storage.bptree import BPlusTree
from repro.storage.flatfile import RecordFile, rid_encode
from repro.storage.netstore import NetworkStore
from repro.storage.pager import CHECKSUM_BYTES, BufferManager, PagedFile
from repro.storage.verify import verify_store


class TestCorruptPagedFiles:
    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"GIF89a" + b"\x00" * 600)
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.db"
        path.write_bytes(b"RP")
        with pytest.raises(StorageError):
            PagedFile(path)

    def test_corrupt_meta_length(self, tmp_path):
        path = tmp_path / "meta.db"
        with PagedFile(path, page_size=512):
            pass
        raw = bytearray(path.read_bytes())
        # Overwrite the meta-length field with an absurd value.
        struct.pack_into("<H", raw, struct.calcsize("<4sIQ"), 9999)
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            PagedFile(path)


class TestNetworkStoreRobustness:
    def test_store_requires_meta(self, tmp_path):
        path = tmp_path / "nometa.db"
        with PagedFile(path, page_size=4096):
            pass
        with pytest.raises(StorageError):
            NetworkStore(path)

    def test_reopen_after_clean_close(self, tmp_path, small_network, small_points):
        path = tmp_path / "ok.db"
        NetworkStore.build(path, small_network, small_points).close()
        # Two consecutive reopens both work (close is idempotent).
        for _ in range(2):
            with NetworkStore(path) as store:
                assert store.num_nodes == small_network.num_nodes


class TestRecordFileRobustness:
    def test_read_from_wrong_page_kind(self, tmp_path):
        """Reading a rid pointing at an overflow data page (not a slotted
        page) must fail with a PageError, not return garbage silently."""
        f = PagedFile(tmp_path / "rf.db", page_size=512)
        buf = BufferManager(f)
        rf = RecordFile(buf)
        rf.append(b"x" * 2000)  # creates overflow chain pages
        overflow_pid = f.num_pages - 1
        with pytest.raises(PageError):
            rf.read(rid_encode(overflow_pid, 5))
        buf.close()

    def test_out_of_range_page(self, tmp_path):
        f = PagedFile(tmp_path / "rf2.db", page_size=512)
        buf = BufferManager(f)
        rf = RecordFile(buf)
        rf.append(b"ok")
        with pytest.raises(PageError):
            rf.read(rid_encode(999, 0))
        buf.close()


class TestBPlusTreeRobustness:
    def test_page_too_small(self):
        class TinyFile:
            page_size = 40  # fits barely 1 entry: unusable for a B+-tree

        class TinyBuffer:
            file = TinyFile()

        with pytest.raises(TreeError):
            BPlusTree(TinyBuffer())

    def test_check_invariants_detects_corruption(self, tmp_path):
        f = PagedFile(tmp_path / "corrupt.db", page_size=512)
        buf = BufferManager(f)
        tree = BPlusTree(buf)
        for k in range(10):
            tree.insert(k, k)
        # Corrupt the leaf in place: write keys out of order.
        raw = bytearray(buf.read(tree.root_pid))
        header = struct.Struct("<BHQ")
        entry = struct.Struct("<qq")
        entry.pack_into(raw, header.size, 99, 0)  # first key now largest
        buf.write(tree.root_pid, bytes(raw))
        with pytest.raises(TreeError):
            tree.check_invariants()
        buf.close()


# ----------------------------------------------------------------------
# Exhaustive bit-flip sweep
# ----------------------------------------------------------------------
_FLIP_PAGE_SIZE = 512


@pytest.fixture(scope="module")
def pristine_store(tmp_path_factory):
    """A committed store plus its full logical scan, shared by the sweep."""
    net = SpatialNetwork()
    for i in range(30):
        net.add_node(i)
    for i in range(29):
        net.add_edge(i, i + 1, 1.0 + (i % 4))
    pts = PointSet(net)
    pid = 0
    for i in range(29):
        for frac in (0.3, 0.7):
            pts.add(i, i + 1, frac * net.edge_weight(i, i + 1), point_id=pid)
            pid += 1
    path = str(tmp_path_factory.mktemp("bitflip") / "pristine.db")
    store = NetworkStore.build(path, net, pts, page_size=_FLIP_PAGE_SIZE)
    try:
        num_pages = store._file.num_pages
        scan = _full_scan(store)
    finally:
        store.close()
    return path, num_pages, scan


def _full_scan(store: NetworkStore) -> tuple:
    edges = sorted(store.edges())
    degrees = {node: store.degree(node) for node in store.nodes()}
    pts = sorted(
        (p.point_id, p.u, p.v, p.offset, p.label) for p in store.points()
    )
    return edges, degrees, pts


class TestBitFlipSweep:
    """Flip one byte in *every* physical page frame of a built store.

    Whatever byte rots — payload, zero padding, or the CRC trailer itself —
    reads must either raise a typed :class:`ReproError` or return data
    identical to the pristine store (when the damaged page is simply never
    read).  A silently wrong value is the one forbidden outcome, and
    ``verify_store`` must locate every damaged page.
    """

    # Byte position within the physical frame: payload start, payload
    # middle, and the last trailer byte (the checksum itself).
    @pytest.mark.parametrize("position", ["first", "middle", "last"])
    def test_flip_every_page(self, pristine_store, tmp_path, position):
        path, num_pages, pristine = pristine_store
        stride = _FLIP_PAGE_SIZE + CHECKSUM_BYTES
        offset_in_frame = {
            "first": 0,
            "middle": stride // 2,
            "last": stride - 1,
        }[position]
        work = str(tmp_path / "flipped.db")
        for pid in range(num_pages):
            shutil.copyfile(path, work)
            with open(work, "r+b") as fh:
                fh.seek(pid * stride + offset_in_frame)
                byte = fh.read(1)
                fh.seek(pid * stride + offset_in_frame)
                fh.write(bytes([byte[0] ^ 0xFF]))

            findings = verify_store(work)
            if pid == 0:
                assert any(f.kind == "header" for f in findings), (
                    f"verify_store missed the flipped header ({position})"
                )
            else:
                assert any(f.page_id == pid for f in findings), (
                    f"verify_store missed flipped page {pid} ({position})"
                )

            try:
                store = NetworkStore(work)
            except ReproError:
                continue  # typed refusal at open: acceptable
            try:
                scan = _full_scan(store)
            except ReproError:
                continue  # typed error on read: acceptable
            finally:
                store.close()
            # No error: only acceptable if the damaged page was never read,
            # i.e. the scan is byte-identical to the pristine store.
            assert scan == pristine, (
                f"page {pid} byte {offset_in_frame}: flipped byte silently "
                "changed scan results without a typed error"
            )
