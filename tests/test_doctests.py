"""Run the doctest examples embedded in the library's docstrings.

Keeps every ``>>>`` example in the public API honest: if a docstring
example drifts from the implementation, this test fails.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro

# Modules whose docstrings carry runnable examples (plus any added later:
# the scan below finds every repro module automatically).
def _all_modules() -> list[str]:
    names = ["repro"]
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if module_info.name in ("repro.__main__",):
            continue
        names.append(module_info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
