"""Tests for clustering quality metrics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.metrics import (
    NOISE,
    adjusted_rand_index,
    confusion_counts,
    medoid_evaluation,
    normalized_mutual_information,
    purity,
)
from repro.exceptions import ParameterError

PERFECT = {0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 5: 2}
RELABELED = {0: 7, 1: 7, 2: 9, 3: 9, 4: 4, 5: 4}
MERGED = {0: 0, 1: 0, 2: 0, 3: 0, 4: 1, 5: 1}
ALL_ONE = {pid: 0 for pid in PERFECT}
SINGLETONS = {pid: pid for pid in PERFECT}


class TestAdjustedRandIndex:
    def test_identical_is_one(self):
        assert adjusted_rand_index(PERFECT, PERFECT) == pytest.approx(1.0)

    def test_label_permutation_is_one(self):
        assert adjusted_rand_index(PERFECT, RELABELED) == pytest.approx(1.0)

    def test_merging_reduces_score(self):
        score = adjusted_rand_index(PERFECT, MERGED)
        assert 0.0 < score < 1.0

    def test_degenerate_partitions(self):
        # All-in-one vs ground truth: ARI is 0 by chance correction.
        assert adjusted_rand_index(PERFECT, ALL_ONE) == pytest.approx(0.0)
        assert adjusted_rand_index(PERFECT, SINGLETONS) == pytest.approx(0.0)

    def test_single_point(self):
        assert adjusted_rand_index({0: 0}, {0: 5}) == 1.0

    def test_mismatched_point_sets_rejected(self):
        with pytest.raises(ParameterError):
            adjusted_rand_index(PERFECT, {0: 0})

    def test_symmetry(self):
        assert adjusted_rand_index(PERFECT, MERGED) == pytest.approx(
            adjusted_rand_index(MERGED, PERFECT)
        )

    def test_noise_drop(self):
        truth = {**PERFECT, 5: NOISE}
        pred = dict(PERFECT)
        # Dropping removes point 5 from both, leaving identical partitions.
        assert adjusted_rand_index(truth, pred, noise="drop") == pytest.approx(1.0)

    def test_noise_as_label_penalises(self):
        truth = {**PERFECT, 5: NOISE}
        assert adjusted_rand_index(truth, PERFECT) < 1.0

    def test_bad_noise_mode(self):
        with pytest.raises(ParameterError):
            adjusted_rand_index(PERFECT, PERFECT, noise="ignore")


class TestNMI:
    def test_identical_is_one(self):
        assert normalized_mutual_information(PERFECT, RELABELED) == pytest.approx(1.0)

    def test_independent_is_low(self):
        assert normalized_mutual_information(PERFECT, ALL_ONE) == pytest.approx(0.0)

    def test_bounded(self):
        score = normalized_mutual_information(PERFECT, MERGED)
        assert 0.0 <= score <= 1.0

    def test_both_trivial(self):
        assert normalized_mutual_information(ALL_ONE, ALL_ONE) == 1.0


class TestPurity:
    def test_identical_is_one(self):
        assert purity(PERFECT, RELABELED) == pytest.approx(1.0)

    def test_singletons_are_pure(self):
        assert purity(PERFECT, SINGLETONS) == pytest.approx(1.0)

    def test_merged_purity(self):
        # MERGED's first cluster holds two truth labels of 2 points each.
        assert purity(PERFECT, MERGED) == pytest.approx(4 / 6)


class TestConfusion:
    def test_counts(self):
        counts = confusion_counts(PERFECT, MERGED)
        assert counts[(0, 0)] == 2
        assert counts[(1, 0)] == 2
        assert counts[(2, 1)] == 2
        assert sum(counts.values()) == 6


class TestMedoidEvaluation:
    def test_sums_distances(self):
        assert medoid_evaluation({0: 1.5, 1: 2.5}) == pytest.approx(4.0)

    def test_empty(self):
        assert medoid_evaluation({}) == 0.0


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_metrics_invariant_to_relabeling(n, k, seed):
    """All metrics are invariant under bijective relabeling of predictions."""
    rng = random.Random(seed)
    truth = {i: rng.randrange(k) for i in range(n)}
    pred = {i: rng.randrange(k) for i in range(n)}
    mapping = {label: label + 100 for label in set(pred.values())}
    relabeled = {pid: mapping[lab] for pid, lab in pred.items()}
    assert adjusted_rand_index(truth, pred) == pytest.approx(
        adjusted_rand_index(truth, relabeled)
    )
    assert normalized_mutual_information(truth, pred) == pytest.approx(
        normalized_mutual_information(truth, relabeled)
    )
    assert purity(truth, pred) == pytest.approx(purity(truth, relabeled))


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=2, max_value=40),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_ari_bounded_and_maximal_on_self(n, k, seed):
    rng = random.Random(seed)
    truth = {i: rng.randrange(k) for i in range(n)}
    pred = {i: rng.randrange(k) for i in range(n)}
    score = adjusted_rand_index(truth, pred)
    assert -1.0 <= score <= 1.0
    assert adjusted_rand_index(truth, truth) == pytest.approx(1.0)
