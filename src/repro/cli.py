"""Command-line interface: generate → cluster → evaluate → render.

A pipeline for working with spatial-network clustering from the shell::

    python -m repro generate --workload OL --scale 0.05 --out city.json
    python -m repro cluster city.json --algorithm eps-link --eps 0.5 --out clusters.json
    python -m repro evaluate city.json clusters.json
    python -m repro render city.json --result clusters.json --out map.svg
    python -m repro info city.json
    python -m repro check store.db
    python -m repro serve city.json --workers 4 < requests.ldjson

``check`` verifies a disk network store (header, page checksums, index
invariants, record bounds, counts) and exits non-zero when anything is
wrong — see :mod:`repro.storage.verify`; ``repair`` salvages a store that
``check`` condemned (:mod:`repro.recovery.repair`).  ``cluster`` accepts
operation budgets (``--max-expansions``, ``--max-distance-computations``)
that shed oversized runs with a clean report instead of an unbounded
stall, and recovery flags (``--checkpoint``, ``--resume``, ``--retries``)
that let an interrupted run restart from its last snapshot — see
``docs/robustness.md`` for the exit-code table and checkpoint format.
``cluster --timeout-ms`` bounds a run by wall clock (exit 3, resumable),
and ``serve`` answers line-delimited JSON queries concurrently with
bounded admission and per-request deadlines — see ``docs/resilience.md``.

``cluster`` and ``evaluate`` take ``--stats`` (print the :mod:`repro.obs`
per-phase time + counter table) and ``--trace FILE`` (write the run's
hierarchical timing spans as JSONL).

Workloads and results travel as the JSON documents of :mod:`repro.io`.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys

from repro import obs
from repro.core import (
    EpsLink,
    NetworkDBSCAN,
    NetworkKMedoids,
    NetworkOPTICS,
    SingleLink,
)
from repro.datagen import (
    ClusterSpec,
    delaunay_road_network,
    generate_clustered_points,
    grid_city,
    load_network,
    suggest_eps,
)
from repro.datagen.clusters import well_separated_seed_edges
from repro.eval import adjusted_rand_index, normalized_mutual_information, purity
from repro.exceptions import Cancelled, Interrupted, WalCorruptError
from repro.io import (
    load_result_file,
    load_workload_file,
    save_result,
    save_workload,
)
from repro.network.components import is_connected

__all__ = ["main"]

ALGORITHMS = ("k-medoids", "eps-link", "dbscan", "single-link", "optics")


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.workload:
        network = load_network(args.workload, scale=args.scale, seed=args.seed)
    elif args.grid:
        width, _, height = args.grid.partition("x")
        network = grid_city(int(width), int(height or width), seed=args.seed)
    else:
        network = delaunay_road_network(args.delaunay, seed=args.seed)

    points = None
    if args.points:
        if args.s_init is not None:
            s_init = args.s_init
        else:
            # Spread the clusters over ~20% of the network (see datagen).
            s_init = 0.2 * network.total_weight() / args.points / 3.0
        spec = ClusterSpec(k=args.k, s_init=s_init,
                           outlier_fraction=args.outliers)
        seeds = well_separated_seed_edges(network, args.k, seed=args.seed + 2)
        points = generate_clustered_points(
            network, args.points, spec, seed=args.seed + 1, seed_edges=seeds
        )
        print(f"suggested eps (1.5 * s_init * F): {suggest_eps(spec):.6g}")
    save_workload(args.out, network, points)
    print(f"wrote {args.out}: {network.num_nodes} nodes, "
          f"{network.num_edges} edges, {len(points) if points else 0} points")
    return 0


def _build_budget(args: argparse.Namespace):
    """An OpBudget from the --max-* flags, or None when none were given."""
    caps = (
        getattr(args, "max_expansions", None),
        getattr(args, "max_distance_computations", None),
        getattr(args, "max_page_reads", None),
    )
    if all(cap is None for cap in caps):
        return None
    from repro.faults import OpBudget

    return OpBudget(
        max_expansions=caps[0],
        max_distance_computations=caps[1],
        max_page_reads=caps[2],
    )


def _build_accelerator(args: argparse.Namespace, network, points):
    """A :class:`~repro.perf.DistanceAccelerator` when ``--landmarks`` or
    ``--distance-cache-mb`` is set, else None."""
    landmarks = getattr(args, "landmarks", 0)
    cache_mb = getattr(args, "distance_cache_mb", 0.0)
    if landmarks <= 0 and cache_mb <= 0:
        return None
    from repro.network.augmented import AugmentedView
    from repro.perf import DistanceAccelerator

    return DistanceAccelerator(
        AugmentedView(network, points),
        landmarks=max(landmarks, 0),
        cache_mb=max(cache_mb, 0.0),
    )


def _build_algorithm(args: argparse.Namespace, network, points):
    name = args.algorithm
    budget = _build_budget(args)
    accelerator = _build_accelerator(args, network, points)
    backend = getattr(args, "backend", None)
    if name == "k-medoids":
        return NetworkKMedoids(network, points, k=args.k, seed=args.seed,
                               n_restarts=args.restarts, budget=budget,
                               accelerator=accelerator, backend=backend)
    if name in ("eps-link", "dbscan", "optics") and args.eps is None:
        raise SystemExit(f"--eps is required for {name}")
    if name == "eps-link":
        return EpsLink(network, points, eps=args.eps, min_sup=args.min_pts,
                       budget=budget, accelerator=accelerator,
                       backend=backend)
    if name == "dbscan":
        return NetworkDBSCAN(network, points, eps=args.eps, min_pts=args.min_pts,
                             budget=budget, backend=backend)
    if name == "optics":
        return NetworkOPTICS(network, points, max_eps=args.eps,
                             min_pts=args.min_pts, budget=budget,
                             backend=backend)
    if name == "single-link":
        stop_k = args.k if args.stop == "k" else None
        stop_distance = args.eps if args.stop == "distance" else None
        if args.stop == "distance" and args.eps is None:
            raise SystemExit("--stop distance requires --eps")
        return SingleLink(network, points, delta=args.delta,
                          stop_k=stop_k, stop_distance=stop_distance,
                          budget=budget, backend=backend)
    raise SystemExit(f"unknown algorithm {name!r}")


def _obs_begin(args: argparse.Namespace) -> bool:
    """Enable observability when ``--stats``/``--trace`` ask for it."""
    wanted = bool(getattr(args, "stats", False) or getattr(args, "trace", None))
    if wanted:
        try:
            obs.enable(trace_path=args.trace)
        except OSError as exc:
            raise SystemExit(f"cannot open trace file {args.trace}: {exc}")
    return wanted


def _obs_end(args: argparse.Namespace, file=None) -> None:
    """Close the trace and print the phase/counter table.

    ``serve`` passes ``file=sys.stderr``: its stdout is the LDJSON wire,
    so no status line may land there.
    """
    obs.disable()
    if args.trace:
        print(f"wrote trace {args.trace}", file=file)
    if args.stats:
        print(file=file)
        print(obs.format_table(), file=file)


def _checkpoint_meta(args: argparse.Namespace) -> dict:
    """What a checkpoint must match to be resumable by this invocation."""
    return {
        "algorithm": args.algorithm,
        "workload": os.path.basename(args.workload),
        "eps": args.eps,
        "k": args.k,
        "min_pts": args.min_pts,
        "delta": args.delta,
        "stop": args.stop,
        "restarts": args.restarts,
        "seed": args.seed,
    }


def _sigterm(signum, frame):
    # SIGTERM/SIGINT unwind through the same typed-interrupt path as a
    # deadline expiry or budget abort: Cancelled -> clean drain -> exit 3.
    try:
        name = signal.Signals(signum).name
    except ValueError:  # pragma: no cover - unknown signal number
        name = f"signal {signum}"
    raise Cancelled(name)


def _interrupt_reason(exc: Interrupted) -> str:
    """One stderr line describing a typed interrupt."""
    if isinstance(exc, Cancelled):
        if exc.reason == "SIGTERM":
            return "terminated by SIGTERM"
        return f"cancelled: {exc.reason}"
    return f"aborted cleanly: {exc} (algorithm {exc.algorithm})"


def _setup_recovery(args: argparse.Namespace, algorithm) -> str | None:
    """Wire --checkpoint/--resume onto ``algorithm``; returns the live
    checkpoint path (None when checkpointing is off)."""
    from repro.recovery import CheckpointManager, load_checkpoint, validate_meta

    from repro.exceptions import CheckpointError

    ckpt_path = args.checkpoint
    if args.resume:
        if os.path.exists(args.resume):
            try:
                doc = load_checkpoint(args.resume)
                validate_meta(doc["meta"], _checkpoint_meta(args))
            except CheckpointError as exc:
                raise SystemExit(f"cannot resume: {exc}")
            algorithm.resume_from(doc["state"])
            print(f"resuming from checkpoint {args.resume}")
        else:
            # The interrupted run died before its first snapshot.
            print(f"no checkpoint at {args.resume}; starting fresh")
        if ckpt_path is None:
            ckpt_path = args.resume  # keep snapshotting the same file
    if ckpt_path is not None:
        algorithm.checkpoint = CheckpointManager(
            ckpt_path, every=args.checkpoint_every, meta=_checkpoint_meta(args)
        )
    return ckpt_path


def _cmd_cluster(args: argparse.Namespace) -> int:
    network, points = load_workload_file(args.workload)
    if len(points) == 0:
        raise SystemExit("the workload holds no points to cluster")
    algorithm = _build_algorithm(args, network, points)
    ckpt_path = _setup_recovery(args, algorithm)
    observing = _obs_begin(args)
    if args.dendrogram:
        if args.algorithm != "single-link":
            raise SystemExit("--dendrogram is only available for single-link")
        dendrogram = algorithm.build_dendrogram()
        with open(args.dendrogram, "w", encoding="utf-8") as fh:
            json.dump(dendrogram.to_dict(), fh)
        print(f"wrote {args.dendrogram}: {dendrogram.num_leaves} leaves, "
              f"{len(dendrogram.merges)} merges")
    if args.timeout_ms is not None:
        from repro.resilience import Deadline

        algorithm.deadline = Deadline(args.timeout_ms / 1000.0)
    old_term = None
    try:
        if ckpt_path is not None:
            # A polite kill leaves the latest snapshot behind for --resume.
            with contextlib.suppress(ValueError):  # non-main thread
                old_term = signal.signal(signal.SIGTERM, _sigterm)
        with contextlib.ExitStack() as stack:
            if args.retries:
                from repro.recovery import RetryPolicy, retrying

                stack.enter_context(
                    retrying(RetryPolicy(max_attempts=args.retries))
                )
            result = algorithm.run()
    except Interrupted as exc:
        # One path for budget aborts, deadline expiry, and SIGTERM: any
        # snapshot taken before the interrupt is left for --resume, and
        # the exit code is 3.
        if observing:
            _obs_end(args)
        if isinstance(exc, Cancelled) and exc.algorithm is None:
            exc.algorithm = args.algorithm  # SIGTERM outside algorithm.run()
        hint = (
            f"; resume with --resume {ckpt_path}" if ckpt_path is not None
            else ""
        )
        print(_interrupt_reason(exc) + hint, file=sys.stderr)
        return 3
    finally:
        if old_term is not None:
            signal.signal(signal.SIGTERM, old_term)
    if ckpt_path is not None:
        algorithm.checkpoint.remove()  # the run completed; snapshot obsolete
    save_result(args.out, result)
    print(f"{result.algorithm}: {result.num_clusters} clusters, "
          f"{len(result.outliers())} outliers "
          f"({result.stats.get('wall_time_s', 0):.3f}s)")
    print(f"wrote {args.out}")
    if observing:
        _obs_end(args)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    network, points = load_workload_file(args.workload)
    result = load_result_file(args.result)
    labels = {p.point_id: p.label for p in points}
    if any(label is None for label in labels.values()):
        raise SystemExit("the workload carries no ground-truth labels")
    predicted = dict(result.assignment)
    observing = _obs_begin(args)
    with obs.span("evaluate", algorithm=result.algorithm):
        report = {
            "algorithm": result.algorithm,
            "clusters": result.num_clusters,
            "outliers": len(result.outliers()),
            "ari": round(adjusted_rand_index(labels, predicted, noise="drop"), 4),
            "nmi": round(
                normalized_mutual_information(labels, predicted, noise="drop"), 4
            ),
            "purity": round(purity(labels, predicted, noise="drop"), 4),
        }
    print(json.dumps(report, indent=2))
    if observing:
        _obs_end(args)
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.viz import render_network_svg

    network, points = load_workload_file(args.workload)
    assignment = None
    if args.result:
        assignment = load_result_file(args.result).assignment
    render_network_svg(
        network,
        points if len(points) else None,
        assignment=assignment,
        path=args.out,
        width=args.width,
    )
    print(f"wrote {args.out}")
    return 0


def _finding_doc(f) -> dict:
    return {
        "severity": f.severity,
        "kind": f.kind,
        "page_id": f.page_id,
        "offset": f.offset,
        "message": f.message,
    }


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.storage.verify import verify_store

    findings = verify_store(args.store)
    index_findings = None
    if args.index:
        from repro.perf import verify_index

        # Fingerprint validation needs the stored network; only a store
        # that just verified clean can provide it — against a condemned
        # store the index is checked structurally (header + every CRC).
        network = None
        if not findings:
            from repro.storage.netstore import NetworkStore

            network = NetworkStore(args.store)
        try:
            index_findings = verify_index(args.index, network)
        finally:
            if network is not None:
                network.close()
    code = 0 if not findings and not index_findings else 2
    if args.json:
        doc = {
            "store": args.store,
            "exit_code": code,
            "findings": [_finding_doc(f) for f in findings],
        }
        if index_findings is not None:
            doc["index"] = {
                "path": args.index,
                "findings": [_finding_doc(f) for f in index_findings],
            }
        print(json.dumps(doc, indent=2))
    else:
        for f in findings:
            print(f)
        print(
            f"{args.store}: "
            + ("OK" if not findings else f"{len(findings)} problem(s) found")
        )
        if index_findings is not None:
            for f in index_findings:
                print(f)
            print(
                f"{args.index}: "
                + ("OK" if not index_findings
                   else f"{len(index_findings)} problem(s) found")
            )
    return code


def _cmd_index_build(args: argparse.Namespace) -> int:
    from repro.perf import build_index_file

    network, _points = load_workload_file(args.workload)
    observing = _obs_begin(args)
    summary = build_index_file(
        args.out, network, num_landmarks=args.landmarks, seed=args.seed
    )
    print(
        f"wrote {args.out}: {summary['landmarks']} landmark(s) over "
        f"{summary['nodes']} nodes ({summary['bytes']} bytes, "
        f"fingerprint {summary['fingerprint'][:12]}…)"
    )
    if observing:
        _obs_end(args)
    return 0


def _cmd_index_check(args: argparse.Namespace) -> int:
    from repro.perf import verify_index

    network = None
    if args.workload:
        network, _points = load_workload_file(args.workload)
    findings = verify_index(args.index, network)
    code = 0 if not findings else 2
    if args.json:
        print(json.dumps({
            "index": args.index,
            "exit_code": code,
            "findings": [_finding_doc(f) for f in findings],
        }, indent=2))
    else:
        for f in findings:
            print(f)
        print(
            f"{args.index}: "
            + ("OK" if not findings else f"{len(findings)} problem(s) found")
        )
    return code


def _cmd_wal_verify(args: argparse.Namespace) -> int:
    from repro.live import verify_wal

    findings = verify_wal(args.log)
    code = 0 if not findings else 2
    if args.json:
        print(json.dumps({
            "log": args.log,
            "exit_code": code,
            "findings": [_finding_doc(f) for f in findings],
        }, indent=2))
    else:
        for f in findings:
            print(f)
        print(
            f"{args.log}: "
            + ("OK" if not findings else f"{len(findings)} problem(s) found")
        )
    return code


def _cmd_wal_replay(args: argparse.Namespace) -> int:
    from repro.exceptions import ReplayError
    from repro.live import LiveSession, WriteAheadLog

    network, points = load_workload_file(args.workload)
    try:
        wal = WriteAheadLog(args.log, read_only=True)
    except OSError as exc:
        raise SystemExit(f"cannot open mutation log {args.log}: {exc}")
    except WalCorruptError as exc:
        print(f"{args.log}: corrupt — {exc}", file=sys.stderr)
        return 2
    session = LiveSession(network, points, eps=args.eps, wal=wal)
    try:
        replayed = session.replay_wal()
    except (WalCorruptError, ReplayError) as exc:
        print(f"{args.log}: replay failed — {exc}", file=sys.stderr)
        return 2
    finally:
        session.close()
    snap = session.snapshot()
    doc = {
        "log": args.log,
        "replayed": replayed,
        "epoch": snap["epoch"],
        "points": snap["num_points"],
        "clusters": snap["num_clusters"],
    }
    if args.json:
        doc["assignment"] = snap["assignment"]
        print(json.dumps(doc, indent=2))
    else:
        print(
            f"{args.log}: replayed {replayed} mutation(s) to epoch "
            f"{doc['epoch']}: {doc['points']} point(s) in "
            f"{doc['clusters']} cluster(s) at eps={args.eps}"
        )
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.recovery import repair_store

    out = args.out if args.out else args.store + ".repaired"
    try:
        report = repair_store(args.store, out, page_size_hint=args.page_size)
    except OSError as exc:
        raise SystemExit(f"cannot repair {args.store}: {exc}")
    doc = report.summary()
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        if not report.recoverable:
            print(f"{args.store}: unrecoverable "
                  f"({'; '.join(report.notes) or 'nothing salvageable'})")
        else:
            salv = ", ".join(f"{v} {k}" for k, v in report.salvaged.items())
            print(f"{args.store}: salvaged {salv} "
                  f"({report.lost_pages} page(s) quarantined)")
            if report.full_recovery:
                print(f"full recovery; clean store written to {out}")
            else:
                lost = report.lost
                detail = (
                    ", ".join(f"{v} {k}" for k, v in lost.items())
                    if lost is not None else "unknown (metadata unreadable)"
                )
                print(f"partial recovery — lost: {detail}; "
                      f"salvaged store written to {out}")
    return 0 if report.full_recovery else 2


def _cmd_info(args: argparse.Namespace) -> int:
    network, points = load_workload_file(args.workload)
    degrees = [network.degree(n) for n in network.nodes()]
    labels = {p.label for p in points}
    info = {
        "name": network.name,
        "nodes": network.num_nodes,
        "edges": network.num_edges,
        "connected": is_connected(network),
        "total_weight": round(network.total_weight(), 4),
        "avg_degree": round(sum(degrees) / len(degrees), 3) if degrees else 0,
        "points": len(points),
        "populated_edges": points.num_populated_edges(),
        "labels": sorted(x for x in labels if x is not None),
    }
    print(json.dumps(info, indent=2))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Answer line-delimited JSON queries over one workload.

    Reads requests from ``--input`` (or stdin) until EOF, submits them all
    to a :class:`~repro.serve.QueryService` — so a fast request stream
    exercises admission control for real: requests beyond the queue bound
    are shed with ``Overloaded`` responses — and writes one JSON response
    per request, in input order, to ``--output`` (or stdout).

    ``--processes N`` swaps the threaded pool for a supervised
    :class:`~repro.serve.SupervisedPool` of N worker processes (restart
    with backoff, in-flight failover, poison quarantine — see
    ``docs/resilience.md``).  SIGTERM/SIGINT *drain*: intake stops, every
    already-read request is answered, the final metrics snapshot is
    flushed, and the exit code is 3 — the typed-interrupt convention.
    """
    from repro.serve import (
        QueryService,
        error_response,
        parse_request,
        result_response,
    )

    network, points = load_workload_file(args.workload)
    if len(points) == 0:
        raise SystemExit("the workload holds no points to serve")
    if args.processes < 0:
        raise SystemExit(f"--processes must be >= 0, got {args.processes}")
    if args.metrics_file and args.metrics_interval_s <= 0:
        raise SystemExit(
            f"--metrics-interval-s must be > 0, got {args.metrics_interval_s}"
        )
    if args.backend == "csr" and args.wal:
        raise SystemExit(
            "--backend csr cannot serve live mutations (--wal): the frozen "
            "arrays would go stale on the first reweigh; use --backend dict"
        )
    # Serve-specific enable: --metrics-file alone turns telemetry on, and
    # --trace records *request-scoped* spans (only requests that carry
    # "trace": true), not the whole serving session.
    observing = bool(args.stats or args.trace or args.metrics_file)
    if observing:
        try:
            obs.enable(trace_path=args.trace, sample_requests=bool(args.trace))
        except OSError as exc:
            raise SystemExit(f"cannot open trace file {args.trace}: {exc}")
    default_timeout_s = (
        args.default_timeout_ms / 1000.0
        if args.default_timeout_ms is not None else None
    )
    with contextlib.ExitStack() as stack:
        if args.metrics_file:
            from repro.obs import MetricsExporter

            try:
                stack.enter_context(MetricsExporter(
                    args.metrics_file, interval_s=args.metrics_interval_s,
                ))
            except OSError as exc:
                raise SystemExit(
                    f"cannot open metrics file {args.metrics_file}: {exc}"
                )
        if args.retries:
            from repro.recovery import RetryPolicy, retrying

            stack.enter_context(retrying(RetryPolicy(max_attempts=args.retries)))
        if args.breaker_threshold:
            from repro.resilience import CircuitBreaker, breaking

            stack.enter_context(breaking(CircuitBreaker(
                failure_threshold=args.breaker_threshold,
                reset_timeout_s=args.breaker_reset_ms / 1000.0,
            )))
        in_fh = (
            stack.enter_context(open(args.input, encoding="utf-8"))
            if args.input else sys.stdin
        )
        out_fh = (
            stack.enter_context(open(args.output, "w", encoding="utf-8"))
            if args.output else sys.stdout
        )
        session = None
        if args.processes > 0:
            from repro.serve import SupervisedPool

            try:
                service = SupervisedPool(
                    args.workload,
                    processes=args.processes,
                    queue_depth=args.queue_depth,
                    default_timeout_s=default_timeout_s,
                    landmarks=args.landmarks,
                    distance_cache_mb=args.distance_cache_mb,
                    index_path=args.index,
                    max_restarts=args.max_restarts,
                    restart_window_s=args.restart_window_s,
                    wal_path=args.wal,
                    live_eps=args.live_eps,
                    backend=args.backend,
                )
            except WalCorruptError as exc:
                raise SystemExit(
                    f"cannot open mutation log {args.wal}: {exc}"
                )
            if args.wal:
                print(
                    f"mutation log {args.wal} at epoch "
                    f"{service.session.epoch}",
                    file=sys.stderr,
                )
            pool_desc = f"{args.processes} process(es)"
        else:
            if args.wal:
                from repro.live import LiveSession, WriteAheadLog

                try:
                    wal = WriteAheadLog(args.wal)
                except (OSError, WalCorruptError) as exc:
                    raise SystemExit(
                        f"cannot open mutation log {args.wal}: {exc}"
                    )
                session = LiveSession(
                    network, points, eps=args.live_eps, wal=wal
                )
                replayed = session.replay_wal()
                print(
                    f"mutation log {args.wal} at epoch {session.epoch} "
                    f"({replayed} mutation(s) replayed)",
                    file=sys.stderr,
                )
            service = QueryService(
                network, points,
                workers=args.workers,
                queue_depth=args.queue_depth,
                default_timeout_s=default_timeout_s,
                landmarks=args.landmarks,
                distance_cache_mb=args.distance_cache_mb,
                index_path=args.index,
                session=session,
                backend=args.backend,
            )
            pool_desc = f"{args.workers} worker(s)"
            if args.index and service.index_source == "degraded":
                print(
                    f"landmark index degraded: "
                    f"{service.index_degrade_reason}",
                    file=sys.stderr,
                )
        pending: list[tuple[dict, object]] = []  # (request, future-or-error)
        served = 0
        interrupted = None
        # SIGTERM/SIGINT drain: intake stops (the handler raises Cancelled
        # out of the read loop), but everything already read is answered
        # and the metrics exporter still flushes its final snapshot on the
        # way out.  Handlers are restored before the drain so a second
        # signal escalates to the default (hard) behaviour.
        old_handlers = []
        with contextlib.suppress(ValueError):  # non-main thread
            for signum in (signal.SIGTERM, signal.SIGINT):
                old_handlers.append(
                    (signum, signal.signal(signum, _sigterm))
                )
        try:
            try:
                for lineno, line in enumerate(in_fh, start=1):
                    if not line.strip():
                        continue
                    try:
                        request = parse_request(line, lineno)
                    except Exception as exc:
                        rid = _line_id(line)
                        pending.append(
                            ({"id": rid} if rid is not None else {}, exc)
                        )
                        continue
                    try:
                        pending.append((request, service.submit(request)))
                    except Exception as exc:
                        # Overloaded sheds, ParameterError rejects a bad
                        # field (e.g. timeout_ms): either way the failure
                        # belongs to this one request, never to the
                        # serving session.
                        pending.append((request, exc))
            except Cancelled as exc:
                interrupted = exc
            finally:
                for signum, handler in old_handlers:
                    signal.signal(signum, handler)
            for request, outcome in pending:
                if isinstance(outcome, BaseException):
                    doc = error_response(request, outcome)
                else:
                    try:
                        doc = result_response(request, outcome.result())
                    except Exception as exc:
                        doc = error_response(request, exc)
                served += doc["ok"]
                print(json.dumps(doc), file=out_fh)
        finally:
            service.close()
            if session is not None:
                session.close()  # releases the threaded tier's WAL handle
    print(
        f"served {served}/{len(pending)} request(s) "
        f"({pool_desc}, queue depth {args.queue_depth})",
        file=sys.stderr,
    )
    if args.metrics_file:
        print(f"wrote metrics {args.metrics_file}", file=sys.stderr)
    if observing:
        _obs_end(args, file=sys.stderr)
    if interrupted is not None:
        print(
            f"{_interrupt_reason(interrupted)}; drained "
            f"{len(pending)} admitted request(s)",
            file=sys.stderr,
        )
        return 3
    return 0


def _line_id(line: str) -> object:
    """Best-effort request id from a line that failed parsing/admission."""
    try:
        doc = json.loads(line)
        if isinstance(doc, dict) and "id" in doc:
            return doc["id"]
    except json.JSONDecodeError:
        pass
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Clustering objects on a spatial network (SIGMOD 2004)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic workload")
    source = gen.add_mutually_exclusive_group(required=True)
    source.add_argument("--workload", choices=["NA", "SF", "TG", "OL"],
                        help="paper-network analogue")
    source.add_argument("--grid", metavar="WxH", help="perturbed grid city")
    source.add_argument("--delaunay", type=int, metavar="N",
                        help="Delaunay road network with N nodes")
    gen.add_argument("--scale", type=float, default=1 / 16,
                     help="fraction of the paper network's size")
    gen.add_argument("--points", type=int, default=0,
                     help="number of objects to plant (0 = network only)")
    gen.add_argument("--k", type=int, default=10, help="planted clusters")
    gen.add_argument("--s-init", type=float, default=None,
                     help="initial separation distance (auto when omitted)")
    gen.add_argument("--outliers", type=float, default=0.01,
                     help="outlier fraction")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output workload JSON")
    gen.set_defaults(func=_cmd_generate)

    clus = sub.add_parser("cluster", help="run a clustering algorithm")
    clus.add_argument("workload", help="workload JSON from `generate`")
    clus.add_argument("--algorithm", choices=ALGORITHMS, required=True)
    clus.add_argument("--eps", type=float, default=None,
                      help="eps / max-eps / stop distance")
    clus.add_argument("--k", type=int, default=10,
                      help="clusters (k-medoids, single-link --stop k)")
    clus.add_argument("--min-pts", type=int, default=2,
                      help="MinPts (dbscan/optics) or min_sup (eps-link)")
    clus.add_argument("--delta", type=float, default=0.0,
                      help="single-link pre-merge threshold")
    clus.add_argument("--stop", choices=["k", "distance", "all"], default="all",
                      help="single-link stopping rule")
    clus.add_argument("--restarts", type=int, default=1,
                      help="k-medoids random restarts")
    clus.add_argument("--seed", type=int, default=0)
    clus.add_argument("--dendrogram", default=None,
                      help="(single-link) also write the dendrogram JSON here")
    clus.add_argument("--out", required=True, help="output clustering JSON")
    clus.add_argument("--stats", action="store_true",
                      help="print the repro.obs per-phase time/counter table")
    clus.add_argument("--trace", default=None, metavar="FILE",
                      help="write hierarchical timing spans as JSONL to FILE")
    clus.add_argument("--max-expansions", type=int, default=None,
                      help="abort cleanly after this many traversal settles")
    clus.add_argument("--max-distance-computations", type=int, default=None,
                      help="abort cleanly after this many distance evaluations")
    clus.add_argument("--max-page-reads", type=int, default=None,
                      help="abort cleanly after this many physical page reads")
    clus.add_argument("--checkpoint", default=None, metavar="FILE",
                      help="periodically snapshot resumable state to FILE")
    clus.add_argument("--checkpoint-every", type=int, default=64, metavar="N",
                      help="snapshot every N iteration boundaries (default 64)")
    clus.add_argument("--resume", default=None, metavar="FILE",
                      help="resume from the checkpoint at FILE (fresh run "
                           "when the file does not exist yet)")
    clus.add_argument("--retries", type=int, default=0, metavar="N",
                      help="retry transient I/O errors up to N attempts with "
                           "exponential backoff (0 = off)")
    clus.add_argument("--timeout-ms", type=float, default=None, metavar="T",
                      help="abort cleanly (exit 3, checkpoint kept) once the "
                           "run exceeds this wall-clock budget")
    clus.add_argument("--landmarks", type=int, default=0, metavar="L",
                      help="accelerate with L landmark distance bounds "
                           "(identical results, fewer settles; 0 = off)")
    clus.add_argument("--distance-cache-mb", type=float, default=0.0,
                      metavar="MB",
                      help="share an MB-bounded distance/result memo across "
                           "restarts and swaps (0 = off)")
    clus.add_argument("--backend", choices=["dict", "csr"], default="dict",
                      help="traversal backend: dict (default, the "
                           "bit-exactness oracle) or csr (freeze the "
                           "network into flat arrays with array-native "
                           "Dijkstra kernels; identical results)")
    clus.set_defaults(func=_cmd_cluster)

    srv = sub.add_parser(
        "serve", help="answer line-delimited JSON queries over a workload"
    )
    srv.add_argument("workload", help="workload JSON from `generate`")
    srv.add_argument("--input", default=None, metavar="FILE",
                     help="read requests from FILE instead of stdin")
    srv.add_argument("--output", default=None, metavar="FILE",
                     help="write responses to FILE instead of stdout")
    srv.add_argument("--workers", type=int, default=2, metavar="N",
                     help="worker threads (default 2)")
    srv.add_argument("--processes", type=int, default=0, metavar="N",
                     help="serve from N supervised worker *processes* "
                          "instead of threads: dead workers restart with "
                          "capped exponential backoff, in-flight idempotent "
                          "requests fail over, poison requests are "
                          "quarantined (0 = threaded; see "
                          "docs/resilience.md)")
    srv.add_argument("--max-restarts", type=int, default=3, metavar="M",
                     help="restarts a worker slot may need in a row before "
                          "its storm circuit opens and the slot degrades "
                          "(default 3; only with --processes)")
    srv.add_argument("--restart-window-s", type=float, default=5.0,
                     metavar="W",
                     help="cool-down window of the restart-storm circuit "
                          "(default 5.0; only with --processes)")
    srv.add_argument("--queue-depth", type=int, default=8, metavar="M",
                     help="admission queue bound; beyond it requests are "
                          "shed with Overloaded (default 8)")
    srv.add_argument("--default-timeout-ms", type=float, default=None,
                     metavar="T",
                     help="per-request deadline for requests that do not "
                          "carry their own timeout_ms (default: none)")
    srv.add_argument("--retries", type=int, default=0, metavar="N",
                     help="retry transient I/O errors up to N attempts")
    srv.add_argument("--breaker-threshold", type=int, default=0, metavar="F",
                     help="open a circuit breaker on the storage read path "
                          "after F consecutive failures (0 = off)")
    srv.add_argument("--breaker-reset-ms", type=float, default=1000.0,
                     metavar="MS",
                     help="breaker cool-down before half-open probes "
                          "(default 1000)")
    srv.add_argument("--landmarks", type=int, default=0, metavar="L",
                     help="accelerate range/knn with L landmark distance "
                          "bounds shared across workers (0 = off)")
    srv.add_argument("--distance-cache-mb", type=float, default=0.0,
                     metavar="MB",
                     help="serve repeated queries from an MB-bounded memo "
                          "shared across workers (0 = off)")
    srv.add_argument("--index", default=None, metavar="FILE",
                     help="mmap a persisted landmark index (repro index "
                          "build) read-only instead of building one per "
                          "process; a missing/corrupt/stale artifact "
                          "degrades to the unaccelerated path instead of "
                          "refusing to serve")
    srv.add_argument("--wal", default=None, metavar="FILE",
                     help="enable the live mutation ops (mutate / "
                          "subscribe_epoch / snapshot) backed by an "
                          "append-only write-ahead mutation log at FILE; "
                          "an existing log is replayed before serving, so "
                          "every previously acknowledged mutation survives "
                          "a crash (see docs/robustness.md)")
    srv.add_argument("--live-eps", type=float, default=1.0, metavar="E",
                     help="eps of the incrementally maintained ε-Link "
                          "clustering served by snapshot (default 1.0; "
                          "only with --wal, and must match across "
                          "restarts of the same log)")
    srv.add_argument("--backend", choices=["dict", "csr"], default="dict",
                     help="traversal backend: dict (default) or csr "
                          "(freeze the workload into flat arrays at "
                          "startup; identical responses; incompatible "
                          "with --wal)")
    srv.add_argument("--stats", action="store_true",
                     help="print the repro.obs per-phase time/counter table")
    srv.add_argument("--trace", default=None, metavar="FILE",
                     help="record spans of requests carrying \"trace\": true "
                          "as JSONL to FILE (request-scoped tracing)")
    srv.add_argument("--metrics-file", default=None, metavar="FILE",
                     help="append periodic JSONL metrics snapshots "
                          "(counters, histograms, gauges) to FILE")
    srv.add_argument("--metrics-interval-s", type=float, default=10.0,
                     metavar="S",
                     help="seconds between --metrics-file snapshots "
                          "(default 10)")
    srv.set_defaults(func=_cmd_serve)

    ev = sub.add_parser("evaluate", help="score a clustering vs ground truth")
    ev.add_argument("workload")
    ev.add_argument("result")
    ev.add_argument("--stats", action="store_true",
                    help="print the repro.obs per-phase time/counter table")
    ev.add_argument("--trace", default=None, metavar="FILE",
                    help="write hierarchical timing spans as JSONL to FILE")
    ev.set_defaults(func=_cmd_evaluate)

    ren = sub.add_parser("render", help="render a workload/clustering to SVG")
    ren.add_argument("workload")
    ren.add_argument("--result", default=None, help="clustering JSON to colour by")
    ren.add_argument("--width", type=int, default=800)
    ren.add_argument("--out", required=True)
    ren.set_defaults(func=_cmd_render)

    inf = sub.add_parser("info", help="summarise a workload file")
    inf.add_argument("workload")
    inf.set_defaults(func=_cmd_info)

    chk = sub.add_parser(
        "check", help="verify a disk network store's integrity"
    )
    chk.add_argument("store", help="network-store file built by NetworkStore")
    chk.add_argument("--index", default=None, metavar="FILE",
                     help="also verify a persisted landmark index: header, "
                          "every section CRC, and (when the store is "
                          "healthy) the content fingerprint binding it to "
                          "this store")
    chk.add_argument("--json", action="store_true",
                     help="emit findings as JSON instead of text")
    chk.set_defaults(func=_cmd_check)

    idx = sub.add_parser(
        "index",
        help="build / verify persisted landmark indexes (RLIX files)",
    )
    idx_sub = idx.add_subparsers(dest="index_command", required=True)
    idxb = idx_sub.add_parser(
        "build",
        help="precompute a landmark index once, offline, for --index",
    )
    idxb.add_argument("workload", help="workload JSON from `generate`")
    idxb.add_argument("--out", required=True, metavar="FILE",
                      help="output index file (written atomically)")
    idxb.add_argument("--landmarks", type=int, default=8, metavar="L",
                      help="landmarks to select (default 8; one Dijkstra "
                           "each at build time)")
    idxb.add_argument("--seed", type=int, default=0,
                      help="selection seed recorded in the artifact")
    idxb.add_argument("--stats", action="store_true",
                      help="print the repro.obs per-phase time/counter table")
    idxb.add_argument("--trace", default=None, metavar="FILE",
                      help="write hierarchical timing spans as JSONL to FILE")
    idxb.set_defaults(func=_cmd_index_build)
    idxc = idx_sub.add_parser(
        "check", help="verify a persisted landmark index's integrity"
    )
    idxc.add_argument("index", help="index file from `repro index build`")
    idxc.add_argument("--workload", default=None, metavar="FILE",
                      help="also validate the content fingerprint against "
                           "this workload JSON (without it the check is "
                           "structural only)")
    idxc.add_argument("--json", action="store_true",
                      help="emit findings as JSON instead of text")
    idxc.set_defaults(func=_cmd_index_check)

    walp = sub.add_parser(
        "wal",
        help="verify / replay serve-tier mutation logs (RWAL files)",
    )
    wal_sub = walp.add_subparsers(dest="wal_command", required=True)
    walv = wal_sub.add_parser(
        "verify",
        help="check a mutation log's integrity (header, per-record CRCs, "
             "sequence continuity, torn tail)",
    )
    walv.add_argument("log", help="mutation log from `repro serve --wal`")
    walv.add_argument("--json", action="store_true",
                      help="emit findings as JSON instead of text")
    walv.set_defaults(func=_cmd_wal_verify)
    walr = wal_sub.add_parser(
        "replay",
        help="replay a mutation log over a workload and report the "
             "resulting epoch and clustering",
    )
    walr.add_argument("log", help="mutation log from `repro serve --wal`")
    walr.add_argument("--workload", required=True, metavar="FILE",
                      help="the workload JSON the log's mutations apply to")
    walr.add_argument("--eps", type=float, default=1.0, metavar="E",
                      help="eps of the maintained ε-Link clustering "
                           "(default 1.0; must match the serving value)")
    walr.add_argument("--json", action="store_true",
                      help="emit the final state (including the full "
                           "cluster assignment) as JSON")
    walr.set_defaults(func=_cmd_wal_replay)

    rep = sub.add_parser(
        "repair", help="salvage a damaged network store into a clean copy"
    )
    rep.add_argument("store", help="damaged network-store file")
    rep.add_argument("--out", default=None,
                     help="rebuilt store path (default: STORE.repaired)")
    rep.add_argument("--page-size", type=int, default=None, metavar="N",
                     help="page-size hint when the header is unreadable")
    rep.add_argument("--json", action="store_true",
                     help="emit the repair report as JSON")
    rep.set_defaults(func=_cmd_repair)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
