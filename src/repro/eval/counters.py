"""Instrumentation: wall-clock timers and operation counters.

The paper's cost experiments report execution time on 2002-era hardware with
a real disk; this library reports both wall-clock time (Python, so absolute
numbers differ) and hardware-independent operation counts: heap operations,
nodes settled, edges relaxed, and — through the storage layer — page reads,
writes, and buffer hits.  The *shapes* of the paper's cost curves are
reproduced in terms of either measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "OpCounter", "StatsRegistry"]


class Stopwatch:
    """A simple cumulative wall-clock timer.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        delta = time.perf_counter() - self._started
        self.elapsed += delta
        self._started = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


@dataclass
class OpCounter:
    """Counts of the elementary operations performed by a traversal."""

    heap_pushes: int = 0
    heap_pops: int = 0
    nodes_settled: int = 0
    edges_relaxed: int = 0
    points_scanned: int = 0

    def reset(self) -> None:
        self.heap_pushes = 0
        self.heap_pops = 0
        self.nodes_settled = 0
        self.edges_relaxed = 0
        self.points_scanned = 0

    def as_dict(self) -> dict[int, int]:
        return {
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "nodes_settled": self.nodes_settled,
            "edges_relaxed": self.edges_relaxed,
            "points_scanned": self.points_scanned,
        }

    def __add__(self, other: "OpCounter") -> "OpCounter":
        return OpCounter(
            heap_pushes=self.heap_pushes + other.heap_pushes,
            heap_pops=self.heap_pops + other.heap_pops,
            nodes_settled=self.nodes_settled + other.nodes_settled,
            edges_relaxed=self.edges_relaxed + other.edges_relaxed,
            points_scanned=self.points_scanned + other.points_scanned,
        )


@dataclass
class StatsRegistry:
    """Named stopwatches and counters for a whole experiment run."""

    timers: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    def timer(self, name: str) -> Stopwatch:
        return self.timers.setdefault(name, Stopwatch())

    def counter(self, name: str) -> OpCounter:
        return self.counters.setdefault(name, OpCounter())

    def report(self) -> dict:
        """A flat, printable summary of all recorded statistics."""
        out: dict = {}
        for name, sw in self.timers.items():
            out[f"time.{name}"] = sw.elapsed
        for name, ctr in self.counters.items():
            for key, value in ctr.as_dict().items():
                out[f"ops.{name}.{key}"] = value
        return out
