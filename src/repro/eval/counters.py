"""Legacy instrumentation shims over :mod:`repro.obs`.

This module predates the unified observability subsystem; it is kept as a
thin compatibility layer so existing imports (``Stopwatch``, ``OpCounter``,
``StatsRegistry``) keep working.  New code should use :mod:`repro.obs`
directly: its counters, spans and reports are what the CLI's ``--stats`` /
``--trace`` flags and the benchmark metrics sidecars are built on.

* :class:`Stopwatch` is re-exported from :mod:`repro.obs.timing` unchanged.
* :class:`OpCounter` remains a plain dataclass of traversal counts, with
  :meth:`OpCounter.publish` to fold its values into the global registry
  under the ``dijkstra.*``-style namespace.
* :class:`StatsRegistry` keeps its named-timers/named-counters API and
  gains :meth:`StatsRegistry.publish` to mirror everything it recorded into
  :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.obs.timing import Stopwatch

__all__ = ["Stopwatch", "OpCounter", "StatsRegistry"]


@dataclass
class OpCounter:
    """Counts of the elementary operations performed by a traversal."""

    heap_pushes: int = 0
    heap_pops: int = 0
    nodes_settled: int = 0
    edges_relaxed: int = 0
    points_scanned: int = 0

    def reset(self) -> None:
        self.heap_pushes = 0
        self.heap_pops = 0
        self.nodes_settled = 0
        self.edges_relaxed = 0
        self.points_scanned = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "nodes_settled": self.nodes_settled,
            "edges_relaxed": self.edges_relaxed,
            "points_scanned": self.points_scanned,
        }

    def publish(self, prefix: str) -> None:
        """Fold these counts into :mod:`repro.obs` as ``<prefix>.<field>``
        (a no-op while observability is disabled)."""
        for key, value in self.as_dict().items():
            if value:
                obs.add(f"{prefix}.{key}", value)

    def __add__(self, other: "OpCounter") -> "OpCounter":
        return OpCounter(
            heap_pushes=self.heap_pushes + other.heap_pushes,
            heap_pops=self.heap_pops + other.heap_pops,
            nodes_settled=self.nodes_settled + other.nodes_settled,
            edges_relaxed=self.edges_relaxed + other.edges_relaxed,
            points_scanned=self.points_scanned + other.points_scanned,
        )


@dataclass
class StatsRegistry:
    """Named stopwatches and counters for a whole experiment run.

    A local registry: several experiments can record independently and only
    :meth:`publish` merges a run into the process-global :mod:`repro.obs`
    namespace.
    """

    timers: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    def timer(self, name: str) -> Stopwatch:
        return self.timers.setdefault(name, Stopwatch())

    def counter(self, name: str) -> OpCounter:
        return self.counters.setdefault(name, OpCounter())

    def report(self) -> dict:
        """A flat, printable summary of all recorded statistics."""
        out: dict = {}
        for name, sw in self.timers.items():
            out[f"time.{name}"] = sw.elapsed
        for name, ctr in self.counters.items():
            for key, value in ctr.as_dict().items():
                out[f"ops.{name}.{key}"] = value
        return out

    def publish(self) -> None:
        """Mirror every recorded counter into :mod:`repro.obs` under
        ``ops.<name>.<field>`` (timers are not mirrored: wall-clock belongs
        to spans, which carry hierarchy this registry lacks)."""
        for name, ctr in self.counters.items():
            ctr.publish(f"ops.{name}")
