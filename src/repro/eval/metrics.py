"""Cluster-quality metrics.

The paper evaluates effectiveness visually (Figure 11); to make that
experiment quantitative and automatically checkable, this module provides
the standard external clustering indices — Adjusted Rand Index, Normalised
Mutual Information, and purity — plus the paper's own internal evaluation
function ``R`` for k-medoids partitions (sum of distances from every point
to its cluster medoid).

Labelling conventions
---------------------
Cluster assignments are mappings ``point_id -> label``.  The special label
``NOISE`` (= -1) marks outliers/noise; how it is treated is controlled per
metric via the ``noise`` argument:

* ``"label"`` (default): noise is one ordinary label value, so two
  clusterings agree when they declare the same points noise;
* ``"drop"``: points marked noise in *either* clustering are excluded.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Mapping

from repro.exceptions import ParameterError

__all__ = [
    "NOISE",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "purity",
    "confusion_counts",
    "medoid_evaluation",
]

NOISE = -1


def _aligned_label_lists(
    truth: Mapping[int, int],
    predicted: Mapping[int, int],
    noise: str,
) -> tuple[list[int], list[int]]:
    """Align two assignments over their common point ids."""
    if noise not in ("label", "drop"):
        raise ParameterError(f"noise must be 'label' or 'drop', got {noise!r}")
    common = truth.keys() & predicted.keys()
    if len(common) != len(truth) or len(common) != len(predicted):
        raise ParameterError(
            "clusterings cover different point sets "
            f"({len(truth)} vs {len(predicted)} points, {len(common)} shared)"
        )
    a: list[int] = []
    b: list[int] = []
    for pid in common:
        ta, tb = truth[pid], predicted[pid]
        if noise == "drop" and (ta == NOISE or tb == NOISE):
            continue
        a.append(ta)
        b.append(tb)
    return a, b


def confusion_counts(
    truth: Mapping[int, int],
    predicted: Mapping[int, int],
    noise: str = "label",
) -> dict[tuple[int, int], int]:
    """Contingency table: count of points per (truth label, predicted label)."""
    a, b = _aligned_label_lists(truth, predicted, noise)
    return dict(Counter(zip(a, b)))


def adjusted_rand_index(
    truth: Mapping[int, int],
    predicted: Mapping[int, int],
    noise: str = "label",
) -> float:
    """Adjusted Rand Index in [-1, 1]; 1 means identical partitions.

    Chance-corrected agreement between two partitions (Hubert & Arabie).
    """
    a, b = _aligned_label_lists(truth, predicted, noise)
    n = len(a)
    if n <= 1:
        return 1.0
    contingency = Counter(zip(a, b))
    row_sums = Counter(a)
    col_sums = Counter(b)

    def comb2(x: int) -> float:
        return x * (x - 1) / 2.0

    sum_comb = sum(comb2(c) for c in contingency.values())
    sum_rows = sum(comb2(c) for c in row_sums.values())
    sum_cols = sum(comb2(c) for c in col_sums.values())
    total = comb2(n)
    expected = sum_rows * sum_cols / total if total else 0.0
    max_index = (sum_rows + sum_cols) / 2.0
    if max_index == expected:
        return 1.0
    return (sum_comb - expected) / (max_index - expected)


def normalized_mutual_information(
    truth: Mapping[int, int],
    predicted: Mapping[int, int],
    noise: str = "label",
) -> float:
    """NMI in [0, 1] with arithmetic-mean normalisation; 1 means identical."""
    a, b = _aligned_label_lists(truth, predicted, noise)
    n = len(a)
    if n == 0:
        return 1.0
    contingency = Counter(zip(a, b))
    pa = Counter(a)
    pb = Counter(b)
    mi = 0.0
    for (la, lb), count in contingency.items():
        p_joint = count / n
        mi += p_joint * math.log(p_joint * n * n / (pa[la] * pb[lb]))

    def entropy(counts: Counter) -> float:
        return -sum((c / n) * math.log(c / n) for c in counts.values())

    ha, hb = entropy(pa), entropy(pb)
    if ha == 0.0 and hb == 0.0:
        return 1.0
    denom = (ha + hb) / 2.0
    if denom == 0.0:
        return 0.0
    return max(0.0, min(1.0, mi / denom))


def purity(
    truth: Mapping[int, int],
    predicted: Mapping[int, int],
    noise: str = "label",
) -> float:
    """Fraction of points whose predicted cluster's majority truth label
    matches their own truth label.  In (0, 1]; 1 means every predicted
    cluster is pure."""
    a, b = _aligned_label_lists(truth, predicted, noise)
    n = len(a)
    if n == 0:
        return 1.0
    per_cluster: dict[int, Counter] = {}
    for ta, tb in zip(a, b):
        per_cluster.setdefault(tb, Counter())[ta] += 1
    correct = sum(counts.most_common(1)[0][1] for counts in per_cluster.values())
    return correct / n


def medoid_evaluation(distances_to_medoid: Mapping[int, float]) -> float:
    """The paper's evaluation function ``R`` for a k-medoids partitioning.

    ``R({(C_i, m_i)}) = sum over clusters of sum over points p in C_i of
    d(p, m_i)`` — simply the sum of the supplied per-point distances.  Lower
    is better.
    """
    return sum(distances_to_medoid.values())
