"""Evaluation utilities: clustering quality metrics and instrumentation."""

from repro.eval.counters import OpCounter, StatsRegistry, Stopwatch
from repro.eval.params import estimate_delta, estimate_eps, knn_distance_sample
from repro.eval.metrics import (
    NOISE,
    adjusted_rand_index,
    confusion_counts,
    medoid_evaluation,
    normalized_mutual_information,
    purity,
)

__all__ = [
    "estimate_delta",
    "estimate_eps",
    "knn_distance_sample",
    "OpCounter",
    "StatsRegistry",
    "Stopwatch",
    "NOISE",
    "adjusted_rand_index",
    "confusion_counts",
    "medoid_evaluation",
    "normalized_mutual_information",
    "purity",
]
