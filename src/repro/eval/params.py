"""Data-driven parameter selection for the clustering algorithms.

The paper leaves ε and δ to the analyst: "An appropriate value for ε may be
hard to determine a priori.  A possible way to solve this problem is to use
a value determined by the user's experience, or by sampling on the network
edges", and for Single-Link "an appropriate value of δ can be chosen by
sampling on the dense edges of the network".  This module implements that
sampling:

* :func:`estimate_eps` — sample objects, measure each one's distance to its
  ``min_pts``-th network neighbour, and return a high quantile of the
  distribution: an ε that keeps dense regions connected while excluding the
  tail of isolated objects (the classic k-distance heuristic, evaluated
  with *network* distances).
* :func:`estimate_delta` — a low quantile of nearest-neighbour gaps on the
  populated edges: a δ small enough to only pre-merge points that belong
  together at any interesting resolution.
* :func:`knn_distance_sample` — the raw sampled distribution, for k-distance
  plots.
"""

from __future__ import annotations

import math
import random

from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.points import PointSet
from repro.network.queries import knn_query

__all__ = ["knn_distance_sample", "estimate_eps", "estimate_delta"]


def knn_distance_sample(
    network,
    points: PointSet,
    k: int = 1,
    sample_size: int = 200,
    seed: int | None = None,
) -> list[float]:
    """Distances from sampled objects to their k-th network neighbour.

    Sorted ascending; objects with fewer than ``k`` reachable neighbours
    contribute infinity.  This is the data behind a k-distance plot.
    """
    if k < 1:
        raise ParameterError(f"k must be >= 1, got {k!r}")
    if sample_size < 1:
        raise ParameterError(f"sample_size must be >= 1, got {sample_size!r}")
    ids = sorted(points.point_ids())
    if not ids:
        return []
    rng = random.Random(seed)
    if len(ids) > sample_size:
        ids = rng.sample(ids, sample_size)
    aug = AugmentedView(network, points)
    out: list[float] = []
    for pid in ids:
        hits = knn_query(aug, points.get(pid), k=k)
        if len(hits) < k:
            out.append(math.inf)
        else:
            out.append(hits[-1][1])
    out.sort()
    return out


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        raise ParameterError("cannot take a quantile of an empty sample")
    idx = min(len(sorted_values) - 1, max(0, int(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def estimate_eps(
    network,
    points: PointSet,
    min_pts: int = 2,
    quantile: float = 0.90,
    safety: float = 2.0,
    sample_size: int = 200,
    seed: int | None = None,
) -> float:
    """A chaining radius ε estimated from the data.

    ``safety`` times the ``quantile`` of the (min_pts - 1)-th neighbour
    distances over a sample of objects (the k-distance heuristic with
    network distances).  The safety factor accounts for nearest-neighbour
    distances understating chain gaps: inside a chain of points, each
    object's nearest neighbour sits on its *closer* side, roughly half the
    largest gap ε must bridge.  Keep ``quantile`` below the expected inlier
    fraction so the outlier tail (whose k-distances are the inter-cluster
    distances) does not inflate the estimate.
    """
    if not 0 < quantile <= 1:
        raise ParameterError(f"quantile must be in (0, 1], got {quantile!r}")
    if min_pts < 2:
        raise ParameterError(f"min_pts must be >= 2, got {min_pts!r}")
    if safety <= 0:
        raise ParameterError(f"safety must be positive, got {safety!r}")
    sample = knn_distance_sample(
        network, points, k=min_pts - 1, sample_size=sample_size, seed=seed
    )
    finite = [d for d in sample if math.isfinite(d)]
    if not finite:
        raise ParameterError("no finite neighbour distances in the sample")
    return safety * _quantile(finite, quantile)


def estimate_delta(
    network,
    points: PointSet,
    quantile: float = 0.25,
    sample_size: int = 200,
    seed: int | None = None,
) -> float:
    """A Single-Link pre-merge threshold δ estimated from the data.

    A low quantile of nearest-neighbour distances: gaps this small occur
    only inside dense cluster cores, so pre-merging them cannot erase any
    structure an analyst would cut at ("dense clusters for distances ε > δ
    will still be discovered").
    """
    if not 0 < quantile <= 1:
        raise ParameterError(f"quantile must be in (0, 1], got {quantile!r}")
    sample = knn_distance_sample(
        network, points, k=1, sample_size=sample_size, seed=seed
    )
    finite = [d for d in sample if math.isfinite(d)]
    if not finite:
        raise ParameterError("no finite neighbour distances in the sample")
    return _quantile(finite, quantile)
