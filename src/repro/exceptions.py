"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses distinguish the main
failure categories: malformed network data, invalid object placements,
unreachable shortest-path queries, bad algorithm parameters, and storage-layer
corruption.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetworkError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "InvalidWeightError",
    "MissingCoordinatesError",
    "StaleBackendError",
    "PointError",
    "PointNotFoundError",
    "InvalidPositionError",
    "UnreachableError",
    "ParameterError",
    "Interrupted",
    "BudgetExceededError",
    "DeadlineExceeded",
    "Cancelled",
    "Overloaded",
    "CircuitOpenError",
    "WorkerCrashed",
    "PoisonRequest",
    "StorageError",
    "PageError",
    "ChecksumError",
    "PageCorruptError",
    "CorruptRecordError",
    "IndexCorruptError",
    "IndexStaleError",
    "TreeError",
    "RecoveryError",
    "CheckpointError",
    "RepairError",
    "WalCorruptError",
    "MutationConflict",
    "ReplayError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Base class for errors relating to the spatial network structure."""


class NodeNotFoundError(NetworkError, KeyError):
    """A referenced node id does not exist in the network."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} does not exist in the network")
        self.node = node


class EdgeNotFoundError(NetworkError, KeyError):
    """A referenced edge does not exist in the network."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) does not exist in the network")
        self.edge = (u, v)


class InvalidWeightError(NetworkError, ValueError):
    """An edge weight is not a positive finite real number."""


class MissingCoordinatesError(NetworkError):
    """A node exists but carries no planar coordinates.

    Raised by ``node_coords`` accessors.  Kept distinct from
    :class:`NodeNotFoundError` (and from injected I/O faults) so callers
    that degrade gracefully without coordinates — e.g. the A* heuristic
    falling back to h = 0 — can catch exactly this condition and let every
    real failure propagate.
    """

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node} has no coordinates")
        self.node = node


class StaleBackendError(NetworkError):
    """A frozen backend's source network mutated after the freeze.

    Raised by :class:`~repro.network.csr.CSRNetwork` when the
    :class:`~repro.network.graph.SpatialNetwork` it was frozen from has
    been structurally modified since: serving distances off the stale
    arrays would silently disagree with the live network, so every public
    accessor fails loudly instead.  Re-freeze the network to continue.
    """


class PointError(ReproError):
    """Base class for errors relating to objects placed on the network."""


class PointNotFoundError(PointError, KeyError):
    """A referenced point id does not exist in the point set."""

    def __init__(self, point_id: int) -> None:
        super().__init__(f"point {point_id!r} does not exist in the point set")
        self.point_id = point_id


class InvalidPositionError(PointError, ValueError):
    """A point position (edge, offset) is outside the edge it refers to."""


class UnreachableError(ReproError):
    """A shortest-path query between disconnected network locations."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (e.g. k < 1, eps <= 0)."""


class Interrupted(ReproError):
    """Base class for *clean typed interrupts* of a long-running computation.

    An interrupt is not a failure: the run was stopped on purpose — by an
    operation budget (:class:`BudgetExceededError`), a wall-clock deadline
    (:class:`DeadlineExceeded`), or an external cancellation such as SIGTERM
    (:class:`Cancelled`).  All three share one contract:

    * no shared state is corrupted — the abort happens at a cooperative
      checkpoint, between mutations;
    * any periodic checkpoint snapshot taken so far remains valid, so the
      run can be resumed with ``--resume`` to an identical result;
    * the CLI maps every :class:`Interrupted` to exit code 3.

    Attributes
    ----------
    partial:
        Best-effort partial progress at interrupt time (e.g. the distances
        settled by an interrupted Dijkstra); may be ``None``.
    algorithm:
        Set by :meth:`repro.core.NetworkClusterer.run` when the interrupt
        surfaced through a clustering run.
    """

    partial: object | None = None
    algorithm: str | None = None


class BudgetExceededError(Interrupted):
    """An operation budget (:class:`repro.faults.OpBudget`) was exhausted.

    Raised by traversal and clustering code when a caller-imposed limit on
    expansions, distance computations, or page reads is hit.  The abort is
    *clean*: no shared state is corrupted, and the exception carries what was
    computed so far.

    Attributes
    ----------
    op:
        The exhausted operation class (``"expansions"``,
        ``"distance_computations"``, ``"page_reads"``).
    limit / spent:
        The configured ceiling and the count that tripped it.
    partial:
        Best-effort partial state at abort time (e.g. the distances settled
        by an interrupted Dijkstra); may be ``None``.
    algorithm:
        Set by :meth:`repro.core.NetworkClusterer.run` when the abort
        surfaced through a clustering run.
    """

    def __init__(
        self,
        op: str,
        limit: int,
        spent: int,
        partial: object | None = None,
    ) -> None:
        super().__init__(
            f"operation budget exhausted: {op} limit {limit} reached "
            f"(spent {spent})"
        )
        self.op = op
        self.limit = limit
        self.spent = spent
        self.partial = partial
        self.algorithm: str | None = None


class DeadlineExceeded(Interrupted):
    """A wall-clock deadline (:class:`repro.resilience.Deadline`) expired.

    Raised at a cooperative checkpoint inside a traversal or clustering
    loop once the deadline's monotonic-clock budget is spent.

    Attributes
    ----------
    site:
        The cooperative checkpoint that observed the expiry (same naming
        scheme as fault-injection sites, e.g. ``"dijkstra.settle"``).
    timeout_s / elapsed_s:
        The configured budget and the time actually consumed.
    checks:
        Number of cooperative checks the deadline performed before expiry —
        a cheap progress measure that is deterministic across runs.
    """

    def __init__(
        self,
        site: str,
        timeout_s: float,
        elapsed_s: float,
        checks: int = 0,
        partial: object | None = None,
    ) -> None:
        super().__init__(
            f"deadline exceeded at {site}: {elapsed_s:.3f}s elapsed of "
            f"{timeout_s:.3f}s budget ({checks} cooperative checks)"
        )
        self.site = site
        self.timeout_s = timeout_s
        self.elapsed_s = elapsed_s
        self.checks = checks
        self.partial = partial
        self.algorithm: str | None = None


class Cancelled(Interrupted):
    """The run was cancelled externally (CancelToken, SIGTERM, shutdown).

    Attributes
    ----------
    reason:
        Why the token was cancelled (e.g. ``"SIGTERM"``, ``"shutdown"``).
    site:
        The cooperative checkpoint that observed the cancellation, or ``""``
        when the cancellation was raised outside a traversal loop.
    """

    def __init__(
        self,
        reason: str = "cancelled",
        site: str = "",
        partial: object | None = None,
    ) -> None:
        where = f" at {site}" if site else ""
        super().__init__(f"cancelled{where}: {reason}")
        self.reason = reason
        self.site = site
        self.partial = partial
        self.algorithm: str | None = None


class Overloaded(ReproError):
    """A request was shed because the service admission queue is full.

    Load-shedding rejection from :class:`repro.serve.QueryService`: the
    bounded queue already holds ``queue_depth`` requests, so admitting more
    would only grow latency unboundedly.  The caller should back off and
    retry; nothing was executed.
    """

    def __init__(self, queue_depth: int) -> None:
        super().__init__(
            f"service overloaded: admission queue full ({queue_depth} pending)"
        )
        self.queue_depth = queue_depth


class CircuitOpenError(ReproError):
    """A call was rejected because a circuit breaker is open.

    The protected dependency (e.g. the pager read path) failed persistently,
    so the breaker fails fast instead of retrying every call.  Carries how
    long until the breaker will allow a probe again.
    """

    def __init__(self, name: str, site: str, retry_after_s: float) -> None:
        super().__init__(
            f"circuit breaker {name!r} is open at {site}: "
            f"failing fast (probe allowed in {max(retry_after_s, 0.0):.3f}s)"
        )
        self.name = name
        self.site = site
        self.retry_after_s = retry_after_s


class WorkerCrashed(ReproError):
    """The worker process executing a request died before answering.

    Raised by the supervised multi-process pool
    (:class:`repro.serve.SupervisedPool`) when a worker exits — SIGKILL,
    OOM, segfault-class bug — while holding a request that cannot be
    safely retried on another worker (or whose one failover retry is not
    available).  The request may or may not have had side effects on the
    worker; nothing was corrupted in the shared store, which is opened
    read-only by every worker.

    Attributes
    ----------
    request_id:
        The client-chosen ``id`` of the doomed request, if any.
    pid:
        Process id of the worker that died, when known.
    """

    def __init__(self, detail: str, request_id: object = None,
                 pid: int | None = None) -> None:
        super().__init__(f"worker crashed while executing request: {detail}")
        self.request_id = request_id
        self.pid = pid


class PoisonRequest(ReproError):
    """A request whose execution has repeatedly killed worker processes.

    The supervised pool fingerprints every request that is in flight when
    a worker dies; once the same fingerprint has killed workers twice it
    is *quarantined* — rejected immediately with this error instead of
    being allowed to cycle the whole pool through crash/restart.

    Attributes
    ----------
    fingerprint:
        The canonical request fingerprint (id/trace fields stripped).
    deaths:
        How many worker deaths this fingerprint has caused.
    """

    def __init__(self, fingerprint: str, deaths: int) -> None:
        super().__init__(
            f"request quarantined as poison after killing {deaths} "
            f"worker(s): {fingerprint}"
        )
        self.fingerprint = fingerprint
        self.deaths = deaths


class StorageError(ReproError):
    """Base class for disk-storage-layer errors."""


class PageError(StorageError):
    """A page id is out of range or a page is corrupt."""


class ChecksumError(StorageError):
    """Stored data failed its integrity checksum.

    Base class for corruption detected by the per-page CRC32 trailer; what
    was read from disk does not match what was written, so the content must
    not be trusted (torn write, bit rot, or external modification).
    """


class PageCorruptError(ChecksumError, PageError):
    """A page's CRC32 trailer does not match its contents.

    Carries the page id and the byte offset of the physical page in the
    file, so corruption can be located with a hex editor or ``repro check``.
    """

    def __init__(self, page_id: int, offset: int, path: str = "", reason: str = "") -> None:
        where = f"{path}: " if path else ""
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"{where}page {page_id} at file offset {offset} is corrupt{detail}"
        )
        self.page_id = page_id
        self.offset = offset
        self.path = path


class CorruptRecordError(StorageError):
    """A stored record decodes to an impossible structure.

    Raised when a record's own length/count fields are inconsistent (e.g. an
    adjacency record whose neighbour count overruns the record) — logical
    corruption that a page checksum cannot catch because the page itself was
    written that way.
    """


class IndexCorruptError(ChecksumError):
    """A persisted landmark index (``RLIX`` file) failed integrity checks.

    Raised by :func:`repro.perf.load_index` when the header or a section
    CRC32 does not match, the file is truncated or uncommitted, the magic
    is foreign, or the decoded metadata is structurally impossible.  The
    artifact must not serve bounds; consumers degrade to the unaccelerated
    path (see :func:`repro.perf.load_index_or_degrade`) or rebuild with
    ``repro index build``.
    """


class IndexStaleError(StorageError):
    """A persisted landmark index does not belong to the served network.

    The file itself is intact — header, CRCs, and layout all check out —
    but its recorded content fingerprint does not match the network it is
    being loaded against, or it was written by a different ``RLIX`` format
    version.  Serving its bounds could silently return wrong query
    results, so the load is refused; rebuild with ``repro index build``.
    """


class TreeError(StorageError):
    """A structural invariant of a disk-based B+-tree was violated."""


class RecoveryError(ReproError):
    """Base class for errors in the recovery layer (:mod:`repro.recovery`)."""


class CheckpointError(RecoveryError):
    """A checkpoint file is damaged, truncated, or incompatible.

    Raised by :func:`repro.recovery.load_checkpoint` when the snapshot's
    magic, version, length, or CRC32 trailer does not check out, or when a
    resume is attempted against a workload/algorithm that does not match
    the checkpoint's recorded metadata.
    """


class RepairError(RecoveryError):
    """A store salvage pass could not produce a usable result."""


class WalCorruptError(ChecksumError):
    """A write-ahead mutation log (``RWAL`` file) failed integrity checks.

    Raised by :class:`repro.live.WriteAheadLog` when the header or a record
    CRC32 does not match *before* the final record, the magic is foreign,
    the format version skews, or record sequence numbers are discontinuous.
    Damage confined to the final record is not corruption — fsync-before-ack
    means a torn tail is the expected residue of a crash, and it is
    truncated away on open instead of raising.
    """


class MutationConflict(ReproError):
    """A live mutation references state that contradicts the served world.

    Raised *before* the mutation reaches the write-ahead log — inserting a
    point with an id that already exists, removing an unknown point, or
    reweighing an edge that is not in the network.  Nothing was logged or
    applied; the serve tier maps it to a client error, not a crash.

    Attributes
    ----------
    kind:
        The mutation kind (``"insert_point"`` / ``"remove_point"`` /
        ``"reweigh_edge"``).
    """

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"{kind} conflicts with the served state: {detail}")
        self.kind = kind


class ReplayError(RecoveryError):
    """WAL replay could not bring a session to the required epoch.

    Raised when applying a logged mutation fails against the rebuilt state,
    when a replay observes a sequence gap, or when a worker's log ends
    before the pool epoch it was told to reach — the worker must not report
    ready (and never serve) from a stale world.
    """
