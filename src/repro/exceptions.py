"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses distinguish the main
failure categories: malformed network data, invalid object placements,
unreachable shortest-path queries, bad algorithm parameters, and storage-layer
corruption.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NetworkError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "InvalidWeightError",
    "PointError",
    "PointNotFoundError",
    "InvalidPositionError",
    "UnreachableError",
    "ParameterError",
    "StorageError",
    "PageError",
    "TreeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetworkError(ReproError):
    """Base class for errors relating to the spatial network structure."""


class NodeNotFoundError(NetworkError, KeyError):
    """A referenced node id does not exist in the network."""

    def __init__(self, node: int) -> None:
        super().__init__(f"node {node!r} does not exist in the network")
        self.node = node


class EdgeNotFoundError(NetworkError, KeyError):
    """A referenced edge does not exist in the network."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) does not exist in the network")
        self.edge = (u, v)


class InvalidWeightError(NetworkError, ValueError):
    """An edge weight is not a positive finite real number."""


class PointError(ReproError):
    """Base class for errors relating to objects placed on the network."""


class PointNotFoundError(PointError, KeyError):
    """A referenced point id does not exist in the point set."""

    def __init__(self, point_id: int) -> None:
        super().__init__(f"point {point_id!r} does not exist in the point set")
        self.point_id = point_id


class InvalidPositionError(PointError, ValueError):
    """A point position (edge, offset) is outside the edge it refers to."""


class UnreachableError(ReproError):
    """A shortest-path query between disconnected network locations."""


class ParameterError(ReproError, ValueError):
    """An algorithm parameter is invalid (e.g. k < 1, eps <= 0)."""


class StorageError(ReproError):
    """Base class for disk-storage-layer errors."""


class PageError(StorageError):
    """A page id is out of range or a page is corrupt."""


class TreeError(StorageError):
    """A structural invariant of a disk-based B+-tree was violated."""
