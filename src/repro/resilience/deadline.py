"""Deadlines and cooperative cancellation for long-running traversals.

The paper's algorithms all reduce to long graph traversals; a single slow
Dijkstra expansion can only be bounded by coarse operation budgets
(:class:`repro.faults.OpBudget`).  This module adds the wall-clock
equivalent: a :class:`Deadline` carries a monotonic-clock budget plus an
optional external :class:`CancelToken`, and the hot loops call a *cheap
cooperative checkpoint* (:func:`check`) that raises a typed
:class:`~repro.exceptions.DeadlineExceeded` / :class:`~repro.exceptions.Cancelled`
the moment the budget is spent or the token trips.

Zero overhead while disarmed
----------------------------
The same discipline as :mod:`repro.faults` and :mod:`repro.obs`: a
process-global :data:`STATE` holds an ``engaged`` count of active
deadlines.  Hot loops read ``STATE.engaged`` once on entry (dijkstra's
twin-loop dispatch) or per iteration behind an existing guard; while no
deadline is active anywhere in the process this costs one attribute check
and the traversal bytecode is otherwise unchanged.

Propagation
-----------
The *active* deadline is tracked in a :mod:`contextvars` ``ContextVar``, so
it flows naturally into nested calls (clustering -> range query ->
Dijkstra -> pager) and is isolated per thread: each worker of
:class:`repro.serve.QueryService` activates its request's deadline without
seeing its neighbours'.  Cooperative checkpoints observe whichever deadline
is active in their context — traversal code never threads deadline
arguments through its signatures.

Interrupts compose with checkpoint/resume: a timed-out clustering run
leaves its periodic snapshot in place (the interrupt is raised *between*
state mutations, at the same sites the crash-injection sweep exercises),
so ``--resume`` completes it identically to an uninterrupted run.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Callable

from repro.exceptions import Cancelled, DeadlineExceeded, ParameterError
from repro.obs.core import add as _obs_add

__all__ = [
    "CancelToken",
    "Deadline",
    "ResilienceState",
    "STATE",
    "check",
    "current",
]


class ResilienceState:
    """Process-global armed/disarmed switch for cooperative checkpoints.

    ``engaged`` counts deadlines currently active in *any* context; hot
    loops treat it as a boolean.  Mutated only under :data:`_ENGAGE_LOCK`
    (activation is rare), read lock-free (it is a single int).
    """

    __slots__ = ("engaged",)

    def __init__(self) -> None:
        self.engaged = 0


STATE = ResilienceState()

_ENGAGE_LOCK = threading.Lock()

_ACTIVE: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_resilience_deadline", default=None
)


class CancelToken:
    """A thread-safe, one-shot cancellation flag.

    The first :meth:`cancel` wins and records its ``reason``; later calls
    are no-ops.  Checking is a single ``Event.is_set`` — cheap enough for
    traversal inner loops.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def cancel(self, reason: str = "cancelled") -> bool:
        """Trip the token.  Returns True iff this call did the tripping."""
        if self._event.is_set():
            return False
        # Publish the reason before the flag so a concurrent reader that
        # sees ``cancelled`` also sees a reason.
        self.reason = reason
        self._event.set()
        return True

    def raise_if_cancelled(
        self, site: str = "", partial: object | None = None
    ) -> None:
        if self._event.is_set():
            _obs_add("resilience.cancelled")
            raise Cancelled(self.reason or "cancelled", site=site, partial=partial)


class Deadline:
    """A monotonic-clock budget plus an optional external cancel switch.

    Parameters
    ----------
    timeout_s:
        Wall-clock budget in seconds, measured from construction.  ``None``
        means no time limit (the deadline then only propagates its token).
        ``0`` is legal and expires at the first cooperative check — the
        canonical "unmeetable deadline".
    token:
        External :class:`CancelToken`; one is created when not supplied, so
        :meth:`cancel` always works.
    clock:
        Injectable monotonic clock (seconds).  Tests substitute
        :class:`~repro.resilience.clock.VirtualClock` /
        :class:`~repro.resilience.clock.TickingClock` for determinism.
    """

    __slots__ = ("timeout_s", "token", "checks", "_clock", "_started_at", "_expires_at")

    def __init__(
        self,
        timeout_s: float | None = None,
        *,
        token: CancelToken | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout_s is not None and timeout_s < 0:
            raise ParameterError(f"timeout_s must be >= 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self.token = token if token is not None else CancelToken()
        self.checks = 0
        self._clock = clock
        self._started_at = clock()
        self._expires_at = (
            None if timeout_s is None else self._started_at + timeout_s
        )

    def elapsed(self) -> float:
        return self._clock() - self._started_at

    def remaining(self) -> float:
        """Seconds left in the budget; ``inf`` when there is no time limit."""
        if self._expires_at is None:
            return float("inf")
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self._expires_at is not None and self._clock() >= self._expires_at

    def cancel(self, reason: str = "cancelled") -> bool:
        return self.token.cancel(reason)

    def check(self, site: str, partial: object | None = None) -> None:
        """Cooperative checkpoint: raise if cancelled or out of budget.

        ``partial`` is attached to the raised interrupt as best-effort
        partial progress (e.g. the settled-distance map of an interrupted
        Dijkstra).  Deterministic: the check count, not wall time, is what
        tests drive via an injected clock.
        """
        self.checks += 1
        token = self.token
        if token._event.is_set():
            _obs_add("resilience.cancelled")
            raise Cancelled(
                token.reason or "cancelled", site=site, partial=partial
            )
        expires_at = self._expires_at
        if expires_at is not None:
            now = self._clock()
            if now >= expires_at:
                _obs_add("resilience.deadline_exceeded")
                raise DeadlineExceeded(
                    site,
                    self.timeout_s,
                    now - self._started_at,
                    checks=self.checks,
                    partial=partial,
                )

    @contextmanager
    def activate(self) -> Iterator[Deadline]:
        """Install as the context's active deadline and arm the checkpoints."""
        saved = _ACTIVE.set(self)
        with _ENGAGE_LOCK:
            STATE.engaged += 1
        try:
            yield self
        finally:
            with _ENGAGE_LOCK:
                STATE.engaged -= 1
            _ACTIVE.reset(saved)


def current() -> Deadline | None:
    """The deadline active in this context, if any."""
    return _ACTIVE.get()


def check(site: str, partial: object | None = None) -> None:
    """Module-level cooperative checkpoint.

    The one call traversal code makes.  Disarmed (no active deadline
    anywhere) it is an attribute check and a return; armed, it defers to
    the context's active deadline — a deadline activated in thread A is
    invisible to thread B's checkpoints.
    """
    if not STATE.engaged:
        return
    deadline = _ACTIVE.get()
    if deadline is not None:
        deadline.check(site, partial)
