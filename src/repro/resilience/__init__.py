"""Runtime resilience: deadlines, cancellation, and circuit breaking.

This package hardens the *runtime* the way :mod:`repro.recovery` hardened
the *storage* layer.  Three primitives:

* :class:`Deadline` / :class:`CancelToken` — wall-clock budgets and
  external cancellation, propagated by contextvar and observed at cheap
  cooperative checkpoints inside every traversal and clustering hot loop.
  Expiry raises the typed interrupts
  :class:`~repro.exceptions.DeadlineExceeded` /
  :class:`~repro.exceptions.Cancelled`, which compose with
  checkpoint/resume (a timed-out run resumes like a crashed one).
* :class:`CircuitBreaker` — closed/open/half-open protection for the pager
  read path, failing persistently-broken stores fast with
  :class:`~repro.exceptions.CircuitOpenError` instead of grinding through
  the retry schedule on every page.  Installed with :func:`breaking`.
* Deterministic clocks (:class:`VirtualClock`, :class:`TickingClock`) so
  every time-dependent behaviour above is testable without sleeping.

See ``docs/resilience.md`` for the full model, and :mod:`repro.serve` for
the admission-controlled query service built on these pieces.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    STATE_CODES,
    CircuitBreaker,
    breaking,
    installed_state_code,
)
from repro.resilience.clock import TickingClock, VirtualClock
from repro.resilience.deadline import (
    CancelToken,
    Deadline,
    check,
    current,
)

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "STATE_CODES",
    "CancelToken",
    "CircuitBreaker",
    "Deadline",
    "TickingClock",
    "VirtualClock",
    "breaking",
    "check",
    "current",
    "installed_state_code",
]
