"""Deterministic clocks for testing time-dependent resilience machinery.

Every component in :mod:`repro.resilience` (deadlines, circuit breakers)
and the ``delay`` fault kind takes an injectable clock so tests can drive
time deterministically instead of sleeping.  Two fakes cover the needs:

* :class:`VirtualClock` — a monotonic clock whose ``sleep`` advances time
  instantly.  Install its ``monotonic`` as a deadline/breaker clock and its
  ``sleep`` as the fault-injection sleep, and injected delays expire
  deadlines and age breakers with zero wall-clock cost, fully
  deterministically.
* :class:`TickingClock` — advances by a fixed step on *every read*.  A
  :class:`~repro.resilience.Deadline` built on it expires at exactly the
  N-th cooperative check, which is how the cancel-anywhere property tests
  pick an arbitrary checkpoint deterministically.
"""

from __future__ import annotations

import threading

__all__ = ["TickingClock", "VirtualClock"]


class VirtualClock:
    """A thread-safe monotonic clock where ``sleep`` advances virtual time.

    >>> vc = VirtualClock()
    >>> vc.monotonic()
    0.0
    >>> vc.sleep(2.5)
    >>> vc.monotonic()
    2.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def monotonic(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot move a monotonic clock backwards")
        with self._lock:
            self._now += seconds

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)


class TickingClock:
    """A clock that advances ``step`` seconds every time it is read.

    Reads are counted, so ``Deadline(timeout_s=N, clock=TickingClock())``
    expires on its N-th cooperative check — the deterministic lever used by
    the cancel-at-arbitrary-checkpoint property tests.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        self._now = float(start)
        self._step = float(step)
        self._lock = threading.Lock()
        self.reads = 0

    def monotonic(self) -> float:
        with self._lock:
            self.reads += 1
            self._now += self._step
            return self._now

    def __call__(self) -> float:
        return self.monotonic()
