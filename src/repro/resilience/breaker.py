"""Circuit breaker for the storage read path.

:class:`repro.recovery.RetryPolicy` absorbs *transient* I/O blips, but when
a store fails *persistently* (dying disk, truncated file, flapping mount)
retrying every page read multiplies latency: each of thousands of
``read_page`` calls grinds through its full backoff schedule before
surfacing the same error.  A :class:`CircuitBreaker` bounds that: after
``failure_threshold`` consecutive failures it *opens* and fails every call
fast with a typed :class:`~repro.exceptions.CircuitOpenError` until a
``reset_timeout_s`` cool-down has passed, then *half-opens* to let a
bounded number of probes test whether the dependency recovered.

Placement: the breaker guards each *attempt* inside the retry loop (see
``PagedFile._read_page_attempt``), so a persistent fault trips the breaker
mid-retry and the remaining backoff attempts are skipped — the very call
that trips the circuit already fails fast, as does every page read after
it.  :class:`~repro.exceptions.CircuitOpenError` is not retryable, so the
retry layer surfaces it immediately.

Classification: only dependency failures count — ``OSError`` (including
injected transient errors) and :class:`~repro.exceptions.StorageError`
(CRC mismatches, corrupt records).  Everything else — crash-injection
:class:`~repro.faults.CrashPoint`, typed interrupts, programming errors —
passes through uncounted.

Determinism: the clock is injectable, so tests age the breaker with a
:class:`~repro.resilience.clock.VirtualClock` instead of sleeping.  All
transitions bump ``breaker.*`` obs counters and emit a zero-duration
``breaker.transition`` trace event when tracing is on.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Callable, TypeVar

from repro.exceptions import CircuitOpenError, ParameterError, StorageError
from repro.obs.core import add as _obs_add
from repro.obs.core import span as _obs_span

__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BreakerInstall",
    "CircuitBreaker",
    "STATE",
    "STATE_CODES",
    "breaking",
    "installed_state_code",
]

T = TypeVar("T")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding of breaker states for gauges/dashboards: healthy sorts
#: lowest, fully open highest, so alerting thresholds are a simple ``>=``.
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Closed / open / half-open breaker with an injectable clock.

    Parameters
    ----------
    failure_threshold:
        Consecutive counted failures that trip the breaker open.
    reset_timeout_s:
        Cool-down after opening before probes are allowed.
    half_open_probes:
        Concurrent probe calls admitted while half-open; the first probe
        success closes the breaker, any probe failure re-opens it.
    clock:
        Monotonic clock in seconds; tests inject a deterministic one.
    name:
        Identifies the breaker in errors, counters, and trace events.
    failure_types:
        Exception types counted as dependency failures.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 1.0,
        *,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "pager",
        failure_types: tuple[type[BaseException], ...] = (OSError, StorageError),
    ) -> None:
        if failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s < 0:
            raise ParameterError(
                f"reset_timeout_s must be >= 0, got {reset_timeout_s}"
            )
        if half_open_probes < 1:
            raise ParameterError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self.name = name
        self.failure_types = failure_types
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        # Lifetime tallies, kept even when obs is disabled (cheap ints).
        self.trips = 0
        self.rejections = 0

    # -- introspection ---------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open if the cool-down passed."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def state_code(self) -> int:
        """The current state as its :data:`STATE_CODES` number (the gauge
        representation: 0 closed, 1 half-open, 2 open)."""
        return STATE_CODES[self.state]

    # -- state machine (all under self._lock) ----------------------------

    def _transition(self, new_state: str) -> None:
        old_state, self._state = self._state, new_state
        _obs_add(f"breaker.transitions.{new_state}")
        with _obs_span(
            "breaker.transition",
            **{"breaker": self.name, "from": old_state, "to": new_state},
        ):
            pass  # zero-duration event: the transition is instantaneous

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._probes_in_flight = 0
            _obs_add("breaker.half_opens")
            self._transition(HALF_OPEN)

    def _trip(self) -> None:
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self.trips += 1
        _obs_add("breaker.trips")
        self._transition(OPEN)

    # -- protocol --------------------------------------------------------

    def allow(self, site: str) -> bool:
        """Admit one call, or raise :class:`CircuitOpenError` immediately.

        Returns whether the call was admitted as a half-open *probe* (it
        holds one of the ``half_open_probes`` slots); callers that later
        release a slot must release only if they actually took one — a
        call admitted while closed never holds a slot, even if the
        breaker half-opens while it runs.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == OPEN:
                self.rejections += 1
                _obs_add("breaker.rejections")
                retry_after = (
                    self._opened_at + self.reset_timeout_s - self._clock()
                )
                raise CircuitOpenError(self.name, site, retry_after)
            if self._state == HALF_OPEN:
                if self._probes_in_flight >= self.half_open_probes:
                    self.rejections += 1
                    _obs_add("breaker.rejections")
                    raise CircuitOpenError(self.name, site, 0.0)
                self._probes_in_flight += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = 0
                _obs_add("breaker.closes")
                self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            _obs_add("breaker.failures")
            if self._state == HALF_OPEN:
                self._trip()  # the probe failed: straight back to open
                return
            if self._state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._trip()

    def call(self, site: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the breaker, counting dependency failures."""
        took_probe = self.allow(site)
        try:
            result = fn()
        except self.failure_types:
            self.record_failure()
            raise
        except BaseException:
            # Not a dependency failure (crash injection, interrupts, bugs):
            # neither counted nor allowed to wedge a half-open probe slot.
            # Only a call that actually took a slot gives one back — a
            # closed-admitted call releasing here would free a slot some
            # other probe still holds.
            if took_probe:
                with self._lock:
                    if self._state == HALF_OPEN and self._probes_in_flight > 0:
                        self._probes_in_flight -= 1
            raise
        self.record_success()
        return result


class BreakerInstall:
    """Process-global breaker installation point (mirrors ``retry.STATE``).

    ``breaker`` is ``None`` when disarmed; the pager read path checks that
    single attribute and runs its pre-breaker bytecode unchanged.
    """

    __slots__ = ("breaker",)

    def __init__(self) -> None:
        self.breaker: CircuitBreaker | None = None


STATE = BreakerInstall()


def installed_state_code() -> int | None:
    """The installed breaker's :data:`STATE_CODES` number, or ``None`` when
    no breaker is installed — the ``breaker.state`` gauge callable."""
    breaker = STATE.breaker
    if breaker is None:
        return None
    return breaker.state_code


@contextmanager
def breaking(breaker: CircuitBreaker | None) -> Iterator[CircuitBreaker | None]:
    """Install ``breaker`` on the storage read path for the ``with`` body."""
    saved = STATE.breaker
    STATE.breaker = breaker
    try:
        yield breaker
    finally:
        STATE.breaker = saved
