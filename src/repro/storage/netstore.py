"""Disk-based network + points store (the paper's Section 4.1, Figure 3).

The storage model: "The adjacency list and the points are stored in two
separate flat files.  To facilitate efficient access, these flat files are
then indexed by B+ trees."  Concretely:

* one *adjacency record* per node — neighbour count, then per neighbour
  ``(node id, edge weight, first point id of the edge's point group or
  -1)`` — indexed by a B+-tree on node id;
* one *point-group record* per populated edge — the edge, the point count,
  then per point ``(point id, offset, ground-truth label)`` with offsets in
  ascending order — indexed by a *sparse* B+-tree keyed by the group's
  first point id ("in a leaf node entry of the points B+ tree, the key
  points to the corresponding point group");
* both files live in one paged file behind a shared LRU buffer (the paper's
  4 KB pages / 1 MB buffer by default).

:class:`NetworkStore` exposes the same traversal protocol as the in-memory
:class:`~repro.network.graph.SpatialNetwork` (``neighbors``, ``edge_weight``,
``nodes``, ...), and :meth:`NetworkStore.points` returns a
:class:`StoredPointSet` exposing the :class:`~repro.network.points.PointSet`
protocol — so every clustering algorithm in :mod:`repro.core` runs unchanged
on the disk-backed representation, with all page traffic measured by the
buffer manager.
"""

from __future__ import annotations

import os
import struct
from collections.abc import Iterator

from repro.eval.metrics import NOISE
from repro.exceptions import (
    CorruptRecordError,
    EdgeNotFoundError,
    NodeNotFoundError,
    PointNotFoundError,
    StorageError,
)
from repro.faults.core import STATE as _FAULTS, CrashPoint, fire as _fault
from repro.network.graph import normalize_edge
from repro.network.points import NetworkPoint, PointSet
from repro.obs.core import add as _obs_add, span as _span
from repro.storage.bptree import BPlusTree
from repro.storage.ccam import ccam_order
from repro.storage.flatfile import RecordFile
from repro.storage.pager import (
    BufferManager,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_PAGE_SIZE,
    PagedFile,
)

__all__ = ["NetworkStore", "StoredPointSet"]

_META = struct.Struct("<QQQQQQQ")
# node_tree_root, point_tree_root, adj_current_page, pts_current_page,
# num_nodes, num_edges, num_points

_ADJ_HEADER = struct.Struct("<I")  # neighbour count
_ADJ_ENTRY = struct.Struct("<qdq")  # neighbour id, weight, first point id (-1 none)
_GROUP_HEADER = struct.Struct("<qqI")  # u, v, point count
_GROUP_ENTRY = struct.Struct("<qdq")  # point id, offset, label (NOISE-2 = None)

_NO_LABEL = NOISE - 1  # sentinel distinct from every real label and NOISE


class NetworkStore:
    """A spatial network with objects, resident on disk.

    Build with :meth:`build`, reopen with the constructor.  All reads go
    through an LRU buffer whose statistics (:meth:`stats`) are the I/O cost
    measure of the storage experiments.
    """

    def __init__(
        self,
        path: str,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    ) -> None:
        path = os.fspath(path)
        if path.endswith(".tmp"):
            raise StorageError(
                f"{path}: refusing to open a build temp file — an unfinished "
                "build artifact is never valid data"
            )
        if not os.path.exists(path):
            raise StorageError(f"{path}: no such network store")
        self._file = PagedFile(path)
        self.buffer = BufferManager(self._file, capacity_bytes=buffer_bytes)
        meta = self._file.get_meta()
        if len(meta) < _META.size:
            raise StorageError(f"{path}: missing network-store metadata")
        (
            node_root,
            point_root,
            adj_page,
            pts_page,
            self._num_nodes,
            self._num_edges,
            self._num_points,
        ) = _META.unpack(meta[: _META.size])
        self._adj_file = RecordFile(self.buffer, current_page=adj_page)
        self._pts_file = RecordFile(self.buffer, current_page=pts_page)
        self._node_tree = BPlusTree(self.buffer, root_pid=node_root)
        self._point_tree = BPlusTree(self.buffer, root_pid=point_root)
        # Small decode caches keep the CPU cost of re-parsing records down
        # without hiding page traffic (the page reads still hit the buffer).
        self._adj_cache: dict[int, list[tuple[int, float, int]]] = {}
        self._adj_cache_cap = 4096

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        path: str,
        network,
        points: PointSet | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_bytes: int = DEFAULT_BUFFER_BYTES,
        node_order: list[int] | str = "ccam",
    ) -> "NetworkStore":
        """Serialise a network (and optionally its points) to ``path``.

        ``node_order`` controls adjacency-record placement: ``"ccam"``
        (connectivity-clustered, the default), ``"insertion"`` (the order
        ``network.nodes()`` yields), or an explicit node list — the ablation
        hook for the CCAM locality experiment.

        The build is **atomic**: everything is written to ``path + ".tmp"``,
        committed and fsynced, then renamed over ``path``.  A crash at any
        point leaves either no file at ``path`` or the previous complete one,
        never a half-built store; a non-crash failure removes the temp file.
        """
        with _span("netstore.build", path=str(path)):
            return cls._build(
                path, network, points, page_size, buffer_bytes, node_order
            )

    @classmethod
    def _build(
        cls,
        path: str,
        network,
        points: PointSet | None,
        page_size: int,
        buffer_bytes: int,
        node_order: list[int] | str,
    ) -> "NetworkStore":
        path = os.fspath(path)
        tmp = path + ".tmp"
        if os.path.exists(tmp):
            # Leftover from a previously crashed build; it was never renamed
            # into place, so it holds no committed data.
            os.remove(tmp)
        file = PagedFile(tmp, page_size=page_size)
        buffer = BufferManager(file, capacity_bytes=buffer_bytes)
        try:
            cls._write_contents(buffer, network, points, node_order)
            buffer.close()  # flush + commit flag + fsync
        except CrashPoint:
            # Simulated process death: release the fd but leave the on-disk
            # temp file exactly as last written, as a real crash would.
            buffer.abort()
            raise
        except BaseException:
            buffer.abort()
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        try:
            if _FAULTS.engaged:
                _fault("netstore.build.commit")
            os.replace(tmp, path)
        except CrashPoint:
            raise
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        return cls(path, buffer_bytes=buffer_bytes)

    @classmethod
    def _write_contents(
        cls,
        buffer: BufferManager,
        network,
        points: PointSet | None,
        node_order: list[int] | str,
    ) -> None:
        file = buffer.file
        adj_file = RecordFile(buffer)
        pts_file = RecordFile(buffer)

        if points is None:
            points = PointSet(network)

        # Point groups first: adjacency entries reference first point ids.
        first_pid: dict[tuple[int, int], int] = {}
        point_entries: list[tuple[int, int]] = []
        for edge in sorted(points.populated_edges()):
            group = points.points_on_edge(*edge)
            record = _GROUP_HEADER.pack(edge[0], edge[1], len(group))
            for p in group:
                label = _NO_LABEL if p.label is None else int(p.label)
                record += _GROUP_ENTRY.pack(p.point_id, p.offset, label)
            rid = pts_file.append(record)
            first = group[0].point_id
            first_pid[edge] = first
            point_entries.append((first, rid))

        # Adjacency records in the requested order.
        if node_order == "ccam":
            ordered = ccam_order(network)
        elif node_order == "insertion":
            ordered = list(network.nodes())
        else:
            ordered = list(node_order)
            if len(ordered) != network.num_nodes:
                raise StorageError(
                    "explicit node_order must list every node exactly once"
                )
        node_entries: list[tuple[int, int]] = []
        for node in ordered:
            nbrs = sorted(network.neighbors(node))
            record = _ADJ_HEADER.pack(len(nbrs))
            for nbr, weight in nbrs:
                edge = normalize_edge(node, nbr)
                record += _ADJ_ENTRY.pack(nbr, weight, first_pid.get(edge, -1))
            rid = adj_file.append(record)
            node_entries.append((node, rid))

        # The data is fully known here, so both indexes are built bottom-up.
        point_tree = BPlusTree.bulk_load(buffer, sorted(point_entries))
        node_tree = BPlusTree.bulk_load(buffer, sorted(node_entries))

        meta = _META.pack(
            node_tree.root_pid,
            point_tree.root_pid,
            adj_file.current_page,
            pts_file.current_page,
            network.num_nodes,
            network.num_edges,
            len(points),
        )
        file.set_meta(meta)

    # ------------------------------------------------------------------
    # Network backend protocol
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __len__(self) -> int:
        return self._num_nodes

    def nodes(self) -> Iterator[int]:
        """All node ids (ascending; streamed from the node B+-tree)."""
        for node, _ in self._node_tree.items():
            yield node

    def has_node(self, node: int) -> bool:
        return node in self._node_tree

    def _adjacency(self, node: int) -> list[tuple[int, float, int]]:
        cached = self._adj_cache.get(node)
        if cached is not None:
            return cached
        rid = self._node_tree.search(node)
        if rid is None:
            raise NodeNotFoundError(node)
        _obs_add("storage.adj_record_reads")
        record = self._adj_file.read(rid)
        if len(record) < _ADJ_HEADER.size:
            raise CorruptRecordError(
                f"adjacency record for node {node} is shorter than its header"
            )
        (count,) = _ADJ_HEADER.unpack_from(record, 0)
        if _ADJ_HEADER.size + count * _ADJ_ENTRY.size > len(record):
            raise CorruptRecordError(
                f"adjacency record for node {node}: neighbour count {count} "
                f"overruns the {len(record)}-byte record"
            )
        entries = [
            _ADJ_ENTRY.unpack_from(record, _ADJ_HEADER.size + i * _ADJ_ENTRY.size)
            for i in range(count)
        ]
        if len(self._adj_cache) >= self._adj_cache_cap:
            self._adj_cache.clear()
        self._adj_cache[node] = entries
        return entries

    def neighbors(self, node: int) -> Iterator[tuple[int, float]]:
        for nbr, weight, _ in self._adjacency(node):
            yield (nbr, weight)

    def degree(self, node: int) -> int:
        return len(self._adjacency(node))

    def has_edge(self, u: int, v: int) -> bool:
        if u == v or not self.has_node(u):
            return False
        return any(nbr == v for nbr, _, _ in self._adjacency(u))

    def edge_weight(self, u: int, v: int) -> float:
        a, b = normalize_edge(u, v)
        for nbr, weight, _ in self._adjacency(a):
            if nbr == b:
                return weight
        raise EdgeNotFoundError(a, b)

    def edges(self) -> Iterator[tuple[int, int, float]]:
        for node in self.nodes():
            for nbr, weight, _ in self._adjacency(node):
                if node < nbr:
                    yield (node, nbr, weight)

    # ------------------------------------------------------------------
    # Points access
    # ------------------------------------------------------------------
    def points(self) -> "StoredPointSet":
        """The disk-resident point set (PointSet protocol)."""
        return StoredPointSet(self)

    def _first_point_id(self, u: int, v: int) -> int:
        a, b = normalize_edge(u, v)
        for nbr, _, first in self._adjacency(a):
            if nbr == b:
                return first
        raise EdgeNotFoundError(a, b)

    def _read_group(self, first_pid: int) -> tuple[tuple[int, int], list[NetworkPoint]]:
        rid = self._point_tree.search(first_pid)
        if rid is None:
            raise StorageError(f"missing point group for first id {first_pid}")
        _obs_add("storage.group_record_reads")
        return self._decode_group(self._pts_file.read(rid))

    @staticmethod
    def _decode_group(record: bytes) -> tuple[tuple[int, int], list[NetworkPoint]]:
        if len(record) < _GROUP_HEADER.size:
            raise CorruptRecordError(
                "point-group record is shorter than its header"
            )
        u, v, count = _GROUP_HEADER.unpack_from(record, 0)
        if _GROUP_HEADER.size + count * _GROUP_ENTRY.size > len(record):
            raise CorruptRecordError(
                f"point group ({u}, {v}): point count {count} overruns the "
                f"{len(record)}-byte record"
            )
        pts = []
        for i in range(count):
            pid, offset, label = _GROUP_ENTRY.unpack_from(
                record, _GROUP_HEADER.size + i * _GROUP_ENTRY.size
            )
            pts.append(
                NetworkPoint(
                    pid, u, v, offset, label=None if label == _NO_LABEL else label
                )
            )
        return (u, v), pts

    # ------------------------------------------------------------------
    # Lifecycle / instrumentation
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Buffer and physical I/O counters."""
        return self.buffer.stats()

    def reset_stats(self) -> None:
        self.buffer.reset_stats()

    def drop_caches(self) -> None:
        """Cold-start simulation: clear the page buffer and decode caches."""
        self.buffer.drop_cache()
        self._adj_cache.clear()

    def close(self) -> None:
        self.buffer.close()

    def __enter__(self) -> "NetworkStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"NetworkStore(nodes={self._num_nodes}, edges={self._num_edges}, "
            f"points={self._num_points}, pages={self._file.num_pages})"
        )


class StoredPointSet:
    """PointSet-protocol view over the groups stored in a NetworkStore.

    Provides exactly the methods the clustering algorithms use:
    ``points_on_edge``, ``points_from``, ``get``, iteration, ``point_ids``,
    ``populated_edges``, ``len``, and the ``network`` property (the store
    itself, so the backend-consistency check in
    :class:`~repro.core.base.NetworkClusterer` passes).
    """

    def __init__(self, store: NetworkStore) -> None:
        self._store = store
        self._group_cache: dict[int, list[NetworkPoint]] = {}
        self._group_cache_cap = 2048
        self._id_index: dict[int, NetworkPoint] | None = None

    @property
    def network(self) -> NetworkStore:
        return self._store

    def __len__(self) -> int:
        return self._store._num_points

    # ------------------------------------------------------------------
    def points_on_edge(self, u: int, v: int) -> list[NetworkPoint]:
        first = self._store._first_point_id(u, v)
        if first < 0:
            return []
        cached = self._group_cache.get(first)
        if cached is not None:
            return list(cached)
        _, pts = self._store._read_group(first)
        if len(self._group_cache) >= self._group_cache_cap:
            self._group_cache.clear()
        self._group_cache[first] = pts
        return list(pts)

    def points_from(self, node: int, other: int) -> list[NetworkPoint]:
        pts = self.points_on_edge(node, other)
        if node > other:
            pts.reverse()
        return pts

    def populated_edges(self) -> Iterator[tuple[int, int]]:
        for _, rid in self._store._point_tree.items():
            record = self._store._pts_file.read(rid)
            u, v, _ = _GROUP_HEADER.unpack_from(record, 0)
            yield (u, v)

    def num_populated_edges(self) -> int:
        return len(self._store._point_tree)

    def __iter__(self) -> Iterator[NetworkPoint]:
        for _, rid in self._store._point_tree.items():
            _, pts = self._store._decode_group(self._store._pts_file.read(rid))
            yield from pts

    def point_ids(self) -> Iterator[int]:
        for p in self:
            yield p.point_id

    def __contains__(self, point_id: int) -> bool:
        try:
            self.get(point_id)
            return True
        except PointNotFoundError:
            return False

    def get(self, point_id: int) -> NetworkPoint:
        """Point lookup by id via floor search on the sparse points tree.

        The sparse tree keys groups by their first point id; since the
        store assigns group-sequential ids ("point-ids are assigned in such
        a way that for the points on the same edge, IDs are sequential"),
        the containing group is the floor entry.  For arbitrary externally
        assigned ids a one-time full index is built instead.
        """
        floor = self._store._point_tree.floor(point_id)
        if floor is not None:
            _, rid = floor
            _, pts = self._store._decode_group(self._store._pts_file.read(rid))
            for p in pts:
                if p.point_id == point_id:
                    return p
        # Sparse lookup failed: ids are not group-sequential.  Build (once)
        # a full in-memory id index.
        if self._id_index is None:
            self._id_index = {p.point_id: p for p in self}
        try:
            return self._id_index[point_id]
        except KeyError:
            raise PointNotFoundError(point_id) from None

    def distance_to_node(self, point: NetworkPoint, node: int) -> float:
        from repro.exceptions import InvalidPositionError

        if node == point.u:
            return point.offset
        if node == point.v:
            return self._store.edge_weight(point.u, point.v) - point.offset
        raise InvalidPositionError(
            f"node {node} is not an endpoint of the edge of point {point.point_id}"
        )

    def labels(self) -> dict[int, int | None]:
        return {p.point_id: p.label for p in self}

    def __repr__(self) -> str:
        return f"StoredPointSet(points={len(self)}, store={self._store!r})"
