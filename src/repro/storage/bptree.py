"""Disk-based B+-tree mapping signed 64-bit keys to signed 64-bit values.

The paper's storage model (Section 4.1, Figure 3) indexes the adjacency
flat file with a B+-tree on node id and the points flat file with a *sparse*
B+-tree keyed by the first point id of each point group; this class serves
both.  It also supports floor search (largest key <= probe), which is how a
sparse index resolves an arbitrary point id to its containing group.

Node page layout (little-endian)::

    leaf:      [1: u8=1][count: u16][next_leaf: u64]  count * (key i64, value i64)
    internal:  [1: u8=0][count: u16][child0: u64]     count * (key i64, child u64)

An internal node with ``count`` keys has ``count + 1`` children; keys
separate child subtrees with the usual "first key of the right subtree"
convention.  Deletion removes keys without rebalancing (standard lazy
deletion: lookups and scans remain correct, occupancy may drop below half
until a rebuild), which matches the build-once/read-many workload of the
network store.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator

from repro.exceptions import TreeError
from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.storage.pager import BufferManager

__all__ = ["BPlusTree"]

_NODE_HEADER = struct.Struct("<BHQ")  # is_leaf, count, next_leaf / child0
_ENTRY = struct.Struct("<qq")  # key, value-or-child (children stored signed too)


class BPlusTree:
    """A disk-backed B+-tree over a shared :class:`BufferManager`.

    Parameters
    ----------
    buffer:
        The page cache; several trees and record files may share it.
    root_pid:
        Page id of an existing tree's root, or ``None`` to create a new
        empty tree.  Persist :attr:`root_pid` (e.g. in the paged file's
        metadata) to reopen the tree later.
    """

    def __init__(self, buffer: BufferManager, root_pid: int | None = None) -> None:
        self.buffer = buffer
        page_size = buffer.file.page_size
        self._capacity = (page_size - _NODE_HEADER.size) // _ENTRY.size
        if self._capacity < 3:
            raise TreeError(f"page size {page_size} too small for a B+-tree node")
        if root_pid is None:
            root_pid = self._new_node(is_leaf=True)
        self.root_pid = root_pid
        self._size: int | None = None  # lazily counted for reopened trees

    # ------------------------------------------------------------------
    # Node encoding
    # ------------------------------------------------------------------
    def _new_node(self, is_leaf: bool) -> int:
        pid = self.buffer.allocate()
        self._store(pid, is_leaf, [], 0)
        return pid

    def _load(self, pid: int) -> tuple[bool, list[tuple[int, int]], int]:
        """(is_leaf, entries, extra) where extra is next_leaf or child0."""
        raw = self.buffer.read(pid)
        is_leaf, count, extra = _NODE_HEADER.unpack_from(raw, 0)
        if count > self._capacity:
            raise TreeError(
                f"node {pid}: entry count {count} exceeds page capacity "
                f"{self._capacity} — page is not a valid tree node"
            )
        entries = [
            _ENTRY.unpack_from(raw, _NODE_HEADER.size + i * _ENTRY.size)
            for i in range(count)
        ]
        return bool(is_leaf), entries, extra

    def _store(
        self, pid: int, is_leaf: bool, entries: list[tuple[int, int]], extra: int
    ) -> None:
        if len(entries) > self._capacity:
            raise TreeError(
                f"node {pid} overfull: {len(entries)} > {self._capacity}"
            )
        if _FAULTS.engaged:
            _fault("bptree.store")
        raw = bytearray(self.buffer.file.page_size)
        _NODE_HEADER.pack_into(raw, 0, int(is_leaf), len(entries), extra)
        for i, (key, value) in enumerate(entries):
            _ENTRY.pack_into(raw, _NODE_HEADER.size + i * _ENTRY.size, key, value)
        self.buffer.write(pid, bytes(raw))

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    @staticmethod
    def _child_index(entries: list[tuple[int, int]], key: int) -> int:
        """Index of the child to descend into for ``key``.

        Entry i holds the separator key of child i+1: descend into the
        rightmost child whose separator is <= key.
        """
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo  # 0 = child0, i+1 = entries[i]'s child

    def _find_leaf(self, key: int) -> tuple[int, list[tuple[int, int]], int]:
        pid = self.root_pid
        while True:
            is_leaf, entries, extra = self._load(pid)
            if is_leaf:
                return pid, entries, extra
            idx = self._child_index(entries, key)
            pid = extra if idx == 0 else entries[idx - 1][1]

    def search(self, key: int) -> int | None:
        """The value stored under ``key``, or ``None``."""
        _, entries, _ = self._find_leaf(key)
        lo, hi = 0, len(entries)
        while lo < hi:
            mid = (lo + hi) // 2
            if entries[mid][0] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(entries) and entries[lo][0] == key:
            return entries[lo][1]
        return None

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    def floor(self, key: int) -> tuple[int, int] | None:
        """The entry with the largest key <= ``key`` (sparse-index lookup)."""
        pid, entries, _ = self._find_leaf(key)
        best = None
        for k, v in entries:
            if k <= key:
                best = (k, v)
            else:
                break
        if best is not None:
            return best
        # The answer may sit in an earlier leaf (this leaf's keys all exceed
        # the probe, which happens only at the leftmost occupied leaf or
        # after deletions).  Fall back to a scan from the left.
        prev = None
        for k, v in self.items():
            if k > key:
                break
            prev = (k, v)
        return prev

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        """Insert or replace ``key``."""
        result = self._insert(self.root_pid, key, value)
        if result is not None:
            sep, right_pid = result
            new_root = self._new_node(is_leaf=False)
            self._store(new_root, False, [(sep, right_pid)], self.root_pid)
            self.root_pid = new_root

    def _insert(self, pid: int, key: int, value: int) -> tuple[int, int] | None:
        is_leaf, entries, extra = self._load(pid)
        if is_leaf:
            lo, hi = 0, len(entries)
            while lo < hi:
                mid = (lo + hi) // 2
                if entries[mid][0] < key:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < len(entries) and entries[lo][0] == key:
                entries[lo] = (key, value)  # replace
                self._store(pid, True, entries, extra)
                return None
            entries.insert(lo, (key, value))
            if self._size is not None:
                self._size += 1
            if len(entries) <= self._capacity:
                self._store(pid, True, entries, extra)
                return None
            return self._split_leaf(pid, entries, extra)
        idx = self._child_index(entries, key)
        child = extra if idx == 0 else entries[idx - 1][1]
        result = self._insert(child, key, value)
        if result is None:
            return None
        sep, right_pid = result
        entries.insert(idx, (sep, right_pid))
        if len(entries) <= self._capacity:
            self._store(pid, False, entries, extra)
            return None
        return self._split_internal(pid, entries, extra)

    def _split_leaf(
        self, pid: int, entries: list[tuple[int, int]], next_leaf: int
    ) -> tuple[int, int]:
        mid = len(entries) // 2
        right_pid = self.buffer.allocate()
        self._store(right_pid, True, entries[mid:], next_leaf)
        self._store(pid, True, entries[:mid], right_pid)
        return entries[mid][0], right_pid

    def _split_internal(
        self, pid: int, entries: list[tuple[int, int]], child0: int
    ) -> tuple[int, int]:
        mid = len(entries) // 2
        sep_key, sep_child = entries[mid]
        right_pid = self.buffer.allocate()
        self._store(right_pid, False, entries[mid + 1 :], sep_child)
        self._store(pid, False, entries[:mid], child0)
        return sep_key, right_pid

    # ------------------------------------------------------------------
    # Delete (lazy: no rebalancing)
    # ------------------------------------------------------------------
    def delete(self, key: int) -> bool:
        """Remove ``key``; returns True when it was present."""
        pid, entries, extra = self._find_leaf(key)
        for i, (k, _) in enumerate(entries):
            if k == key:
                del entries[i]
                self._store(pid, True, entries, extra)
                if self._size is not None:
                    self._size -= 1
                return True
            if k > key:
                break
        return False

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def _leftmost_leaf(self) -> int:
        pid = self.root_pid
        while True:
            is_leaf, entries, extra = self._load(pid)
            if is_leaf:
                return pid
            pid = extra  # child0

    def items(self) -> Iterator[tuple[int, int]]:
        """All (key, value) pairs in ascending key order (leaf chain scan)."""
        pid = self._leftmost_leaf()
        while pid:
            _, entries, next_leaf = self._load(pid)
            yield from entries
            pid = next_leaf

    def range(self, lo: int, hi: int) -> Iterator[tuple[int, int]]:
        """(key, value) pairs with lo <= key <= hi, ascending."""
        pid, entries, next_leaf = self._find_leaf(lo)
        while True:
            for key, value in entries:
                if key > hi:
                    return
                if key >= lo:
                    yield (key, value)
            if not next_leaf:
                return
            pid = next_leaf
            _, entries, next_leaf = self._load(pid)

    def __len__(self) -> int:
        if self._size is None:
            self._size = sum(1 for _ in self.items())
        return self._size

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        buffer: BufferManager,
        items: list[tuple[int, int]],
        fill_factor: float = 0.9,
    ) -> "BPlusTree":
        """Build a tree bottom-up from sorted ``(key, value)`` pairs.

        The standard static-index construction: leaves are written
        sequentially at ``fill_factor`` occupancy (leaving slack for later
        inserts), then each internal level is built over the one below.
        Far fewer page writes than repeated :meth:`insert`, and leaves are
        physically contiguous — the right way to build the network store's
        indexes, whose data is known up front.
        """
        if not 0.1 <= fill_factor <= 1.0:
            raise TreeError(f"fill_factor must be in [0.1, 1], got {fill_factor!r}")
        keys = [k for k, _ in items]
        if keys != sorted(keys) or len(set(keys)) != len(keys):
            raise TreeError("bulk_load requires strictly increasing keys")
        tree = cls(buffer)
        if not items:
            return tree
        per_leaf = max(1, int(tree._capacity * fill_factor))

        # Level 0: the leaves, chained left to right.
        leaf_chunks = [items[i : i + per_leaf] for i in range(0, len(items), per_leaf)]
        leaf_pids = [buffer.allocate() for _ in leaf_chunks]
        for idx, chunk in enumerate(leaf_chunks):
            next_leaf = leaf_pids[idx + 1] if idx + 1 < len(leaf_pids) else 0
            tree._store(leaf_pids[idx], True, list(chunk), next_leaf)
        # The pre-created empty root leaf is abandoned (one wasted page).
        level: list[tuple[int, int]] = [
            (chunk[0][0], pid) for chunk, pid in zip(leaf_chunks, leaf_pids)
        ]

        # Upper levels: (first key of subtree, child pid) fan-in.
        per_node = max(2, int(tree._capacity * fill_factor))
        while len(level) > 1:
            next_level: list[tuple[int, int]] = []
            for i in range(0, len(level), per_node):
                group = level[i : i + per_node]
                pid = buffer.allocate()
                child0 = group[0][1]
                entries = [(key, child) for key, child in group[1:]]
                tree._store(pid, False, entries, child0)
                next_level.append((group[0][0], pid))
            level = next_level
        tree.root_pid = level[0][1]
        tree._size = len(items)
        return tree

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def height(self) -> int:
        """Number of levels from root to leaves (1 for a lone leaf)."""
        levels = 1
        pid = self.root_pid
        while True:
            is_leaf, entries, extra = self._load(pid)
            if is_leaf:
                return levels
            levels += 1
            pid = extra

    def check_invariants(self) -> None:
        """Verify sortedness, separator consistency, and leaf-chain order.

        Raises :class:`TreeError` on violation; used by the tests.
        """
        last_key: int | None = None
        for key, _ in self.items():
            if last_key is not None and key <= last_key:
                raise TreeError(f"leaf chain out of order at key {key}")
            last_key = key
        self._check_subtree(self.root_pid, None, None)

    def _check_subtree(
        self, pid: int, lo: int | None, hi: int | None
    ) -> None:
        is_leaf, entries, extra = self._load(pid)
        keys = [k for k, _ in entries]
        if keys != sorted(keys):
            raise TreeError(f"node {pid} keys unsorted")
        for k in keys:
            if lo is not None and k < lo:
                raise TreeError(f"node {pid} key {k} below bound {lo}")
            if hi is not None and k >= hi:
                raise TreeError(f"node {pid} key {k} at/above bound {hi}")
        if is_leaf:
            return
        children = [extra] + [child for _, child in entries]
        bounds = [lo] + keys + [hi]
        for i, child in enumerate(children):
            self._check_subtree(child, bounds[i], bounds[i + 1])
