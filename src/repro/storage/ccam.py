"""CCAM-style node ordering for storage locality.

CCAM [Shekhar & Liu] groups "network nodes with their adjacency lists into
disk pages based on their connectivity and how frequently they are accessed
together; neighbor nodes are placed in the same page with high probability".
The network store writes adjacency records in the order produced here;
since the record file packs consecutive records into the same page,
connectivity-ordered records give connectivity-clustered pages and graph
traversals hit the buffer instead of the disk.

:func:`ccam_order` produces that ordering with a Prim-style traversal that
always extends the current run with the unvisited neighbour reachable over
the lightest edge — the neighbour a shortest-path expansion is most likely
to visit next.  :func:`random_order` is the ablation baseline quantifying
how much the locality buys (see ``benchmarks/bench_ablation_ccam.py``).
"""

from __future__ import annotations

import heapq
import random

__all__ = ["ccam_order", "random_order", "nodes_per_page_estimate"]


def nodes_per_page_estimate(network, page_size: int = 4096) -> int:
    """Roughly how many adjacency records fit one page.

    A record costs ~4 bytes of header plus 24 bytes per neighbour, plus the
    slotted-page overhead of 4 bytes per record.  Useful for sizing buffers
    in experiments.
    """
    if network.num_nodes == 0:
        return 1
    avg_degree = 2 * network.num_edges / network.num_nodes
    per_record = 8 + 24 * avg_degree
    return max(1, int(page_size / per_record))


def ccam_order(network) -> list[int]:
    """Nodes ordered for connectivity locality (lightest-edge-first growth).

    Deterministic: ties and restart points follow ascending node ids, and
    every connected component is emitted contiguously.
    """
    order: list[int] = []
    assigned: set[int] = set()
    counter = 0
    for start in sorted(network.nodes()):
        if start in assigned:
            continue
        frontier: list[tuple[float, int, int]] = [(0.0, counter, start)]
        counter += 1
        while frontier:
            _, _, node = heapq.heappop(frontier)
            if node in assigned:
                continue
            assigned.add(node)
            order.append(node)
            for nbr, weight in network.neighbors(node):
                if nbr not in assigned:
                    heapq.heappush(frontier, (weight, counter, nbr))
                    counter += 1
    return order


def random_order(network, seed: int | None = None) -> list[int]:
    """A uniformly random node order (the locality ablation baseline)."""
    rng = random.Random(seed)
    order = list(network.nodes())
    rng.shuffle(order)
    return order
