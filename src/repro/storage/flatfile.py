"""Flat record files over slotted pages.

The paper stores adjacency lists and point groups "in two separate flat
files ... indexed by B+ trees".  :class:`RecordFile` provides that flat-file
layer: variable-length byte records appended to slotted 4 KB pages, each
record addressed by a compact integer *rid* (page id and slot number).
Records larger than a page spill into a chain of overflow pages, so
arbitrarily long adjacency lists and point groups are supported.

Page layout (slotted page)::

    [n_slots: u16][free_end: u16] [slot 0: off u16, len u16] [slot 1] ...
    ... free space ...  [record data packed from the page end backwards]

Overflow records are stored as a stub in the slotted page —
``(OVERFLOW_TAG: u16, total_len: u32, first_overflow_pid: u64)`` — with the
payload in a chain of dedicated pages, each ``[next_pid: u64][payload]``.
"""

from __future__ import annotations

import struct

from repro.exceptions import PageError, StorageError
from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.storage.pager import BufferManager

__all__ = ["RecordFile", "rid_encode", "rid_decode"]

_PAGE_HEADER = struct.Struct("<HH")  # n_slots, free_end
_SLOT = struct.Struct("<HH")  # offset, length (high bit: overflow stub)
_OVERFLOW_STUB = struct.Struct("<IQ")  # total_len, first_pid
_OVERFLOW_FLAG = 0x8000  # set in the slot length for overflow stubs
_CHAIN_HEADER = struct.Struct("<Q")  # next page id (0 = end)


def rid_encode(page_id: int, slot: int) -> int:
    """Pack a (page, slot) address into one integer record id."""
    if slot < 0 or slot >= (1 << 16):
        raise PageError(f"slot {slot} out of range")
    return (page_id << 16) | slot


def rid_decode(rid: int) -> tuple[int, int]:
    """Unpack a record id into (page, slot)."""
    return rid >> 16, rid & 0xFFFF


class RecordFile:
    """Append-and-read variable-length records in a paged file region.

    Multiple record files can share one :class:`BufferManager`; each keeps
    its own current fill page.  Records are immutable once appended (the
    access pattern of the paper's storage model: build once, read many).
    """

    def __init__(self, buffer: BufferManager, current_page: int = 0) -> None:
        self.buffer = buffer
        self._current = current_page  # 0 = allocate on first append

    @property
    def current_page(self) -> int:
        """The page currently being filled (persist to reopen the file)."""
        return self._current

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, data: bytes) -> int:
        """Store a record, returning its rid."""
        if _FAULTS.engaged:
            _fault("flatfile.append")
        max_inline = min(
            self.buffer.file.page_size - _PAGE_HEADER.size - _SLOT.size,
            _OVERFLOW_FLAG - 1,  # the length field's high bit is the flag
        )
        if len(data) > max_inline:
            return self._append_overflow(data)
        return self._append_inline(data)

    def _page_state(self, pid: int) -> tuple[bytearray, int, int]:
        raw = bytearray(self.buffer.read(pid))
        n_slots, free_end = _PAGE_HEADER.unpack_from(raw, 0)
        if free_end == 0:  # freshly allocated page
            free_end = self.buffer.file.page_size
        return raw, n_slots, free_end

    def _append_inline(self, data: bytes, overflow: bool = False) -> int:
        page_size = self.buffer.file.page_size
        if self._current == 0:
            self._current = self.buffer.allocate()
        raw, n_slots, free_end = self._page_state(self._current)
        slot_dir_end = _PAGE_HEADER.size + (n_slots + 1) * _SLOT.size
        if free_end - len(data) < slot_dir_end:
            # No room: start a fresh page.
            self._current = self.buffer.allocate()
            raw, n_slots, free_end = self._page_state(self._current)
            slot_dir_end = _PAGE_HEADER.size + (n_slots + 1) * _SLOT.size
            if free_end - len(data) < slot_dir_end:
                raise StorageError("record does not fit an empty page")
        offset = free_end - len(data)
        raw[offset:free_end] = data
        length = len(data) | (_OVERFLOW_FLAG if overflow else 0)
        _SLOT.pack_into(raw, _PAGE_HEADER.size + n_slots * _SLOT.size, offset, length)
        _PAGE_HEADER.pack_into(raw, 0, n_slots + 1, offset)
        self.buffer.write(self._current, bytes(raw))
        assert len(raw) == page_size
        return rid_encode(self._current, n_slots)

    def _append_overflow(self, data: bytes) -> int:
        page_size = self.buffer.file.page_size
        chunk_capacity = page_size - _CHAIN_HEADER.size
        # Write the chain back-to-front so each page knows its successor.
        chunks = [data[i : i + chunk_capacity] for i in range(0, len(data), chunk_capacity)]
        next_pid = 0
        for chunk in reversed(chunks):
            pid = self.buffer.allocate()
            page = _CHAIN_HEADER.pack(next_pid) + chunk
            self.buffer.write(pid, page)
            next_pid = pid
        stub = _OVERFLOW_STUB.pack(len(data), next_pid)
        return self._append_inline(stub, overflow=True)

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def read(self, rid: int) -> bytes:
        """Record contents for a rid returned by :meth:`append`."""
        pid, slot = rid_decode(rid)
        raw = self.buffer.read(pid)
        n_slots, _ = _PAGE_HEADER.unpack_from(raw, 0)
        if slot >= n_slots:
            raise PageError(f"rid {rid}: slot {slot} beyond {n_slots} slots")
        offset, length = _SLOT.unpack_from(raw, _PAGE_HEADER.size + slot * _SLOT.size)
        is_overflow = bool(length & _OVERFLOW_FLAG)
        length &= ~_OVERFLOW_FLAG
        data = bytes(raw[offset : offset + length])
        if is_overflow:
            total_len, first_pid = _OVERFLOW_STUB.unpack(data)
            return self._read_chain(first_pid, total_len)
        return data

    def _read_chain(self, first_pid: int, total_len: int) -> bytes:
        out = bytearray()
        pid = first_pid
        chunk_capacity = self.buffer.file.page_size - _CHAIN_HEADER.size
        while pid != 0 and len(out) < total_len:
            raw = self.buffer.read(pid)
            (next_pid,) = _CHAIN_HEADER.unpack_from(raw, 0)
            need = min(chunk_capacity, total_len - len(out))
            out += raw[_CHAIN_HEADER.size : _CHAIN_HEADER.size + need]
            pid = next_pid
        if len(out) != total_len:
            raise StorageError("truncated overflow chain")
        return bytes(out)
