"""Offline integrity verification for network-store files (``repro check``).

:func:`verify_store` walks a paged file from the physical layer up and
returns a list of :class:`Finding` objects instead of raising on the first
problem, so one pass reports *all* detectable damage:

1. **Header** — magic, format version, header CRC, commit flag.
2. **Pages** — every page's CRC32 trailer (torn writes, bit rot).
3. **Metadata** — the network-store root pointers and counts.
4. **Indexes** — B+-tree structural invariants (sortedness, separators,
   leaf-chain order) for the node and point trees.
5. **Records** — every adjacency and point-group record decodes within its
   bounds; group offsets ascend; counts in the metadata match the data.

The pass is read-only.  It opens files with ``allow_uncommitted=True`` (the
one sanctioned use of that flag) precisely so that crashed builds can be
examined rather than merely refused.
"""

from __future__ import annotations

import os
import struct

from repro.exceptions import CorruptRecordError, PageCorruptError, ReproError
from repro.storage.bptree import BPlusTree
from repro.storage.flatfile import RecordFile
from repro.storage.pager import BufferManager, PagedFile

__all__ = ["Finding", "verify_store"]


class Finding:
    """One verification finding.

    Attributes
    ----------
    severity:
        ``"error"`` (data cannot be trusted) or ``"warning"`` (suspicious
        but survivable, e.g. an uncommitted file opened for forensics).
    kind:
        Machine-readable category (``"header"``, ``"page"``, ``"meta"``,
        ``"tree"``, ``"record"``, ``"count"``).
    message:
        Human-readable description.
    page_id:
        The affected page, when the finding is page-addressable.
    offset:
        Byte offset of the damage in the file, when known (page findings),
        so the damage can be located with a hex editor or ``dd``.
    """

    __slots__ = ("severity", "kind", "message", "page_id", "offset")

    def __init__(
        self,
        severity: str,
        kind: str,
        message: str,
        page_id: int | None = None,
        offset: int | None = None,
    ) -> None:
        self.severity = severity
        self.kind = kind
        self.message = message
        self.page_id = page_id
        self.offset = offset

    def __repr__(self) -> str:
        where = f" [page {self.page_id}]" if self.page_id is not None else ""
        return f"{self.severity}:{self.kind}{where}: {self.message}"


def verify_store(path: str) -> list[Finding]:
    """Verify a network-store file; empty list means healthy.

    Never raises for damage in the file itself — every problem becomes a
    :class:`Finding`.  (Genuinely environmental errors, e.g. the path not
    existing, still surface as a single ``header`` finding.)
    """
    findings: list[Finding] = []
    path = os.fspath(path)
    if not os.path.exists(path):
        return [Finding("error", "header", f"{path}: no such file")]

    try:
        file = PagedFile(path, allow_uncommitted=True)
    except ReproError as exc:
        return [Finding("error", "header", str(exc))]

    try:
        if not file.committed:
            findings.append(
                Finding(
                    "error",
                    "header",
                    f"{path}: commit flag clear — interrupted build, "
                    "contents must not be trusted",
                )
            )

        # ---- physical page sweep ------------------------------------
        for pid in range(1, file.num_pages):
            try:
                file.read_page(pid)
            except PageCorruptError as exc:
                findings.append(
                    Finding(
                        "error", "page", str(exc), page_id=pid,
                        offset=exc.offset,
                    )
                )

        # ---- metadata ------------------------------------------------
        from repro.storage.netstore import _META

        meta = file.get_meta()
        if len(meta) < _META.size:
            findings.append(
                Finding(
                    "error",
                    "meta",
                    f"metadata holds {len(meta)} bytes, need {_META.size} — "
                    "not a network store or roots never written",
                )
            )
            return findings
        try:
            (
                node_root,
                point_root,
                _adj_page,
                _pts_page,
                num_nodes,
                _num_edges,
                num_points,
            ) = _META.unpack(meta[: _META.size])
        except struct.error as exc:  # pragma: no cover - length checked above
            findings.append(Finding("error", "meta", f"undecodable metadata: {exc}"))
            return findings
        for name, root in (("node", node_root), ("point", point_root)):
            if not 1 <= root < file.num_pages:
                findings.append(
                    Finding(
                        "error",
                        "meta",
                        f"{name}-tree root page {root} outside file "
                        f"(pages 1..{file.num_pages - 1})",
                    )
                )
                return findings

        # Logical checks read through a buffer; corrupt pages already
        # reported above will raise again — catch and continue.
        buffer = BufferManager(file)

        # ---- index invariants ---------------------------------------
        trees = {}
        for name, root in (("node", node_root), ("point", point_root)):
            try:
                tree = BPlusTree(buffer, root_pid=root)
                tree.check_invariants()
                trees[name] = tree
            except ReproError as exc:
                findings.append(
                    Finding("error", "tree", f"{name} tree: {exc}")
                )

        # ---- record sweep + count reconciliation --------------------
        node_tree = trees.get("node")
        if node_tree is not None:
            seen_nodes = 0
            store_view = _RecordReader(buffer)
            for node, rid in _safe_items(node_tree, "node", findings):
                seen_nodes += 1
                try:
                    store_view.check_adjacency(node, rid)
                except ReproError as exc:
                    findings.append(
                        Finding("error", "record", f"node {node}: {exc}")
                    )
            if seen_nodes != num_nodes:
                findings.append(
                    Finding(
                        "error",
                        "count",
                        f"metadata claims {num_nodes} nodes, node tree "
                        f"holds {seen_nodes}",
                    )
                )

        point_tree = trees.get("point")
        if point_tree is not None:
            seen_points = 0
            store_view = _RecordReader(buffer)
            for first, rid in _safe_items(point_tree, "point", findings):
                try:
                    seen_points += store_view.check_group(first, rid)
                except ReproError as exc:
                    findings.append(
                        Finding("error", "record", f"point group {first}: {exc}")
                    )
            if seen_points != num_points:
                findings.append(
                    Finding(
                        "error",
                        "count",
                        f"metadata claims {num_points} points, groups hold "
                        f"{seen_points}",
                    )
                )
    finally:
        file.abort()  # read-only pass: never write, never commit
    return findings


def _safe_items(tree: BPlusTree, name: str, findings: list[Finding]):
    """Iterate tree items, converting a mid-scan error into a finding."""
    try:
        yield from tree.items()
    except ReproError as exc:
        findings.append(Finding("error", "tree", f"{name} tree scan: {exc}"))


class _RecordReader:
    """Decode-and-check helpers over the two flat files."""

    def __init__(self, buffer: BufferManager) -> None:
        self._records = RecordFile(buffer)

    def check_adjacency(self, node: int, rid: int) -> None:
        from repro.storage.netstore import _ADJ_ENTRY, _ADJ_HEADER

        record = self._records.read(rid)
        if len(record) < _ADJ_HEADER.size:
            raise CorruptRecordError("adjacency record shorter than its header")
        (count,) = _ADJ_HEADER.unpack_from(record, 0)
        if _ADJ_HEADER.size + count * _ADJ_ENTRY.size > len(record):
            raise CorruptRecordError(
                f"neighbour count {count} overruns {len(record)}-byte record"
            )
        for i in range(count):
            _nbr, weight, _first = _ADJ_ENTRY.unpack_from(
                record, _ADJ_HEADER.size + i * _ADJ_ENTRY.size
            )
            if not weight > 0:
                raise CorruptRecordError(
                    f"neighbour {i} has non-positive weight {weight}"
                )

    def check_group(self, first: int, rid: int) -> int:
        """Check one point-group record; returns its point count."""
        from repro.storage.netstore import _GROUP_ENTRY, _GROUP_HEADER

        record = self._records.read(rid)
        if len(record) < _GROUP_HEADER.size:
            raise CorruptRecordError("point-group record shorter than its header")
        u, v, count = _GROUP_HEADER.unpack_from(record, 0)
        if _GROUP_HEADER.size + count * _GROUP_ENTRY.size > len(record):
            raise CorruptRecordError(
                f"point count {count} overruns {len(record)}-byte record"
            )
        if count == 0:
            raise CorruptRecordError(f"empty point group for edge ({u}, {v})")
        last_offset = None
        first_pid = None
        for i in range(count):
            pid, offset, _label = _GROUP_ENTRY.unpack_from(
                record, _GROUP_HEADER.size + i * _GROUP_ENTRY.size
            )
            if first_pid is None:
                first_pid = pid
            if last_offset is not None and offset < last_offset:
                raise CorruptRecordError(
                    f"offsets out of order in group for edge ({u}, {v})"
                )
            last_offset = offset
        if first_pid != first:
            raise CorruptRecordError(
                f"group keyed {first} but first stored point id is {first_pid}"
            )
        return count
