"""Disk-based storage architecture (the paper's Section 4.1):

paged files + LRU buffer manager, slotted record files, disk B+-trees, the
CCAM-style locality ordering, and the combined network store.
"""

from repro.storage.bptree import BPlusTree
from repro.storage.ccam import ccam_order, nodes_per_page_estimate, random_order
from repro.storage.flatfile import RecordFile, rid_decode, rid_encode
from repro.storage.netstore import NetworkStore, StoredPointSet
from repro.storage.pager import (
    BufferManager,
    DEFAULT_BUFFER_BYTES,
    DEFAULT_PAGE_SIZE,
    FORMAT_VERSION,
    PagedFile,
)
from repro.storage.verify import Finding, verify_store

__all__ = [
    "BPlusTree",
    "ccam_order",
    "nodes_per_page_estimate",
    "random_order",
    "RecordFile",
    "rid_decode",
    "rid_encode",
    "NetworkStore",
    "StoredPointSet",
    "BufferManager",
    "DEFAULT_BUFFER_BYTES",
    "DEFAULT_PAGE_SIZE",
    "FORMAT_VERSION",
    "PagedFile",
    "Finding",
    "verify_store",
]
