"""Paged file storage with an LRU buffer manager.

The paper's experiments run against a disk-based representation with "a
memory buffer of 1Mb and the page size ... set to 4Kb"; this module provides
those two layers:

* :class:`PagedFile` — a file divided into fixed-size pages with a small
  header page (magic, page size, page count, and a metadata area that higher
  layers use to persist root pointers), counting physical reads/writes;
* :class:`BufferManager` — a fixed-capacity LRU page cache with write-back
  of dirty pages, counting hits, misses, and evictions.

The buffer statistics are the hardware-independent cost measure of the
storage experiments: 2002 disk latencies are long gone, but the *number* of
page faults a clustering algorithm triggers is timeless.  Both layers keep
their per-instance counters *and* mirror every event into the unified
:mod:`repro.obs` registry (``storage.physical_reads``,
``storage.buffer_hits``, ...) so traversal and I/O cost land in one report.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict

from repro.exceptions import PageError, StorageError
from repro.obs.core import add as _obs_add

__all__ = ["PagedFile", "BufferManager", "DEFAULT_PAGE_SIZE", "DEFAULT_BUFFER_BYTES"]

DEFAULT_PAGE_SIZE = 4096  # the paper's 4 KB pages
DEFAULT_BUFFER_BYTES = 1 << 20  # the paper's 1 MB buffer

_MAGIC = b"RPRO"
_HEADER_FMT = "<4sIQ"  # magic, page_size, num_pages
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_META_CAPACITY = 256  # bytes reserved in the header page for callers


class PagedFile:
    """A file of fixed-size pages, page 0 being the header.

    Parameters
    ----------
    path:
        File location; created when absent, validated when present.
    page_size:
        Page size in bytes (only used at creation; reopening reads it back).
    """

    def __init__(self, path: str, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.path = os.fspath(path)
        self.reads = 0
        self.writes = 0
        existing = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._fh = open(self.path, "r+b" if existing else "w+b")
        if existing:
            self._load_header()
        else:
            if page_size < _HEADER_SIZE + _META_CAPACITY:
                raise StorageError(
                    f"page_size must be at least {_HEADER_SIZE + _META_CAPACITY}"
                )
            self.page_size = int(page_size)
            self._num_pages = 1  # the header page
            self._meta = b""
            self._write_header()

    # ------------------------------------------------------------------
    # Header handling
    # ------------------------------------------------------------------
    def _load_header(self) -> None:
        self._fh.seek(0)
        raw = self._fh.read(_HEADER_SIZE)
        if len(raw) < _HEADER_SIZE:
            raise StorageError(f"{self.path}: truncated header")
        magic, page_size, num_pages = struct.unpack(_HEADER_FMT, raw)
        if magic != _MAGIC:
            raise StorageError(f"{self.path}: not a repro paged file")
        self.page_size = page_size
        self._num_pages = num_pages
        meta_len_raw = self._fh.read(2)
        meta_len = struct.unpack("<H", meta_len_raw)[0]
        if meta_len > _META_CAPACITY:
            raise StorageError(f"{self.path}: corrupt metadata length")
        self._meta = self._fh.read(meta_len)

    def _write_header(self) -> None:
        header = struct.pack(_HEADER_FMT, _MAGIC, self.page_size, self._num_pages)
        header += struct.pack("<H", len(self._meta)) + self._meta
        header = header.ljust(self.page_size, b"\x00")
        self._fh.seek(0)
        self._fh.write(header)

    def get_meta(self) -> bytes:
        """Caller-managed metadata persisted in the header page."""
        return self._meta

    def set_meta(self, meta: bytes) -> None:
        if len(meta) > _META_CAPACITY:
            raise StorageError(
                f"metadata limited to {_META_CAPACITY} bytes, got {len(meta)}"
            )
        self._meta = bytes(meta)
        self._write_header()

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Total pages including the header page."""
        return self._num_pages

    def allocate(self) -> int:
        """Append a zeroed page and return its id."""
        pid = self._num_pages
        self._num_pages += 1
        self._fh.seek(pid * self.page_size)
        self._fh.write(b"\x00" * self.page_size)
        self._write_header()
        return pid

    def _check_pid(self, pid: int) -> None:
        if not 1 <= pid < self._num_pages:
            raise PageError(
                f"page id {pid} out of range [1, {self._num_pages - 1}]"
            )

    def read_page(self, pid: int) -> bytes:
        self._check_pid(pid)
        self.reads += 1
        _obs_add("storage.physical_reads")
        self._fh.seek(pid * self.page_size)
        data = self._fh.read(self.page_size)
        if len(data) != self.page_size:
            raise PageError(f"short read on page {pid}")
        return data

    def write_page(self, pid: int, data: bytes) -> None:
        self._check_pid(pid)
        if len(data) > self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        self.writes += 1
        _obs_add("storage.physical_writes")
        self._fh.seek(pid * self.page_size)
        self._fh.write(bytes(data).ljust(self.page_size, b"\x00"))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._write_header()
            self._fh.close()

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PagedFile(path={self.path!r}, pages={self._num_pages}, "
            f"page_size={self.page_size})"
        )


class BufferManager:
    """A write-back LRU page cache over a :class:`PagedFile`.

    Parameters
    ----------
    file:
        The underlying paged file.
    capacity_bytes:
        Total buffer size; capacity in pages is ``capacity_bytes //
        page_size`` (minimum 1).
    """

    def __init__(
        self, file: PagedFile, capacity_bytes: int = DEFAULT_BUFFER_BYTES
    ) -> None:
        self.file = file
        self.capacity_pages = max(1, capacity_bytes // file.page_size)
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def read(self, pid: int) -> bytes:
        """Page contents, from cache when possible."""
        frame = self._frames.get(pid)
        if frame is not None:
            self.hits += 1
            _obs_add("storage.buffer_hits")
            self._frames.move_to_end(pid)
            return frame
        self.misses += 1
        _obs_add("storage.buffer_misses")
        data = self.file.read_page(pid)
        self._admit(pid, data)
        return data

    def write(self, pid: int, data: bytes) -> None:
        """Replace page contents (write-back: flushed on eviction/close)."""
        if len(data) > self.file.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.file.page_size}"
            )
        data = bytes(data).ljust(self.file.page_size, b"\x00")
        if pid in self._frames:
            self._frames[pid] = data
            self._frames.move_to_end(pid)
        else:
            self._admit(pid, data)
        self._dirty.add(pid)

    def allocate(self) -> int:
        """Allocate a fresh page in the underlying file."""
        return self.file.allocate()

    def _admit(self, pid: int, data: bytes) -> None:
        while len(self._frames) >= self.capacity_pages:
            old_pid, old_data = self._frames.popitem(last=False)
            self.evictions += 1
            _obs_add("storage.buffer_evictions")
            if old_pid in self._dirty:
                self.file.write_page(old_pid, old_data)
                self._dirty.discard(old_pid)
        self._frames[pid] = data

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write all dirty pages through to the file."""
        for pid in sorted(self._dirty):
            self.file.write_page(pid, self._frames[pid])
        self._dirty.clear()
        self.file.flush()

    def close(self) -> None:
        self.flush()
        self.file.close()

    def reset_stats(self) -> None:
        """Zero the cache and file counters (used between experiment runs)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.file.reads = 0
        self.file.writes = 0

    def drop_cache(self) -> None:
        """Flush and empty the cache (simulates a cold start)."""
        self.flush()
        self._frames.clear()

    def stats(self) -> dict[str, int]:
        return {
            "buffer_hits": self.hits,
            "buffer_misses": self.misses,
            "evictions": self.evictions,
            "physical_reads": self.file.reads,
            "physical_writes": self.file.writes,
        }

    def __enter__(self) -> "BufferManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
