"""Paged file storage with an LRU buffer manager.

The paper's experiments run against a disk-based representation with "a
memory buffer of 1Mb and the page size ... set to 4Kb"; this module provides
those two layers:

* :class:`PagedFile` — a file divided into fixed-size pages with a small
  header page (magic, format version, commit flag, page size, page count,
  and a metadata area that higher layers use to persist root pointers),
  counting physical reads/writes;
* :class:`BufferManager` — a fixed-capacity LRU page cache with write-back
  of dirty pages, counting hits, misses, and evictions.

Crash consistency (format version 2)
------------------------------------
Every page — the header included — is stored as a *frame* of
``page_size + 4`` bytes: the page payload followed by a CRC32 trailer
computed over the payload.  :meth:`PagedFile.read_page` verifies the trailer
and raises :class:`~repro.exceptions.PageCorruptError` (with the page id and
file offset) on mismatch, so torn writes and bit rot surface as typed errors
instead of silently decoded garbage.  The logical page size upper layers see
is unchanged; only the physical stride grows by four bytes.

The header carries a **commit flag**: it is clear while a file is being
built or mutated and set (with an fsync) by a clean :meth:`PagedFile.close`
/ :meth:`PagedFile.commit`.  Reopening a file whose flag is clear raises a
clean :class:`~repro.exceptions.StorageError` — a half-written file from a
crashed build can never reopen as data (pass ``allow_uncommitted=True`` for
forensic tools like ``repro check``).

Thread safety
-------------
Both layers may be shared across threads — the ``repro serve`` worker
pool reads one disk-backed store concurrently.  A per-:class:`PagedFile`
reentrant lock serializes every seek+read / seek+write pair on the
underlying handle (an interleaved seek from another thread would return
the wrong page's frame, whose CRC still validates), and a
per-:class:`BufferManager` lock guards the LRU bookkeeping, whose
``move_to_end`` racing an eviction would otherwise raise.

The buffer statistics are the hardware-independent cost measure of the
storage experiments: both layers keep their per-instance counters *and*
mirror every event into the unified :mod:`repro.obs` registry
(``storage.physical_reads``, ``storage.buffer_hits``,
``storage.checksum_failures``, ...).  All physical I/O routes through
:mod:`repro.faults` injection sites (``pager.read_page``,
``pager.write_page``, ``pager.write_header``, ``pager.allocate``,
``pager.flush``) and charges any active page-read budget.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from collections import OrderedDict

from repro.exceptions import PageCorruptError, PageError, StorageError
from repro.faults.core import STATE as _FAULTS, CrashPoint, fire as _fault, tear as _tear
from repro.obs.core import add as _obs_add
from repro.recovery.retry import STATE as _RETRY
from repro.resilience.breaker import STATE as _BREAKER

__all__ = [
    "PagedFile",
    "BufferManager",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_BUFFER_BYTES",
    "FORMAT_VERSION",
    "CHECKSUM_BYTES",
]

DEFAULT_PAGE_SIZE = 4096  # the paper's 4 KB pages
DEFAULT_BUFFER_BYTES = 1 << 20  # the paper's 1 MB buffer

FORMAT_VERSION = 2  # version 1 had no checksums and no commit flag
CHECKSUM_BYTES = 4  # CRC32 trailer appended to every physical page

_MAGIC = b"RPRO"
_HEADER_FMT = "<4sHHIQ"  # magic, version, flags, page_size, num_pages
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_META_CAPACITY = 256  # bytes reserved in the header page for callers
_FLAG_COMMITTED = 0x0001


def _crc(payload: bytes) -> bytes:
    return struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)


class PagedFile:
    """A file of fixed-size checksummed pages, page 0 being the header.

    Parameters
    ----------
    path:
        File location; created when absent, validated when present.
    page_size:
        Logical page size in bytes (only used at creation; reopening reads
        it back).  The physical on-disk stride is ``page_size + 4`` for the
        CRC32 trailer.
    allow_uncommitted:
        Permit reopening a file whose commit flag is clear (a crashed
        build).  Default ``False``: such files raise ``StorageError``.
    """

    def __init__(
        self,
        path: str,
        page_size: int = DEFAULT_PAGE_SIZE,
        allow_uncommitted: bool = False,
    ) -> None:
        self.path = os.fspath(path)
        self.reads = 0
        self.writes = 0
        # Serializes every seek+read/seek+write pair on the shared handle:
        # QueryService workers read one PagedFile concurrently, and an
        # interleaved seek from another thread would return the wrong
        # page's frame (whose CRC still validates — the trailer does not
        # bind the page id).  Reentrant because allocate()/_uncommit()
        # write the header while already holding the lock.
        self._io_lock = threading.RLock()
        exists = os.path.exists(self.path)
        if exists and os.path.getsize(self.path) == 0:
            raise StorageError(
                f"{self.path}: existing file is empty — not a paged file "
                "(interrupted creation?)"
            )
        if not exists and page_size < _HEADER_SIZE + 2 + _META_CAPACITY:
            raise StorageError(
                f"page_size must be at least {_HEADER_SIZE + 2 + _META_CAPACITY}"
            )
        try:
            self._fh = open(self.path, "r+b" if exists else "w+b")
        except OSError as exc:
            raise StorageError(f"{self.path}: cannot open: {exc}") from exc
        try:
            if exists:
                self._load_header(allow_uncommitted)
            else:
                self.page_size = int(page_size)
                self._num_pages = 1  # the header page
                self._meta = b""
                self.committed = False
                self._write_header()
        except BaseException:
            self._fh.close()
            raise

    @property
    def stride(self) -> int:
        """Physical bytes per page on disk (payload + CRC trailer)."""
        return self.page_size + CHECKSUM_BYTES

    # ------------------------------------------------------------------
    # Header handling
    # ------------------------------------------------------------------
    def _load_header(self, allow_uncommitted: bool) -> None:
        # The whole load is wrapped: a truncated or garbage header must
        # surface as StorageError with the path and reason, never as a raw
        # struct.error / OSError from half-parsed bytes.
        try:
            self._fh.seek(0)
            raw = self._fh.read(_HEADER_SIZE)
            if len(raw) < _HEADER_SIZE:
                raise StorageError(f"{self.path}: truncated header")
            magic, version, flags, page_size, num_pages = struct.unpack(
                _HEADER_FMT, raw
            )
            if magic != _MAGIC:
                raise StorageError(f"{self.path}: not a repro paged file")
            if version != FORMAT_VERSION:
                raise StorageError(
                    f"{self.path}: unsupported paged-file format version "
                    f"{version} (this build reads version {FORMAT_VERSION})"
                )
            if page_size < _HEADER_SIZE + 2 + _META_CAPACITY:
                raise StorageError(
                    f"{self.path}: implausible page size {page_size} in header"
                )
            # Verify the header frame's CRC before trusting anything else.
            self._fh.seek(0)
            frame = self._fh.read(page_size + CHECKSUM_BYTES)
            if len(frame) < page_size + CHECKSUM_BYTES:
                raise StorageError(f"{self.path}: truncated header page")
            payload, trailer = frame[:page_size], frame[page_size:]
            if _crc(payload) != trailer:
                _obs_add("storage.checksum_failures")
                raise PageCorruptError(
                    0, 0, path=self.path, reason="header checksum mismatch"
                )
            self.page_size = page_size
            self._num_pages = num_pages
            self.committed = bool(flags & _FLAG_COMMITTED)
            if not self.committed and not allow_uncommitted:
                raise StorageError(
                    f"{self.path}: file was never cleanly committed "
                    "(crashed or interrupted build) — refusing to open"
                )
            (meta_len,) = struct.unpack_from("<H", payload, _HEADER_SIZE)
            if meta_len > _META_CAPACITY:
                raise StorageError(f"{self.path}: corrupt metadata length")
            meta_off = _HEADER_SIZE + 2
            self._meta = payload[meta_off : meta_off + meta_len]
        except StorageError:
            raise
        except (struct.error, OSError, ValueError) as exc:
            raise StorageError(
                f"{self.path}: cannot load paged-file header: {exc}"
            ) from exc

    def _write_header(self) -> None:
        if _FAULTS.engaged:
            _fault("pager.write_header")
        flags = _FLAG_COMMITTED if self.committed else 0
        payload = struct.pack(
            _HEADER_FMT, _MAGIC, FORMAT_VERSION, flags, self.page_size,
            self._num_pages,
        )
        payload += struct.pack("<H", len(self._meta)) + self._meta
        payload = payload.ljust(self.page_size, b"\x00")
        frame = payload + _crc(payload)
        with self._io_lock:
            self._fh.seek(0)
            if _FAULTS.engaged:
                cut = _tear("pager.write_header", len(frame))
                if cut is not None:
                    self._fh.write(frame[:cut])
                    self._fh.flush()
                    raise CrashPoint("pager.write_header")
            self._fh.write(frame)

    def _uncommit(self) -> None:
        """Clear the commit flag *before* mutating data pages.

        Only reopened-committed files pay the extra header write; files
        under construction are already uncommitted.  The cleared flag is
        flushed to the OS immediately so it can never be reordered after
        the data writes it guards.
        """
        with self._io_lock:
            if self.committed:
                self.committed = False
                self._write_header()
                self._fh.flush()

    def get_meta(self) -> bytes:
        """Caller-managed metadata persisted in the header page."""
        return self._meta

    def set_meta(self, meta: bytes) -> None:
        if len(meta) > _META_CAPACITY:
            raise StorageError(
                f"metadata limited to {_META_CAPACITY} bytes, got {len(meta)}"
            )
        self._meta = bytes(meta)
        self.committed = False
        self._write_header()

    # ------------------------------------------------------------------
    # Page access
    # ------------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        """Total pages including the header page."""
        return self._num_pages

    def allocate(self) -> int:
        """Append a zeroed page and return its id."""
        if _FAULTS.engaged:
            _fault("pager.allocate")
        with self._io_lock:
            self._uncommit()
            pid = self._num_pages
            self._num_pages += 1
            payload = b"\x00" * self.page_size
            self._fh.seek(pid * self.stride)
            self._fh.write(payload + _crc(payload))
            self._write_header()
        return pid

    def _check_pid(self, pid: int) -> None:
        if not 1 <= pid < self._num_pages:
            raise PageError(
                f"page id {pid} out of range [1, {self._num_pages - 1}]"
            )

    def read_page(self, pid: int) -> bytes:
        """One logical page read; the single physical-read chokepoint.

        Every flat-file, B+-tree, and network-store read funnels through
        here, so this is also where the retry layer
        (:mod:`repro.recovery.retry`) wraps transient I/O failures: each
        attempt re-enters ``_read_page_attempt`` (re-firing the fault site
        and re-charging any page-read budget), so injected transient
        errors and retries compose deterministically.

        An installed :class:`~repro.resilience.CircuitBreaker` guards each
        *attempt* (see ``_read_page_attempt``), i.e. it sits inside the
        retry loop: persistent faults trip it mid-backoff and the
        non-retryable :class:`~repro.exceptions.CircuitOpenError` then
        fails this and every following read fast.
        """
        self._check_pid(pid)
        policy = _RETRY.policy
        if policy is None:
            return self._read_page_attempt(pid)
        return policy.run(
            "pager.read_page", lambda: self._read_page_attempt(pid)
        )

    def _read_page_attempt(self, pid: int) -> bytes:
        breaker = _BREAKER.breaker
        if breaker is None:
            return self._read_page_raw(pid)
        return breaker.call("pager.read_page", lambda: self._read_page_raw(pid))

    def _read_page_raw(self, pid: int) -> bytes:
        if _FAULTS.engaged:
            _fault("pager.read_page")
            budget = _FAULTS.budget
            if budget is not None:
                budget.spend_page_reads(1)
        _obs_add("storage.physical_reads")
        offset = pid * self.stride
        with self._io_lock:
            self.reads += 1
            self._fh.seek(offset)
            frame = self._fh.read(self.stride)
        if len(frame) != self.stride:
            _obs_add("storage.checksum_failures")
            raise PageCorruptError(
                pid, offset, path=self.path, reason="truncated page"
            )
        payload, trailer = frame[: self.page_size], frame[self.page_size :]
        if _crc(payload) != trailer:
            _obs_add("storage.checksum_failures")
            raise PageCorruptError(
                pid, offset, path=self.path, reason="CRC32 mismatch"
            )
        return payload

    def write_page(self, pid: int, data: bytes) -> None:
        self._check_pid(pid)
        if len(data) > self.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if _FAULTS.engaged:
            _fault("pager.write_page")
        _obs_add("storage.physical_writes")
        payload = bytes(data).ljust(self.page_size, b"\x00")
        frame = payload + _crc(payload)
        with self._io_lock:
            self._uncommit()
            self.writes += 1
            self._fh.seek(pid * self.stride)
            if _FAULTS.engaged:
                cut = _tear("pager.write_page", len(frame))
                if cut is not None:
                    # A torn write: persist a prefix of the frame, then
                    # "die".  The stale/garbage trailer makes the next
                    # read fail its CRC.
                    self._fh.write(frame[:cut])
                    self._fh.flush()
                    raise CrashPoint("pager.write_page")
            self._fh.write(frame)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        if _FAULTS.engaged:
            _fault("pager.flush")
        with self._io_lock:
            self._fh.flush()
            try:
                os.fsync(self._fh.fileno())
            except OSError:  # pragma: no cover - e.g. pipes in exotic setups
                pass

    def commit(self) -> None:
        """Durably mark the file consistent (header flag + fsync)."""
        if not self._fh.closed:
            self.committed = True
            self._write_header()
            self.flush()

    def close(self) -> None:
        """Commit and close: a cleanly closed file always reopens."""
        if not self._fh.closed:
            self.commit()
            self._fh.close()

    def abort(self) -> None:
        """Close the file handle *without* committing (crash simulation /
        error cleanup). On-disk state is left exactly as last written."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "PagedFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"PagedFile(path={self.path!r}, pages={self._num_pages}, "
            f"page_size={self.page_size}, committed={self.committed})"
        )


class BufferManager:
    """A write-back LRU page cache over a :class:`PagedFile`.

    Parameters
    ----------
    file:
        The underlying paged file.
    capacity_bytes:
        Total buffer size; capacity in pages is ``capacity_bytes //
        page_size`` (minimum 1).
    """

    def __init__(
        self, file: PagedFile, capacity_bytes: int = DEFAULT_BUFFER_BYTES
    ) -> None:
        self.file = file
        self.capacity_pages = max(1, capacity_bytes // file.page_size)
        self._frames: OrderedDict[int, bytes] = OrderedDict()
        self._dirty: set[int] = set()
        # The LRU bookkeeping (OrderedDict moves/evictions) is shared by
        # every thread reading a served store; an unguarded move_to_end
        # racing an eviction raises KeyError.  Reentrant: flush() runs
        # under the lock and close()/drop_cache() call it while holding.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def read(self, pid: int) -> bytes:
        """Page contents, from cache when possible."""
        with self._lock:
            frame = self._frames.get(pid)
            if frame is not None:
                self.hits += 1
                _obs_add("storage.buffer_hits")
                self._frames.move_to_end(pid)
                return frame
            self.misses += 1
            _obs_add("storage.buffer_misses")
            data = self.file.read_page(pid)
            self._admit(pid, data)
            return data

    def write(self, pid: int, data: bytes) -> None:
        """Replace page contents (write-back: flushed on eviction/close)."""
        if len(data) > self.file.page_size:
            raise PageError(
                f"data of {len(data)} bytes exceeds page size {self.file.page_size}"
            )
        data = bytes(data).ljust(self.file.page_size, b"\x00")
        with self._lock:
            if pid in self._frames:
                self._frames[pid] = data
                self._frames.move_to_end(pid)
            else:
                self._admit(pid, data)
            self._dirty.add(pid)

    def allocate(self) -> int:
        """Allocate a fresh page in the underlying file."""
        return self.file.allocate()

    def _admit(self, pid: int, data: bytes) -> None:
        while len(self._frames) >= self.capacity_pages:
            old_pid, old_data = self._frames.popitem(last=False)
            self.evictions += 1
            _obs_add("storage.buffer_evictions")
            if old_pid in self._dirty:
                self.file.write_page(old_pid, old_data)
                self._dirty.discard(old_pid)
        self._frames[pid] = data

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write all dirty pages through to the file."""
        with self._lock:
            for pid in sorted(self._dirty):
                self.file.write_page(pid, self._frames[pid])
            self._dirty.clear()
            self.file.flush()

    def close(self) -> None:
        with self._lock:
            self.flush()
            self.file.close()

    def abort(self) -> None:
        """Drop all cached state and close without flushing or committing
        (crash simulation / error cleanup)."""
        with self._lock:
            self._frames.clear()
            self._dirty.clear()
            self.file.abort()

    def reset_stats(self) -> None:
        """Zero the cache and file counters (used between experiment runs)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.file.reads = 0
        self.file.writes = 0

    def drop_cache(self) -> None:
        """Flush and empty the cache (simulates a cold start)."""
        with self._lock:
            self.flush()
            self._frames.clear()

    def stats(self) -> dict[str, int]:
        return {
            "buffer_hits": self.hits,
            "buffer_misses": self.misses,
            "evictions": self.evictions,
            "physical_reads": self.file.reads,
            "physical_writes": self.file.writes,
        }

    def __enter__(self) -> "BufferManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
