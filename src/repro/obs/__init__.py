"""repro.obs — unified tracing & metrics for the whole library.

The paper's entire evaluation is a cost study: node accesses, page I/O and
runtime of k-medoids vs. ε-Link vs. Single-Link.  This package is the single
place all of those measurements flow through:

* **Counters** — one flat, namespaced registry (``dijkstra.heap_pops``,
  ``storage.physical_reads``, ``kmedoids.swap_iterations``, ...) fed by the
  traversal, clustering and storage layers.
* **Spans** — hierarchical wall-clock timing (``cluster.k-medoids`` →
  ``kmedoids.seed`` / ``kmedoids.swap`` → ...) with
  :mod:`contextvars`-correct nesting and optional JSONL export.
* **Reports** — a printable phase/counter table (the CLI's ``--stats``) and
  a machine-readable *metrics sidecar* consumed by the benchmark report.
* **Live metrics** — log-bucketed latency :class:`Histogram`\\ s and
  callable-backed :class:`Gauge`\\ s (:mod:`repro.obs.metrics`) feeding the
  serve tier's ``{"op": "stats"}`` wire snapshot, the ``--metrics-file``
  JSONL exporter (:mod:`repro.obs.export`), and a Prometheus text renderer.

Everything is off by default and the disabled path is designed to be
invisible: ``span()`` returns a pre-allocated no-op singleton, ``add()`` is
a single flag check, and the hottest traversal loops only run their counting
twins when recording is on.

Usage::

    from repro import obs

    obs.enable(trace_path="trace.jsonl")   # or obs.enable() for counters only
    result = EpsLink(net, pts, eps=0.5).run()
    obs.disable()
    print(obs.format_table())
    obs.snapshot()["counters"]["dijkstra.nodes_settled"]
"""

from repro.obs.core import (
    NOOP_SPAN,
    STATE,
    ObsState,
    Span,
    TraceWriter,
    add,
    current_span,
    disable,
    enable,
    is_enabled,
    is_sampled,
    reset,
    sampled,
    span,
)
from repro.obs.export import MetricsExporter
from repro.obs.metrics import (
    REGISTRY,
    Gauge,
    Histogram,
    MetricsRegistry,
    observe,
)
from repro.obs.report import (
    SIDECAR_SCHEMA,
    format_table,
    load_metrics_sidecar,
    render_prometheus,
    snapshot,
    write_metrics_sidecar,
)
from repro.obs.timing import Stopwatch

__all__ = [
    "NOOP_SPAN",
    "REGISTRY",
    "STATE",
    "Gauge",
    "Histogram",
    "MetricsExporter",
    "MetricsRegistry",
    "ObsState",
    "SIDECAR_SCHEMA",
    "Span",
    "Stopwatch",
    "TraceWriter",
    "add",
    "current_span",
    "disable",
    "enable",
    "format_table",
    "is_enabled",
    "is_sampled",
    "load_metrics_sidecar",
    "observe",
    "render_prometheus",
    "reset",
    "sampled",
    "snapshot",
    "span",
    "write_metrics_sidecar",
]
