"""Periodic metrics export: one JSONL snapshot line per interval.

``repro serve --metrics-file PATH --metrics-interval-s N`` attaches a
:class:`MetricsExporter` to the process: a daemon thread that appends one
JSON object — wall-clock timestamp, uptime, the full counter registry, and
every histogram/gauge — to ``PATH`` every ``N`` seconds, plus one final
line on :meth:`close` so even a short-lived session leaves a complete
record.  The file is plain JSONL; each line is independently parseable, so
a crashed process leaves at worst one torn final line and everything before
it intact.

The exporter only *reads* the registries (gauge callables are sampled at
write time); it adds nothing to any request hot path.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.report import snapshot as _obs_snapshot

__all__ = ["MetricsExporter", "SNAPSHOT_SCHEMA"]

SNAPSHOT_SCHEMA = "repro.obs.metrics-snapshot/v1"


class MetricsExporter:
    """Appends one metrics snapshot per interval to a JSONL file.

    Parameters
    ----------
    path:
        Output JSONL file (truncated on open).
    interval_s:
        Seconds between snapshot lines; must be positive.
    registry:
        The metrics registry to read (the process-global one by default).
    clock:
        Monotonic clock for the ``uptime_s`` field; injectable for tests.

    The writer thread starts immediately and is a daemon — a wedged
    exporter can never block process exit.  :meth:`close` stops it, writes
    one final snapshot, and closes the file.
    """

    def __init__(
        self,
        path: str,
        interval_s: float = 10.0,
        *,
        registry: MetricsRegistry = REGISTRY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s!r}")
        self.path = path
        self.interval_s = float(interval_s)
        self._registry = registry
        self._clock = clock
        self._started_at = clock()
        self._fh = open(path, "w", encoding="utf-8")
        self._write_lock = threading.Lock()
        self._stop = threading.Event()
        self.lines_written = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-exporter", daemon=True
        )
        self._thread.start()

    # -- snapshot --------------------------------------------------------

    def snapshot(self) -> dict:
        """One exportable snapshot document (also what each line holds)."""
        base = _obs_snapshot()
        metric = self._registry.snapshot()
        return {
            "schema": SNAPSHOT_SCHEMA,
            "t": time.time(),
            "uptime_s": max(self._clock() - self._started_at, 0.0),
            "counters": base["counters"],
            "histograms": metric["histograms"],
            "gauges": metric["gauges"],
        }

    def write_snapshot(self) -> None:
        """Append one snapshot line now (also called by the timer loop)."""
        line = json.dumps(self.snapshot(), default=str) + "\n"
        with self._write_lock:
            if self._fh.closed:
                return
            self._fh.write(line)
            self._fh.flush()
            self.lines_written += 1

    # -- lifecycle -------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.write_snapshot()

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop the timer thread, write a final snapshot, close the file."""
        self._stop.set()
        self._thread.join(timeout_s)
        self.write_snapshot()
        with self._write_lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
