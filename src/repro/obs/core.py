"""Core of the observability subsystem: state, counters, and span tracing.

One process-global :class:`ObsState` holds everything the subsystem knows:
an ``enabled`` flag, the unified counter namespace, per-span-name timing
aggregates, and an optional JSONL trace writer.  Instrumented code interacts
with it through two primitives only:

* :func:`add` — bump a namespaced counter (``"dijkstra.heap_pops"``,
  ``"storage.physical_reads"``, ...).  A no-op while disabled.
* :func:`span` — open a hierarchical timing span as a context manager.
  While disabled it returns a shared singleton whose ``__enter__`` /
  ``__exit__`` do nothing, so the disabled path costs one attribute check
  and allocates nothing beyond that no-op object (which already exists).

The active span is tracked in a :mod:`contextvars` ``ContextVar``, so
nesting is correct across threads and asyncio tasks: each thread/task sees
its own span stack while all aggregates land in the shared registry.
Aggregate mutation (counter adds, span fold-in) happens under one process
lock: the multi-worker serve pool increments the same names concurrently,
and an unguarded ``c[name] = c.get(name, 0) + value`` silently drops
updates when two workers interleave between the read and the write.  The
disabled path never touches the lock.

Request-scoped trace sampling: when :func:`enable` is called with
``sample_requests=True``, the trace writer records only spans opened
inside a :func:`sampled` scope (a ``ContextVar`` flag, so it follows the
request into whatever thread executes it).  The query service uses this to
trace individual requests that carry a ``trace`` flag without paying the
trace cost for — or flooding the file with — every other request.

Hot loops that cannot afford even a per-operation function call (the
Dijkstra inner loops) instead check ``STATE.enabled`` once on entry and run
a counting twin of the loop only when observability is on — the disabled
path executes the exact pre-instrumentation bytecode.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import threading
import time

__all__ = [
    "ObsState",
    "STATE",
    "Span",
    "TraceWriter",
    "add",
    "current_span",
    "disable",
    "enable",
    "is_enabled",
    "is_sampled",
    "reset",
    "sampled",
    "span",
]


class ObsState:
    """Process-global observability state (use the module-level ``STATE``)."""

    __slots__ = (
        "enabled",
        "sampling",
        "counters",
        "span_count",
        "span_total",
        "writer",
        "epoch",
        "lock",
    )

    def __init__(self) -> None:
        self.enabled = False
        #: when True, the trace writer records only spans opened inside a
        #: :func:`sampled` scope (request-scoped tracing)
        self.sampling = False
        #: name -> cumulative integer count
        self.counters: dict[str, int] = {}
        #: span name -> number of completed spans
        self.span_count: dict[str, int] = {}
        #: span name -> cumulative duration in seconds
        self.span_total: dict[str, float] = {}
        self.writer: TraceWriter | None = None
        #: perf_counter value at the first / latest *fresh* :func:`enable`;
        #: span starts are relative to it
        self.epoch = 0.0
        #: guards every read-modify-write of the aggregate dicts
        self.lock = threading.Lock()


STATE = ObsState()

#: callbacks run by :func:`reset` (the metrics registry hooks in here so
#: ``obs.reset()`` zeroes histograms too, without a circular import)
_RESET_HOOKS: list = []


# ----------------------------------------------------------------------
# Counters
# ----------------------------------------------------------------------
def add(name: str, value: int = 1) -> None:
    """Add ``value`` to counter ``name`` (no-op while disabled).

    Thread-safe: the read-modify-write runs under ``STATE.lock``, so
    concurrent serve workers incrementing the same name never lose an
    update.  The disabled path stays one flag check and allocation-free.
    """
    st = STATE
    if st.enabled:
        with st.lock:
            c = st.counters
            c[name] = c.get(name, 0) + value


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
_SPAN_IDS = itertools.count(1)
_ACTIVE: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro.obs.active_span", default=None
)
_SAMPLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro.obs.sampled", default=False
)


class Span:
    """One timed, hierarchical region of execution.

    Entering the span records the current active span as its parent and
    installs itself as active; exiting restores the parent, folds the
    duration into the per-name aggregates, and emits a JSONL record when a
    trace writer is configured.
    """

    __slots__ = (
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "start_s",
        "duration_s",
        "_token",
        "_t0",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.span_id = next(_SPAN_IDS)
        self.parent_id: int | None = None
        self.start_s = 0.0
        self.duration_s: float | None = None
        self._token: contextvars.Token | None = None
        self._t0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span (rendered into its trace record)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        parent = _ACTIVE.get()
        self.parent_id = parent.span_id if parent is not None else None
        self._token = _ACTIVE.set(self)
        self._t0 = time.perf_counter()
        self.start_s = self._t0 - STATE.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._t0
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        st = STATE
        with st.lock:
            st.span_count[self.name] = st.span_count.get(self.name, 0) + 1
            st.span_total[self.name] = (
                st.span_total.get(self.name, 0.0) + self.duration_s
            )
        writer = st.writer
        if writer is not None and (not st.sampling or _SAMPLED.get()):
            writer.write_span(self, error=exc_type is not None)
        return False

    def __repr__(self) -> str:
        return f"Span(name={self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _NoopSpan:
    """The shared do-nothing span returned while observability is disabled."""

    __slots__ = ()

    span_id = None
    parent_id = None
    name = ""
    duration_s = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs):
    """A timing span context manager (the no-op singleton while disabled).

    Spans are live when observability is fully enabled, or — with
    request-scoped sampling on — inside a :func:`sampled` scope.  The
    fully-disabled path is two attribute checks and allocates nothing.
    """
    st = STATE
    if st.enabled or (st.sampling and _SAMPLED.get()):
        return Span(name, attrs)
    return NOOP_SPAN


def current_span() -> Span | None:
    """The innermost active span of the calling thread/task, if any."""
    return _ACTIVE.get()


class _SampledScope:
    """Context manager marking the current context as trace-sampled."""

    __slots__ = ("_token",)

    def __enter__(self) -> "_SampledScope":
        self._token = _SAMPLED.set(True)
        return self

    def __exit__(self, *exc) -> bool:
        _SAMPLED.reset(self._token)
        return False


def sampled() -> _SampledScope:
    """Mark the calling context as trace-sampled for the ``with`` body.

    Under ``enable(sample_requests=True)``, spans opened inside this scope
    are recorded to the trace file; spans outside it are not.  The flag is
    a ``ContextVar``, so it is per-thread/per-task and nests safely.
    """
    return _SampledScope()


def is_sampled() -> bool:
    """Whether the calling context is inside a :func:`sampled` scope."""
    return _SAMPLED.get()


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------
class TraceWriter:
    """Appends one JSON object per completed span to a JSONL file.

    Records carry ``name``, ``span_id``, ``parent_id``, ``start_s`` (seconds
    since :func:`enable`), ``dur_s``, ``thread``, ``attrs`` and an ``error``
    flag.  Writes are serialised by a lock so spans from worker threads
    interleave without tearing lines.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self.records_written = 0

    def write_span(self, sp: Span, error: bool = False) -> None:
        record = {
            "name": sp.name,
            "span_id": sp.span_id,
            "parent_id": sp.parent_id,
            "start_s": round(sp.start_s, 9),
            "dur_s": round(sp.duration_s or 0.0, 9),
            "thread": threading.get_ident(),
        }
        if sp.attrs:
            record["attrs"] = sp.attrs
        if error:
            record["error"] = True
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            if not self._fh.closed:
                self._fh.write(line)
                self.records_written += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def is_enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return STATE.enabled


def enable(
    trace_path: str | None = None,
    fresh: bool = True,
    sample_requests: bool = False,
) -> None:
    """Turn observability on.

    Parameters
    ----------
    trace_path:
        When given, completed spans are appended to this JSONL file until
        :func:`disable` closes it.
    fresh:
        Clear previously accumulated counters and span aggregates (the
        default); pass ``False`` to accumulate across enable/disable pairs.
    sample_requests:
        Record to the trace file only spans opened inside a
        :func:`sampled` scope.  Aggregates (counters, span totals) are
        unaffected — only trace *export* is sampled.
    """
    if fresh:
        reset()
        STATE.epoch = time.perf_counter()
    elif STATE.epoch == 0.0:
        # First enable ever: there is no earlier epoch to accumulate onto.
        STATE.epoch = time.perf_counter()
    # Accumulating re-enables keep the original epoch so span ``start_s``
    # values stay monotone across enable/disable cycles instead of jumping
    # backwards to a rebased zero.
    if STATE.writer is not None:
        STATE.writer.close()
    STATE.writer = TraceWriter(trace_path) if trace_path else None
    STATE.sampling = sample_requests
    STATE.enabled = True


def disable() -> None:
    """Turn observability off and close the trace file (aggregates remain
    readable until the next ``enable(fresh=True)``)."""
    STATE.enabled = False
    STATE.sampling = False
    writer = STATE.writer
    STATE.writer = None
    if writer is not None:
        writer.close()


def reset() -> None:
    """Zero all counters, span aggregates, and registered metric state."""
    with STATE.lock:
        STATE.counters.clear()
        STATE.span_count.clear()
        STATE.span_total.clear()
    for hook in _RESET_HOOKS:
        hook()
