"""Live metrics: log-bucketed histograms and callable-backed gauges.

The counter/span state in :mod:`repro.obs.core` is *post-mortem*: cumulative
totals read after a run.  A live :class:`~repro.serve.QueryService` needs
distributions and instantaneous readings — p50/p99 request latency, queue
depth, breaker state, cache hit ratio — while it is serving.  This module
adds the two missing instrument kinds to the same process-global registry
model:

* :class:`Histogram` — fixed logarithmic buckets over seconds.
  ``observe(value)`` is a short critical section (one lock, a bisect, four
  integer/float updates); reads (:meth:`quantile`, :meth:`snapshot`) are
  lock-free — a snapshot taken mid-observe may be one sample stale, never
  torn in a way that matters for monitoring.  ``count`` and ``sum`` are
  exact; quantiles are estimated by linear interpolation inside the
  containing bucket, the standard Prometheus-style estimator.
* :class:`Gauge` — a name bound to a zero-argument callable, sampled at
  *read* time only.  Registering a gauge costs nothing on any hot path;
  a failing callable reads as ``None`` instead of raising.

Both live in the module-level :data:`REGISTRY` (mirroring
``obs.core.STATE``), are zeroed by :func:`repro.obs.reset`, and surface
through the ``{"op": "stats"}`` wire request, the ``--metrics-file`` JSONL
exporter (:mod:`repro.obs.export`), and the Prometheus text renderer
(:func:`repro.obs.report.render_prometheus`).

Recording is gated exactly like counters: the serve instrumentation makes
one ``STATE.enabled`` check per request and performs no histogram work at
all while observability is off.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable

from repro.obs.core import _RESET_HOOKS, STATE

__all__ = [
    "DEFAULT_BUCKET_COUNT",
    "DEFAULT_FACTOR",
    "DEFAULT_START",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "observe",
]

#: Default first bucket upper bound: 1 µs, well under any real request.
DEFAULT_START = 1e-6
#: Default geometric growth factor between bucket bounds.
DEFAULT_FACTOR = 2.0
#: Default finite bucket count: 1 µs · 2^29 ≈ 537 s spans every latency a
#: serve deadline could permit; slower observations land in the overflow.
DEFAULT_BUCKET_COUNT = 30

#: Standard quantiles rendered into snapshots.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


class Histogram:
    """Fixed-logarithmic-bucket histogram with exact count/sum.

    Parameters
    ----------
    name:
        Dotted metric name (``"serve.latency"``); validated by the
        ``tools/check_metric_names.py`` lint at the call sites.
    start / factor / buckets:
        The finite bucket upper bounds are ``start * factor**i`` for
        ``i in range(buckets)``; one overflow bucket catches the rest.
    """

    __slots__ = (
        "name",
        "bounds",
        "bucket_counts",
        "count",
        "sum",
        "min",
        "max",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        *,
        start: float = DEFAULT_START,
        factor: float = DEFAULT_FACTOR,
        buckets: int = DEFAULT_BUCKET_COUNT,
    ) -> None:
        if start <= 0:
            raise ValueError(f"start must be > 0, got {start!r}")
        if factor <= 1:
            raise ValueError(f"factor must be > 1, got {factor!r}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets!r}")
        self.name = name
        self.bounds: tuple[float, ...] = tuple(
            start * factor**i for i in range(buckets)
        )
        # One extra slot: the overflow bucket for values above bounds[-1].
        self.bucket_counts: list[int] = [0] * (buckets + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (seconds).  Thread-safe."""
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[idx] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def reset(self) -> None:
        """Zero every aggregate in place (the object identity survives, so
        holders of a reference keep observing into the same instrument)."""
        with self._lock:
            for i in range(len(self.bucket_counts)):
                self.bucket_counts[i] = 0
            self.count = 0
            self.sum = 0.0
            self.min = float("inf")
            self.max = float("-inf")

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (0 < q <= 1), ``None`` when empty.

        Linear interpolation between the containing bucket's bounds,
        clamped to the observed min/max.  Lock-free: a concurrent observe
        can make the estimate one sample stale, never wrong by more than a
        bucket.
        """
        total = self.count
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        for idx, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[idx - 1] if idx > 0 else 0.0
                upper = (
                    self.bounds[idx] if idx < len(self.bounds) else self.max
                )
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - rounding edge under races

    def snapshot(self) -> dict:
        """JSON-ready state: exact count/sum/min/max, non-empty buckets as
        ``[upper_bound_or_None, count]`` pairs (``None`` = overflow), and
        the standard quantiles (``None`` while empty)."""
        buckets = [
            [self.bounds[i] if i < len(self.bounds) else None, c]
            for i, c in enumerate(self.bucket_counts)
            if c
        ]
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "buckets": buckets,
            **{
                f"p{int(q * 100)}": self.quantile(q)
                for q in SNAPSHOT_QUANTILES
            },
        }

    def __repr__(self) -> str:
        return f"Histogram(name={self.name!r}, count={self.count})"


class Gauge:
    """A named instantaneous reading backed by a zero-argument callable."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], object]) -> None:
        self.name = name
        self.fn = fn

    def read(self) -> float | int | None:
        """Sample the gauge; a raising or non-numeric callable reads as
        ``None`` (monitoring must never take the service down)."""
        try:
            value = self.fn()
        except Exception:
            return None
        if value is None or isinstance(value, bool):
            return None
        if isinstance(value, (int, float)):
            return value
        return None

    def __repr__(self) -> str:
        return f"Gauge(name={self.name!r})"


class MetricsRegistry:
    """Process-global name → instrument registry (use :data:`REGISTRY`)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, Gauge] = {}

    # -- histograms ------------------------------------------------------

    def histogram(self, name: str, **kwargs) -> Histogram:
        """Get-or-create the histogram called ``name``.

        Bucket parameters apply only on first creation; later callers get
        the existing instrument so all observers share one distribution.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name, **kwargs)
            return hist

    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    # -- gauges ----------------------------------------------------------

    def gauge(self, name: str, fn: Callable[[], object]) -> Gauge:
        """Register (or replace) the gauge called ``name``."""
        gauge = Gauge(name, fn)
        with self._lock:
            self._gauges[name] = gauge
        return gauge

    def unregister_gauge(self, name: str, owner: Gauge | None = None) -> None:
        """Remove gauge ``name``.  With ``owner`` given, remove only if the
        registered gauge *is* that object — so a closed service never tears
        down a newer service's re-registration of the same name."""
        with self._lock:
            current = self._gauges.get(name)
            if current is None:
                return
            if owner is not None and current is not owner:
                return
            del self._gauges[name]

    def gauges(self) -> dict[str, Gauge]:
        with self._lock:
            return dict(self._gauges)

    # -- snapshots -------------------------------------------------------

    def read_gauges(self) -> dict[str, float | int | None]:
        """Sample every registered gauge right now."""
        return {name: g.read() for name, g in sorted(self.gauges().items())}

    def snapshot(self) -> dict:
        """``{"histograms": {name: Histogram.snapshot()}, "gauges": {...}}``."""
        return {
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self.histograms().items())
            },
            "gauges": self.read_gauges(),
        }

    def reset(self) -> None:
        """Zero every histogram in place; drop every gauge registration.

        Histogram objects survive (holders keep valid references); gauges
        are re-registered by their owners (a service registers on
        construction), so dropping them here keeps test runs isolated.
        """
        for hist in self.histograms().values():
            hist.reset()
        with self._lock:
            self._gauges.clear()


REGISTRY = MetricsRegistry()

# obs.reset() zeroes histograms and clears gauges along with counters.
_RESET_HOOKS.append(REGISTRY.reset)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` — no-op while disabled.

    The convenience form for call sites that cannot hold a histogram
    reference; hot paths should pre-create the instrument once with
    ``REGISTRY.histogram(name)`` and gate on ``STATE.enabled`` themselves.
    """
    if STATE.enabled:
        REGISTRY.histogram(name).observe(value)
