"""Reporting over the observability state: snapshots, tables, sidecars.

Three consumers read the unified registry:

* the CLI's ``--stats`` flag prints :func:`format_table` after a run;
* the benchmark suite serialises one :func:`snapshot` per benchmark into a
  *metrics sidecar* JSON (``write_metrics_sidecar``) that
  ``benchmarks/make_report.py`` folds into the paper report;
* tests assert on :func:`snapshot` directly.
"""

from __future__ import annotations

import json

from repro.obs.core import STATE

__all__ = [
    "SIDECAR_SCHEMA",
    "format_table",
    "load_metrics_sidecar",
    "snapshot",
    "write_metrics_sidecar",
]

SIDECAR_SCHEMA = "repro.obs.sidecar/v1"


def snapshot() -> dict:
    """The current aggregates: ``{"counters": {...}, "spans": {...}}``.

    ``spans`` maps each span name to ``{"count", "total_s"}``.  The returned
    structure is a deep copy — later instrumentation does not mutate it.
    """
    return {
        "counters": dict(sorted(STATE.counters.items())),
        "spans": {
            name: {
                "count": STATE.span_count[name],
                "total_s": STATE.span_total.get(name, 0.0),
            }
            for name in sorted(STATE.span_count)
        },
    }


def format_table(snap: dict | None = None) -> str:
    """A printable per-phase time + counter table of ``snap`` (or the live
    state)."""
    if snap is None:
        snap = snapshot()
    lines: list[str] = []
    spans = snap.get("spans", {})
    counters = snap.get("counters", {})
    if spans:
        lines.append(f"{'phase':<44}{'calls':>8}{'total':>12}{'mean':>12}")
        lines.append("-" * 76)
        for name, agg in sorted(
            spans.items(), key=lambda kv: kv[1]["total_s"], reverse=True
        ):
            count = agg["count"]
            total = agg["total_s"]
            mean = total / count if count else 0.0
            lines.append(
                f"{name:<44}{count:>8}{total:>11.4f}s{mean * 1e3:>10.3f}ms"
            )
    if counters:
        if spans:
            lines.append("")
        lines.append(f"{'counter':<56}{'value':>16}")
        lines.append("-" * 72)
        for name, value in sorted(counters.items()):
            lines.append(f"{name:<56}{value:>16}")
    if not lines:
        return "(no observability data recorded)"
    return "\n".join(lines)


def write_metrics_sidecar(path, runs: list[dict], meta: dict | None = None) -> None:
    """Serialise per-run snapshots into a metrics sidecar JSON.

    ``runs`` entries are ``{"test": <id>, "counters": ..., "spans": ...}``
    dicts (a snapshot tagged with the producing test/benchmark id).
    """
    payload = {"schema": SIDECAR_SCHEMA, "meta": meta or {}, "runs": runs}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_metrics_sidecar(path) -> dict:
    """Read a sidecar written by :func:`write_metrics_sidecar`."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SIDECAR_SCHEMA:
        raise ValueError(
            f"{path}: not a repro.obs metrics sidecar "
            f"(schema={payload.get('schema')!r})"
        )
    return payload
