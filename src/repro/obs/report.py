"""Reporting over the observability state: snapshots, tables, sidecars.

Three consumers read the unified registry:

* the CLI's ``--stats`` flag prints :func:`format_table` after a run;
* the benchmark suite serialises one :func:`snapshot` per benchmark into a
  *metrics sidecar* JSON (``write_metrics_sidecar``) that
  ``benchmarks/make_report.py`` folds into the paper report;
* tests assert on :func:`snapshot` directly;
* :func:`render_prometheus` renders counters plus the live histogram/gauge
  registry (:mod:`repro.obs.metrics`) in the Prometheus text exposition
  format, for scraping a ``--metrics-file`` snapshot into dashboards.
"""

from __future__ import annotations

import json

from repro.obs.core import STATE

__all__ = [
    "SIDECAR_SCHEMA",
    "format_table",
    "load_metrics_sidecar",
    "render_prometheus",
    "snapshot",
    "write_metrics_sidecar",
]

SIDECAR_SCHEMA = "repro.obs.sidecar/v1"


def snapshot() -> dict:
    """The current aggregates: ``{"counters": {...}, "spans": {...}}``.

    ``spans`` maps each span name to ``{"count", "total_s"}``.  The returned
    structure is a deep copy — later instrumentation does not mutate it.
    """
    return {
        "counters": dict(sorted(STATE.counters.items())),
        "spans": {
            name: {
                "count": STATE.span_count[name],
                "total_s": STATE.span_total.get(name, 0.0),
            }
            for name in sorted(STATE.span_count)
        },
    }


def format_table(snap: dict | None = None) -> str:
    """A printable per-phase time + counter table of ``snap`` (or the live
    state)."""
    if snap is None:
        snap = snapshot()
    lines: list[str] = []
    spans = snap.get("spans", {})
    counters = snap.get("counters", {})
    if spans:
        lines.append(f"{'phase':<44}{'calls':>8}{'total':>12}{'mean':>12}")
        lines.append("-" * 76)
        for name, agg in sorted(
            spans.items(), key=lambda kv: kv[1]["total_s"], reverse=True
        ):
            count = agg["count"]
            total = agg["total_s"]
            mean = total / count if count else 0.0
            lines.append(
                f"{name:<44}{count:>8}{total:>11.4f}s{mean * 1e3:>10.3f}ms"
            )
    if counters:
        if spans:
            lines.append("")
        lines.append(f"{'counter':<56}{'value':>16}")
        lines.append("-" * 72)
        for name, value in sorted(counters.items()):
            lines.append(f"{name:<56}{value:>16}")
    if not lines:
        return "(no observability data recorded)"
    return "\n".join(lines)


def _prom_name(name: str, prefix: str = "repro") -> str:
    """A Prometheus-legal metric name from a dotted repro name."""
    return prefix + "_" + name.replace(".", "_").replace("-", "_")


def render_prometheus(snap: dict | None = None, prefix: str = "repro") -> str:
    """The current state in the Prometheus text exposition format.

    Counters render as ``counter`` samples, histograms as cumulative
    ``_bucket{le=...}`` series with ``_sum``/``_count`` (seconds, like all
    repro durations), gauges as ``gauge`` samples (unreadable gauges are
    skipped).  ``snap`` may be a combined snapshot (``counters`` /
    ``histograms`` / ``gauges`` keys, e.g. one ``--metrics-file`` line);
    by default the live registries are read.
    """
    if snap is None:
        from repro.obs.metrics import REGISTRY

        snap = {**snapshot(), **REGISTRY.snapshot()}
    lines: list[str] = []
    for name, value in sorted(snap.get("counters", {}).items()):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, hist in sorted(snap.get("histograms", {}).items()):
        metric = _prom_name(name, prefix) + "_seconds"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for upper, count in hist.get("buckets", []):
            cumulative += count
            le = "+Inf" if upper is None else repr(float(upper))
            lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
        if not hist.get("buckets") or hist["buckets"][-1][0] is not None:
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {hist.get('sum', 0.0)}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        if value is None:
            continue
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_sidecar(path, runs: list[dict], meta: dict | None = None) -> None:
    """Serialise per-run snapshots into a metrics sidecar JSON.

    ``runs`` entries are ``{"test": <id>, "counters": ..., "spans": ...}``
    dicts (a snapshot tagged with the producing test/benchmark id).
    """
    payload = {"schema": SIDECAR_SCHEMA, "meta": meta or {}, "runs": runs}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_metrics_sidecar(path) -> dict:
    """Read a sidecar written by :func:`write_metrics_sidecar`."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SIDECAR_SCHEMA:
        raise ValueError(
            f"{path}: not a repro.obs metrics sidecar "
            f"(schema={payload.get('schema')!r})"
        )
    return payload
