"""Wall-clock timing helpers shared by the observability layer.

:class:`Stopwatch` is the cumulative timer that used to live in
:mod:`repro.eval.counters`; it moved here so both the legacy eval shims and
the span machinery build on one implementation.
"""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """A simple cumulative wall-clock timer.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started: float | None = None

    def start(self) -> None:
        if self._started is not None:
            raise RuntimeError("stopwatch already running")
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("stopwatch is not running")
        delta = time.perf_counter() - self._started
        self.elapsed += delta
        self._started = None
        return delta

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
