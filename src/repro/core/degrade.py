"""Graceful degradation for clustering on disconnected networks.

The paper's algorithms assume a connected network: distances between
objects in different components are infinite, so a k-medoids run seeded in
one component silently labels every other component's objects as noise.
This module makes that degradation *explicit and well-defined*:

* :func:`analyze_connectivity` summarises a network's components and how
  the objects fall across them, including the number of **unreachable
  pairs** — object pairs with no connecting path, i.e. pairs no distance-
  based algorithm can ever relate.
* :class:`ComponentPointSet` is a read-only :class:`~repro.network.points.
  PointSet`-protocol view restricted to the edges of one component, letting
  an algorithm be re-run per component against the *same* network backend.
* :func:`distribute_k` splits a global cluster count k across components in
  proportion to their object counts (largest-remainder method, never
  exceeding a component's object count, and granting every non-empty
  component one cluster when k allows).

:meth:`repro.core.base.NetworkClusterer.run` uses these pieces to return
per-component results with an ``unreachable_pairs`` report instead of
noise-flooded output when the network is disconnected.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.exceptions import PointNotFoundError
from repro.network.components import connected_components
from repro.network.points import NetworkPoint

__all__ = [
    "ConnectivityReport",
    "ComponentPointSet",
    "analyze_connectivity",
    "distribute_k",
    "repair_summary",
]


class ConnectivityReport:
    """How a point set is spread over a network's connected components.

    Attributes
    ----------
    components:
        One frozen node set per network component, largest object count
        first (empty components — no objects — come last).
    point_counts:
        Objects per component, parallel to ``components``.
    unreachable_pairs:
        Number of object pairs in different components — pairs whose
        network distance is infinite.
    """

    __slots__ = ("components", "point_counts", "unreachable_pairs")

    def __init__(
        self, components: list[frozenset[int]], point_counts: list[int]
    ) -> None:
        order = sorted(
            range(len(components)), key=lambda i: point_counts[i], reverse=True
        )
        self.components = [components[i] for i in order]
        self.point_counts = [point_counts[i] for i in order]
        total = sum(self.point_counts)
        self.unreachable_pairs = (
            total * total - sum(c * c for c in self.point_counts)
        ) // 2

    @property
    def num_components(self) -> int:
        return len(self.components)

    @property
    def num_populated_components(self) -> int:
        """Components holding at least one object."""
        return sum(1 for c in self.point_counts if c > 0)

    def summary(self) -> dict:
        """JSON-friendly digest for :class:`ClusteringResult` stats."""
        return {
            "num_components": self.num_components,
            "num_populated_components": self.num_populated_components,
            "points_per_component": [c for c in self.point_counts if c > 0],
            "unreachable_pairs": self.unreachable_pairs,
        }


def analyze_connectivity(network, points) -> ConnectivityReport:
    """Component decomposition of ``network`` with per-component object counts."""
    components = [frozenset(c) for c in connected_components(network)]
    node_comp: dict[int, int] = {}
    for i, comp in enumerate(components):
        for node in comp:
            node_comp[node] = i
    counts = [0] * len(components)
    for u, v in points.populated_edges():
        counts[node_comp[u]] += len(points.points_on_edge(u, v))
    return ConnectivityReport(components, counts)


class ComponentPointSet:
    """A read-only view of a point set restricted to one component's edges.

    Implements the :class:`~repro.network.points.PointSet` protocol methods
    the clustering algorithms use; ``network`` stays the *full* backend, so
    traversals seeded inside the component behave identically (they can
    never leave it).
    """

    def __init__(self, base, nodes: frozenset[int] | set[int]) -> None:
        self._base = base
        self._nodes = nodes
        # Both endpoints of an edge are in the same component, so checking
        # one suffices.
        self._edges = [e for e in base.populated_edges() if e[0] in nodes]
        self._size: int | None = None

    @property
    def network(self):
        return self._base.network

    @property
    def nodes(self) -> frozenset[int] | set[int]:
        return self._nodes

    def __len__(self) -> int:
        if self._size is None:
            self._size = sum(
                len(self._base.points_on_edge(*e)) for e in self._edges
            )
        return self._size

    def __iter__(self) -> Iterator[NetworkPoint]:
        for u, v in self._edges:
            yield from self._base.points_on_edge(u, v)

    def point_ids(self) -> Iterator[int]:
        for p in self:
            yield p.point_id

    def __contains__(self, point_id: int) -> bool:
        try:
            self.get(point_id)
            return True
        except PointNotFoundError:
            return False

    def get(self, point_id: int) -> NetworkPoint:
        p = self._base.get(point_id)
        if p.u not in self._nodes:
            raise PointNotFoundError(point_id)
        return p

    def populated_edges(self) -> Iterator[tuple[int, int]]:
        return iter(self._edges)

    def num_populated_edges(self) -> int:
        return len(self._edges)

    def points_on_edge(self, u: int, v: int) -> list[NetworkPoint]:
        if u not in self._nodes:
            return []
        return self._base.points_on_edge(u, v)

    def points_from(self, node: int, other: int) -> list[NetworkPoint]:
        if node not in self._nodes:
            return []
        return self._base.points_from(node, other)

    def labels(self) -> dict[int, int | None]:
        return {p.point_id: p.label for p in self}

    def distance_to_node(self, point: NetworkPoint, node: int) -> float:
        return self._base.distance_to_node(point, node)

    def __repr__(self) -> str:
        return (
            f"ComponentPointSet(points={len(self)}, "
            f"component_nodes={len(self._nodes)})"
        )


def repair_summary(report) -> dict:
    """Loss-accounting digest of a salvage pass for clustering stats.

    Accepts a :class:`~repro.recovery.RepairReport` or its ``summary()``
    dict.  Clustering a salvaged store degrades gracefully — the
    algorithms simply see the surviving subnetwork (usually disconnected,
    which the machinery above already handles) — but the degradation must
    be *explicit*: this digest lands in ``result.stats["repair"]`` so a
    result computed over partial data can never masquerade as complete.
    """
    doc = report.summary() if hasattr(report, "summary") else dict(report)
    return {
        "full_recovery": bool(doc.get("full_recovery", False)),
        "lost_pages": doc.get("lost_pages", 0),
        "lost": doc.get("lost"),
        "salvaged": doc.get("salvaged"),
        "conflicts": doc.get("conflicts", 0),
    }


def distribute_k(k: int, sizes: list[int]) -> list[int]:
    """Split ``k`` clusters over components with ``sizes`` objects each.

    Largest-remainder apportionment: quotas are proportional to object
    counts, never exceed a component's object count, and — whenever
    ``k >= number of components`` — every non-empty component receives at
    least one cluster.  When ``k`` is smaller than the number of components,
    the k largest components win and the rest get zero (their objects are
    reported as unclustered).
    """
    n = len(sizes)
    total = sum(sizes)
    if total == 0:
        return [0] * n
    if k >= total:
        return list(sizes)
    shares = [k * s / total for s in sizes]
    quotas = [min(int(sh), s) for sh, s in zip(shares, sizes)]
    leftover = k - sum(quotas)
    by_remainder = sorted(
        range(n), key=lambda i: shares[i] - quotas[i], reverse=True
    )
    idx = 0
    while leftover > 0:
        i = by_remainder[idx % n]
        if quotas[i] < sizes[i]:
            quotas[i] += 1
            leftover -= 1
        idx += 1
    if k >= n:
        # Give starved components one cluster each, taken from the richest.
        while True:
            starved = [i for i in range(n) if quotas[i] == 0 and sizes[i] > 0]
            if not starved:
                break
            donor = max(range(n), key=lambda i: quotas[i])
            if quotas[donor] <= 1:
                break
            quotas[donor] -= 1
            quotas[starved[0]] += 1
    return quotas
