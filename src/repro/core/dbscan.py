"""Network adaptation of DBSCAN (paper Section 4.3).

The paper observes that DBSCAN [Ester et al.] "can be directly applied on
our network model": the ε-neighbourhood of an object is computed "by
expanding the network around p and assigning points until the distance
exceeds ε (a similar range search algorithm was proposed in [16])", and a
range query must be performed for every object — which is why the paper's
experiments find it considerably slower than ε-Link even though, with the
right parameters, both produce identical clusters (Figure 11c).

This is the standard DBSCAN control flow with the Euclidean range query
replaced by :func:`repro.network.queries.range_query` over the
point-augmented network:

* an object is a *core* object when its ε-neighbourhood (itself included)
  holds at least ``min_pts`` objects;
* clusters grow from core objects through density-reachability;
* non-core objects within ε of a core object become *border* members;
* remaining objects are noise.
"""

from __future__ import annotations

from collections import deque

from repro.core.base import NetworkClusterer
from repro.core.result import ClusteringResult
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.points import PointSet
from repro.network.queries import range_query
from repro.obs.core import STATE as _OBS, add as _obs_add, span as _span
from repro.resilience.deadline import STATE as _RES, check as _res_check

__all__ = ["NetworkDBSCAN"]

_UNVISITED = -2


class NetworkDBSCAN(NetworkClusterer):
    """DBSCAN over network distances.

    Parameters
    ----------
    network:
        Network backend (in-memory or disk-backed).
    points:
        The objects to cluster.
    eps:
        Neighbourhood radius ε > 0 (network distance).
    min_pts:
        Density threshold: minimum neighbourhood size (query object
        included) for a core object.  With ``min_pts=2`` the discovered
        clusters coincide with ε-Link's, as the paper notes.

    Notes
    -----
    Border objects reachable from several clusters are assigned to the
    cluster whose core object reaches them first, matching the original
    DBSCAN's behaviour (assignment of shared border points is
    order-dependent by definition).
    """

    algorithm_name = "dbscan"

    def __init__(
        self,
        network,
        points: PointSet,
        eps: float,
        min_pts: int = 2,
        budget=None,
        check_connectivity: bool | None = None,
        checkpoint=None,
        resume: dict | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(
            network, points, budget=budget, check_connectivity=check_connectivity,
            checkpoint=checkpoint, resume=resume, backend=backend,
        )
        if eps <= 0:
            raise ParameterError(f"eps must be positive, got {eps!r}")
        if min_pts < 1:
            raise ParameterError(f"min_pts must be >= 1, got {min_pts!r}")
        self.eps = float(eps)
        self.min_pts = int(min_pts)

    def _cluster(self) -> ClusteringResult:
        resume = self._take_resume_state()
        aug = AugmentedView(self.network, self.points)
        assignment: dict[int, int] = {
            p.point_id: _UNVISITED for p in self.points
        }
        n_range_queries = 0
        next_label = 0
        if resume is not None:
            # Snapshots are taken only at seed boundaries, so the restored
            # assignment never contains a half-grown cluster; seeds whose
            # entries are no longer _UNVISITED are skipped and a seed whose
            # growth was interrupted is simply regrown from scratch.
            assignment.update(
                (int(k), v) for k, v in resume["assignment"].items()
            )
            n_range_queries = resume["n_range_queries"]
            next_label = resume["next_label"]
        self._live = {
            "assignment": assignment,
            "n_range_queries": n_range_queries,
            "next_label": next_label,
        }
        with _span("dbscan.scan"):
            for seed in self.points:
                if _RES.engaged:
                    _res_check("dbscan.seed", partial=assignment)
                if assignment[seed.point_id] != _UNVISITED:
                    continue
                neighborhood = range_query(aug, seed, self.eps)
                n_range_queries += 1
                if len(neighborhood) < self.min_pts:
                    assignment[seed.point_id] = NOISE  # may become border later
                    self._tick(n_range_queries, next_label)
                    continue
                # Found a new core object: grow its cluster.
                label = next_label
                next_label += 1
                assignment[seed.point_id] = label
                queue = deque(p.point_id for p, _ in neighborhood)
                while queue:
                    pid = queue.popleft()
                    state = assignment[pid]
                    if state == NOISE:
                        # Previously deemed noise: it is density-reachable, so
                        # it becomes a border member of this cluster.
                        assignment[pid] = label
                        continue
                    if state != _UNVISITED:
                        continue
                    assignment[pid] = label
                    member_neighborhood = range_query(
                        aug, self.points.get(pid), self.eps
                    )
                    n_range_queries += 1
                    if len(member_neighborhood) >= self.min_pts:
                        # pid is core: its neighbours are density-reachable.
                        queue.extend(p.point_id for p, _ in member_neighborhood)
                self._tick(n_range_queries, next_label)
        n_noise = sum(1 for lab in assignment.values() if lab == NOISE)
        if _OBS.enabled:
            _obs_add("dbscan.range_queries", n_range_queries)
            _obs_add("dbscan.noise_points", n_noise)
            _obs_add("dbscan.clusters", next_label)
        return ClusteringResult(
            assignment,
            algorithm=self.algorithm_name,
            params={"eps": self.eps, "min_pts": self.min_pts},
            stats={"range_queries": n_range_queries, "noise": n_noise},
        )

    def _tick(self, n_range_queries: int, next_label: int) -> None:
        if self.checkpoint is not None:
            self._live.update(
                n_range_queries=n_range_queries, next_label=next_label
            )
            self._ckpt_tick()

    def _checkpoint_state(self) -> dict:
        return {
            "assignment": self._live["assignment"],
            "n_range_queries": self._live["n_range_queries"],
            "next_label": self._live["next_label"],
        }
