"""Network clustering algorithms — the paper's Section 4.

Four clustering paradigms over network distances:

* :class:`NetworkKMedoids` — partitioning (Section 4.2),
* :class:`EpsLink` — fast density-based, MinPts=2 (Section 4.3.1),
* :class:`NetworkDBSCAN` — general density-based (Section 4.3),
* :class:`SingleLink` — hierarchical with δ heuristic (Section 4.4),
  producing a :class:`Dendrogram`.
"""

from repro.core.base import NetworkClusterer
from repro.core.dbscan import NetworkDBSCAN
from repro.core.degrade import (
    ComponentPointSet,
    ConnectivityReport,
    analyze_connectivity,
    distribute_k,
)
from repro.core.dendrogram import Dendrogram, Merge
from repro.core.epslink import EpsLink, EpsLinkEdgewise
from repro.core.incremental import IncrementalEpsLink
from repro.core.kmedoids import MedoidState, NetworkKMedoids
from repro.core.optics import NetworkOPTICS, OPTICSResult, OrderedPoint
from repro.core.result import ClusteringResult
from repro.core.singlelink import SingleLink
from repro.core.unionfind import UnionFind

__all__ = [
    "NetworkClusterer",
    "NetworkDBSCAN",
    "ComponentPointSet",
    "ConnectivityReport",
    "analyze_connectivity",
    "distribute_k",
    "Dendrogram",
    "Merge",
    "EpsLink",
    "EpsLinkEdgewise",
    "IncrementalEpsLink",
    "MedoidState",
    "NetworkKMedoids",
    "NetworkOPTICS",
    "OPTICSResult",
    "OrderedPoint",
    "ClusteringResult",
    "SingleLink",
    "UnionFind",
]
