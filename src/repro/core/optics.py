"""OPTICS over network distances.

The paper notes that DBSCAN's main limitation — "it is hard to find
appropriate values for ε and MinPts" — is "alleviated in [2]" (OPTICS,
Ankerst et al.).  This module provides that remedy for the network setting:
:class:`NetworkOPTICS` computes the density-based *cluster ordering* of the
objects using network range queries, from which flat DBSCAN-style
clusterings for **any** ε ≤ max_eps can be extracted without re-running the
algorithm (:meth:`OPTICSResult.extract_dbscan`), and reachability plots can
be inspected for natural density levels.

Definitions follow the original OPTICS with the library's DBSCAN
conventions: an object's ε-neighbourhood includes the object itself, its
*core distance* is the distance to its ``min_pts``-th nearest neighbour
(undefined/inf when fewer than ``min_pts`` objects lie within ``max_eps``),
and the *reachability distance* of q from p is
``max(core_dist(p), d(p, q))``.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.core.base import NetworkClusterer
from repro.core.result import ClusteringResult
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.points import PointSet
from repro.network.queries import range_query
from repro.obs.core import STATE as _OBS, add as _obs_add, span as _span
from repro.resilience.deadline import STATE as _RES, check as _res_check

__all__ = ["NetworkOPTICS", "OPTICSResult", "OrderedPoint"]


@dataclass(frozen=True)
class OrderedPoint:
    """One entry of the OPTICS cluster ordering."""

    point_id: int
    reachability: float  # inf for the first point of each density region
    core_distance: float  # inf when the point is not core at max_eps


class OPTICSResult:
    """The cluster ordering plus flat-clustering extraction."""

    def __init__(self, ordering: list[OrderedPoint], max_eps: float, min_pts: int) -> None:
        self.ordering = ordering
        self.max_eps = max_eps
        self.min_pts = min_pts

    def reachability_plot(self) -> list[tuple[int, float]]:
        """(point_id, reachability) in cluster order — the OPTICS plot.

        Valleys are clusters; the deeper the valley, the denser the
        cluster."""
        return [(o.point_id, o.reachability) for o in self.ordering]

    def extract_dbscan(self, eps: float) -> ClusteringResult:
        """The DBSCAN clustering at ``eps`` (must be ≤ max_eps).

        Classic ExtractDBSCAN-Clustering: walking the order, a reachability
        above ε starts a new cluster (when the point is itself core at ε)
        or marks noise; otherwise the point continues the current cluster.
        Matches a direct DBSCAN run at the same ε on core points; border
        points shared by two clusters may tie-break differently, exactly as
        in the original papers.
        """
        if eps > self.max_eps:
            raise ParameterError(
                f"eps={eps} exceeds the ordering's max_eps={self.max_eps}"
            )
        assignment: dict[int, int] = {}
        cluster = -1
        for o in self.ordering:
            if o.reachability > eps:
                if o.core_distance <= eps:
                    cluster += 1
                    assignment[o.point_id] = cluster
                else:
                    assignment[o.point_id] = NOISE
            else:
                assignment[o.point_id] = cluster if cluster >= 0 else NOISE
        return ClusteringResult(
            assignment,
            algorithm="optics-extract",
            params={"eps": eps, "min_pts": self.min_pts, "max_eps": self.max_eps},
        )

    def __len__(self) -> int:
        return len(self.ordering)


class NetworkOPTICS(NetworkClusterer):
    """OPTICS cluster ordering of objects on a spatial network.

    Parameters
    ----------
    network:
        Network backend (in-memory or disk-backed).
    points:
        The objects to order.
    max_eps:
        Generating radius: the ordering supports flat extraction for any
        ε ≤ max_eps.  Larger values cost more (each range query expands
        farther).
    min_pts:
        Density threshold (neighbourhood includes the object itself).

    Use :meth:`compute` for the full :class:`OPTICSResult`; :meth:`run`
    returns the flat clustering extracted at ``max_eps`` for interface
    consistency with the other algorithms.
    """

    algorithm_name = "optics"

    def __init__(
        self,
        network,
        points: PointSet,
        max_eps: float,
        min_pts: int = 2,
        budget=None,
        check_connectivity: bool | None = None,
        checkpoint=None,
        resume: dict | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(
            network, points, budget=budget, check_connectivity=check_connectivity,
            checkpoint=checkpoint, resume=resume, backend=backend,
        )
        if max_eps <= 0:
            raise ParameterError(f"max_eps must be positive, got {max_eps!r}")
        if min_pts < 1:
            raise ParameterError(f"min_pts must be >= 1, got {min_pts!r}")
        self.max_eps = float(max_eps)
        self.min_pts = int(min_pts)

    # ------------------------------------------------------------------
    def compute(self) -> OPTICSResult:
        """The full cluster ordering."""
        resume = self._take_resume_state()
        aug = AugmentedView(self.network, self.points)
        processed: set[int] = set()
        reachability: dict[int, float] = {}
        ordering: list[OrderedPoint] = []
        if resume is not None:
            # Snapshots happen only between density-region expansions; every
            # ordered point is in `processed`, so the seed sweep resumes at
            # the first untouched region.  Reachability values seeded into
            # neighbouring unprocessed points are part of the snapshot (a
            # later region's first reachability may depend on them).
            processed = set(resume["processed"])
            reachability = {int(k): v for k, v in resume["reachability"].items()}
            ordering = [OrderedPoint(*row) for row in resume["ordering"]]
        self._live = {
            "processed": processed,
            "reachability": reachability,
            "ordering": ordering,
        }

        with _span("optics.ordering"):
            for seed in self.points:
                if seed.point_id in processed:
                    continue
                self._expand_order(
                    aug, seed.point_id, processed, reachability, ordering
                )
                self._ckpt_tick()
        if _OBS.enabled:
            _obs_add("optics.ordered_points", len(ordering))
        return OPTICSResult(ordering, self.max_eps, self.min_pts)

    def _cluster(self) -> ClusteringResult:
        result = self.compute().extract_dbscan(self.max_eps)
        result.algorithm = self.algorithm_name
        return result

    def _checkpoint_state(self) -> dict:
        return {
            "processed": sorted(self._live["processed"]),
            "reachability": self._live["reachability"],
            "ordering": [
                [o.point_id, o.reachability, o.core_distance]
                for o in self._live["ordering"]
            ],
        }

    # ------------------------------------------------------------------
    def _neighborhood(self, aug, point_id: int) -> tuple[list[tuple[int, float]], float]:
        """(sorted (pid, dist) within max_eps incl. self, core distance)."""
        hits = range_query(aug, self.points.get(point_id), self.max_eps)
        pairs = [(p.point_id, d) for p, d in hits]
        if len(pairs) >= self.min_pts:
            core = pairs[self.min_pts - 1][1]
        else:
            core = math.inf
        return pairs, core

    def _expand_order(
        self,
        aug,
        seed_id: int,
        processed: set[int],
        reachability: dict[int, float],
        ordering: list[OrderedPoint],
    ) -> None:
        neighbors, core = self._neighborhood(aug, seed_id)
        processed.add(seed_id)
        ordering.append(OrderedPoint(seed_id, math.inf, core))
        if math.isinf(core):
            return
        # Lazy priority queue of (reachability, point id); stale entries are
        # skipped via the reachability map.
        heap: list[tuple[float, int]] = []
        self._update_seeds(neighbors, core, processed, reachability, heap)
        while heap:
            if _RES.engaged:
                _res_check("optics.order", partial=ordering)
            r, pid = heapq.heappop(heap)
            if pid in processed or r > reachability.get(pid, math.inf):
                continue
            processed.add(pid)
            nbrs, pid_core = self._neighborhood(aug, pid)
            ordering.append(OrderedPoint(pid, r, pid_core))
            if not math.isinf(pid_core):
                self._update_seeds(nbrs, pid_core, processed, reachability, heap)

    @staticmethod
    def _update_seeds(neighbors, core, processed, reachability, heap) -> None:
        for pid, dist in neighbors:
            if pid in processed:
                continue
            reach = max(core, dist)
            if reach < reachability.get(pid, math.inf):
                reachability[pid] = reach
                heapq.heappush(heap, (reach, pid))
