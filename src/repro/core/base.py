"""Common base class for the network clustering algorithms."""

from __future__ import annotations

import time

from repro.exceptions import ParameterError
from repro.network.points import PointSet
from repro.obs.core import STATE as _OBS, span as _span

__all__ = ["NetworkClusterer"]


class NetworkClusterer:
    """Shared plumbing for algorithms clustering points on a network.

    Subclasses implement :meth:`_cluster` returning a
    :class:`~repro.core.result.ClusteringResult`; :meth:`run` wraps it with
    timing.  The ``network`` argument may be any backend implementing the
    traversal protocol (``neighbors``, ``edge_weight``, ``nodes``, ...), so
    the algorithms work over both :class:`~repro.network.SpatialNetwork`
    and the disk-backed :class:`~repro.storage.NetworkStore`.
    """

    #: Subclasses set this to their reporting name.
    algorithm_name = "abstract"

    def __init__(self, network, points: PointSet) -> None:
        if points.network is not network and not self._same_backend(network, points):
            raise ParameterError(
                "the point set was built against a different network object"
            )
        self.network = network
        self.points = points

    @staticmethod
    def _same_backend(network, points: PointSet) -> bool:
        """Allow a disk-backed store wrapping the point set's network."""
        wrapped = getattr(network, "source_network", None)
        return wrapped is points.network

    def run(self):
        """Execute the algorithm, recording wall-clock time in the result.

        With :mod:`repro.obs` enabled the whole run is traced as a
        ``cluster.<algorithm>`` span, the root under which the per-phase
        spans of the concrete algorithms nest.
        """
        start = time.perf_counter()
        if _OBS.enabled:
            with _span("cluster." + self.algorithm_name):
                result = self._cluster()
        else:
            result = self._cluster()
        result.stats.setdefault("wall_time_s", time.perf_counter() - start)
        return result

    def _cluster(self):
        raise NotImplementedError
