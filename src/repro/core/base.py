"""Common base class for the network clustering algorithms."""

from __future__ import annotations

import time

from repro.exceptions import ParameterError
from repro.network.points import PointSet

__all__ = ["NetworkClusterer"]


class NetworkClusterer:
    """Shared plumbing for algorithms clustering points on a network.

    Subclasses implement :meth:`_cluster` returning a
    :class:`~repro.core.result.ClusteringResult`; :meth:`run` wraps it with
    timing.  The ``network`` argument may be any backend implementing the
    traversal protocol (``neighbors``, ``edge_weight``, ``nodes``, ...), so
    the algorithms work over both :class:`~repro.network.SpatialNetwork`
    and the disk-backed :class:`~repro.storage.NetworkStore`.
    """

    #: Subclasses set this to their reporting name.
    algorithm_name = "abstract"

    def __init__(self, network, points: PointSet) -> None:
        if points.network is not network and not self._same_backend(network, points):
            raise ParameterError(
                "the point set was built against a different network object"
            )
        self.network = network
        self.points = points

    @staticmethod
    def _same_backend(network, points: PointSet) -> bool:
        """Allow a disk-backed store wrapping the point set's network."""
        wrapped = getattr(network, "source_network", None)
        return wrapped is points.network

    def run(self):
        """Execute the algorithm, recording wall-clock time in the result."""
        start = time.perf_counter()
        result = self._cluster()
        result.stats.setdefault("wall_time_s", time.perf_counter() - start)
        return result

    def _cluster(self):
        raise NotImplementedError
