"""Common base class for the network clustering algorithms."""

from __future__ import annotations

import time
from contextlib import ExitStack

from repro.core.degrade import analyze_connectivity
from repro.exceptions import Interrupted, ParameterError
from repro.network.points import PointSet
from repro.obs.core import STATE as _OBS, span as _span

__all__ = ["NetworkClusterer"]


class NetworkClusterer:
    """Shared plumbing for algorithms clustering points on a network.

    Subclasses implement :meth:`_cluster` returning a
    :class:`~repro.core.result.ClusteringResult`; :meth:`run` wraps it with
    timing.  The ``network`` argument may be any backend implementing the
    traversal protocol (``neighbors``, ``edge_weight``, ``nodes``, ...), so
    the algorithms work over both :class:`~repro.network.SpatialNetwork`
    and the disk-backed :class:`~repro.storage.NetworkStore`.

    ``backend`` selects the traversal backend: ``None``/``"dict"`` use
    ``network`` as given (the bit-exactness oracle), ``"csr"`` freezes it
    into a :class:`~repro.network.CSRNetwork` whose array kernels serve
    every traversal — results are bit-identical either way, and the point
    set may stay bound to the source network.

    Robustness contract
    -------------------
    * ``budget`` — an optional :class:`~repro.faults.OpBudget`; while the
      run executes it is the process-active budget, so every traversal and
      page read is charged against it.  Exhaustion raises
      :class:`~repro.exceptions.BudgetExceededError` (tagged with the
      algorithm name) and leaves no shared state corrupted.
    * ``deadline`` — an optional :class:`~repro.resilience.Deadline`,
      assigned like ``checkpoint`` after construction.  While the run
      executes it is the context-active deadline, observed by the
      cooperative checkpoints in every traversal loop; expiry or external
      cancellation raises :class:`~repro.exceptions.DeadlineExceeded` /
      :class:`~repro.exceptions.Cancelled` with the same clean-abort
      guarantees as a budget exhaustion.  All of these are
      :class:`~repro.exceptions.Interrupted` subtypes and compose with the
      checkpoint contract below: the periodic snapshots a run took before
      the interrupt stay valid, so a ``--resume`` completes it with a
      result identical to an uninterrupted run.
    * ``check_connectivity`` — ``None`` (default) analyses the network's
      components only for algorithms that declare
      ``handles_disconnected = False``; ``True`` forces the analysis (its
      report lands in ``result.stats``), ``False`` skips it entirely.  On a
      disconnected network, non-handling algorithms are orchestrated per
      component via :meth:`_cluster_components`, and every result carries an
      explicit ``unreachable_pairs`` count — the object pairs no distance-
      based method can relate.

    Checkpoint contract
    -------------------
    * ``checkpoint`` — an optional
      :class:`~repro.recovery.CheckpointManager`.  Checkpointable
      subclasses call :meth:`_ckpt_tick` at each deterministic iteration
      boundary; every ``checkpoint.every``-th tick snapshots the state
      returned by :meth:`_checkpoint_state`.  Because snapshots are only
      taken at such boundaries and each algorithm replays forward
      deterministically from a restored snapshot (including restored RNG
      state where one is used), a resumed run converges to the *same*
      :class:`~repro.core.result.ClusteringResult` as the uninterrupted
      run.
    * ``resume`` — the ``state`` dict of a loaded checkpoint; consumed
      once by ``_cluster`` via :meth:`_take_resume_state`.
    * ``repair_report`` — assign a
      :class:`~repro.recovery.RepairReport` (or its summary dict) before
      :meth:`run` to record that the inputs came from a salvaged store;
      its loss accounting lands in ``result.stats["repair"]``.
    """

    #: Subclasses set this to their reporting name.
    algorithm_name = "abstract"

    #: Whether :meth:`_cluster` already yields well-defined per-component
    #: results on a disconnected network (density/linkage methods do; the
    #: partitioning method does not and overrides :meth:`_cluster_components`).
    handles_disconnected = True

    def __init__(
        self,
        network,
        points: PointSet,
        budget=None,
        check_connectivity: bool | None = None,
        checkpoint=None,
        resume: dict | None = None,
        backend: str | None = None,
    ) -> None:
        if backend is not None:
            from repro.network.csr import resolve_backend

            network = resolve_backend(network, backend)
        if points.network is not network and not self._same_backend(network, points):
            raise ParameterError(
                "the point set was built against a different network object"
            )
        self.network = network
        self.points = points
        self.budget = budget
        self.check_connectivity = check_connectivity
        self.checkpoint = checkpoint
        #: optional repro.resilience.Deadline, active for the whole run
        self.deadline = None
        self._resume_state = resume
        #: optional RepairReport (or summary dict) describing salvaged inputs
        self.repair_report = None

    @staticmethod
    def _same_backend(network, points: PointSet) -> bool:
        """Allow a derived backend wrapping the point set's network.

        Unwraps ``source_network`` links transitively so a frozen CSR
        snapshot of a store of the point set's network still matches.
        """
        wrapped = getattr(network, "source_network", None)
        while wrapped is not None:
            if wrapped is points.network:
                return True
            wrapped = getattr(wrapped, "source_network", None)
        return False

    def run(self):
        """Execute the algorithm, recording wall-clock time in the result.

        With :mod:`repro.obs` enabled the whole run is traced as a
        ``cluster.<algorithm>`` span, the root under which the per-phase
        spans of the concrete algorithms nest.
        """
        start = time.perf_counter()
        try:
            with ExitStack() as stack:
                if self.budget is not None:
                    stack.enter_context(self.budget.activate())
                if self.deadline is not None:
                    stack.enter_context(self.deadline.activate())
                result = self._run_traced()
        except Interrupted as exc:
            if exc.algorithm is None:
                exc.algorithm = self.algorithm_name
            raise
        result.stats.setdefault("wall_time_s", time.perf_counter() - start)
        if self.repair_report is not None:
            from repro.core.degrade import repair_summary

            result.stats["repair"] = repair_summary(self.repair_report)
        return result

    def _run_traced(self):
        if _OBS.enabled:
            with _span("cluster." + self.algorithm_name):
                return self._run_checked()
        return self._run_checked()

    def _run_checked(self):
        check = self.check_connectivity
        if check is None:
            check = not self.handles_disconnected
        if not check:
            return self._cluster()
        report = analyze_connectivity(self.network, self.points)
        if report.num_populated_components <= 1 or self.handles_disconnected:
            result = self._cluster()
        else:
            result = self._cluster_components(report)
        result.stats["connectivity"] = report.summary()
        result.stats["unreachable_pairs"] = report.unreachable_pairs
        return result

    def _cluster(self):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpoint plumbing (used by checkpointable subclasses)
    # ------------------------------------------------------------------
    def _ckpt_tick(self) -> None:
        """One deterministic iteration boundary passed; maybe snapshot."""
        if self.checkpoint is not None:
            self.checkpoint.tick(self._checkpoint_state)

    def _ckpt_save(self) -> None:
        """Force a snapshot now (phase boundaries that must be captured)."""
        if self.checkpoint is not None:
            self.checkpoint.save(self._checkpoint_state())

    def _checkpoint_state(self) -> dict:
        raise NotImplementedError(
            f"{type(self).__name__} does not support checkpointing"
        )

    def resume_from(self, state: dict | None) -> None:
        """Install a loaded checkpoint's ``state`` for the next run."""
        self._resume_state = state

    def _take_resume_state(self) -> dict | None:
        """The resume snapshot, handed out exactly once."""
        state, self._resume_state = self._resume_state, None
        return state

    def _cluster_components(self, report):
        """Per-component orchestration on a disconnected network.

        Only reached when ``handles_disconnected`` is ``False``; such
        subclasses must override this to run themselves once per populated
        component and merge the results.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares handles_disconnected=False "
            "but does not implement _cluster_components"
        )
