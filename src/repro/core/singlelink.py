"""Single-Link hierarchical clustering over network distances (Section 4.4).

The paper's Single-Link starts from one cluster per object and repeatedly
merges the closest pair of clusters, computing the whole dendrogram with *a
single traversal of the network* and two priority queues (Figure 8): nodes
are expanded in order of distance from their nearest cluster, and a cluster
pair is merged only when no closer pair can still be discovered through the
top node of the node queue.  That lazy traversal is exactly a computation of
the minimum spanning tree of the network-distance graph over the objects —
single-link merge order and distances are determined by that MST.

This implementation performs the same single traversal in its standard,
provably-correct formulation (Mehlhorn's network-Voronoi construction):

1. one *concurrent expansion* (multi-source Dijkstra) over the
   point-augmented graph from all objects simultaneously computes, for every
   vertex, its nearest object (``owner``) and distance — the network Voronoi
   diagram of the objects;
2. every augmented edge whose endpoints have different owners is a *bridge*
   witnessing a path between two objects of length
   ``dist(x) + len(x, y) + dist(y)``; the cheapest bridge per object pair is
   kept;
3. Kruskal's algorithm with weighted-union Union-Find merges clusters in
   ascending bridge order, emitting the dendrogram.

For every bipartition of the objects, the cheapest crossing bridge has
exactly the minimum crossing network distance, so the produced dendrogram is
*identical* to single-link over the exact pairwise distances (a tested
invariant), at the paper's cost of O(|V| log |V| + N).

The δ *scalability heuristic* of Section 4.4.2 is supported: merges at
distance ≤ δ are applied immediately and silently, so the dendrogram starts
from grouped leaves and the recorded merge history (the paper's heap ``P``)
is an order of magnitude smaller, while every merge above δ is unchanged.
"""

from __future__ import annotations

from repro.core.base import NetworkClusterer
from repro.core.dendrogram import Dendrogram, Merge
from repro.core.result import ClusteringResult
from repro.core.unionfind import UnionFind
from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView, node_vertex, point_vertex
from repro.network.dijkstra import multi_source
from repro.network.points import PointSet
from repro.obs.core import STATE as _OBS, add as _obs_add, span as _span
from repro.resilience.deadline import STATE as _RES, check as _res_check

__all__ = ["SingleLink"]


class SingleLink(NetworkClusterer):
    """Single-Link hierarchical clustering of objects on a spatial network.

    Parameters
    ----------
    network:
        Network backend (in-memory or disk-backed).
    points:
        The objects to cluster.
    delta:
        The δ pre-merge threshold (0 disables the heuristic): object pairs
        within network distance δ are merged silently before the dendrogram
        starts, shrinking the recorded hierarchy.
    stop_k:
        When given, :meth:`run` returns the flat clustering with ``stop_k``
        clusters ("the user may opt to stop the algorithm after a desired
        number of k clusters have been discovered").
    stop_distance:
        When given, :meth:`run` cuts the dendrogram at this merge distance
        instead (a Single-Link stopped at ε reproduces ε-Link, Section 5.1).

    Use :meth:`build_dendrogram` for the full hierarchy.
    """

    algorithm_name = "single-link"

    def __init__(
        self,
        network,
        points: PointSet,
        delta: float = 0.0,
        stop_k: int | None = None,
        stop_distance: float | None = None,
        budget=None,
        check_connectivity: bool | None = None,
        checkpoint=None,
        resume: dict | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(
            network, points, budget=budget, check_connectivity=check_connectivity,
            checkpoint=checkpoint, resume=resume, backend=backend,
        )
        if delta < 0:
            raise ParameterError(f"delta must be non-negative, got {delta!r}")
        if stop_k is not None and stop_k < 1:
            raise ParameterError(f"stop_k must be >= 1, got {stop_k!r}")
        if stop_k is not None and stop_distance is not None:
            raise ParameterError("give at most one of stop_k / stop_distance")
        self.delta = float(delta)
        self.stop_k = stop_k
        self.stop_distance = stop_distance
        #: Traversal statistics of the most recent build (see
        #: :meth:`build_dendrogram`).
        self.last_stats: dict = {}

    # ------------------------------------------------------------------
    def build_dendrogram(self) -> Dendrogram:
        """Compute the full single-link dendrogram.

        Traversal statistics of the run (settled vertices, candidate pairs,
        initial cluster count under δ) are kept in :attr:`last_stats`.

        Checkpointing is phase-structured: a forced snapshot right after the
        (expensive) Voronoi/bridge traversal, then a tick per examined
        Kruskal bridge.  A crash *during* the traversal replays it whole —
        its outputs are pure functions of the inputs — while a crash during
        Kruskal resumes from the last snapshotted union-find state.
        """
        resume = self._take_resume_state()
        if resume is None:
            bridges, stats = self._bridges()
            self._live = {
                "phase": "bridges_done",
                "bridges": bridges,
                "stats": stats,
            }
            self._ckpt_save()
        else:
            bridges = [
                (w, a, b) for w, a, b in (tuple(t) for t in resume["bridges"])
            ]
            stats = dict(resume["stats"])
            self._live = {
                "phase": resume["phase"],
                "bridges": bridges,
                "stats": stats,
            }
        return self._kruskal(bridges, stats, resume)

    def _cluster(self) -> ClusteringResult:
        dendrogram = self.build_dendrogram()
        if self.stop_distance is not None:
            result = dendrogram.cut_distance(self.stop_distance)
        elif self.stop_k is not None:
            result = dendrogram.cut_k(self.stop_k)
        else:
            result = dendrogram.cut_k(1)
        result.params.update(delta=self.delta)
        result.stats.update(self.last_stats)
        result.stats.update(
            dendrogram_leaves=dendrogram.num_leaves,
            dendrogram_merges=len(dendrogram.merges),
        )
        return result

    # ------------------------------------------------------------------
    # Phase 1+2: network Voronoi and bridge collection
    # ------------------------------------------------------------------
    def _bridges(self) -> tuple[list[tuple[float, int, int]], dict]:
        """Cheapest connecting path per adjacent object pair.

        Returns bridge triples ``(weight, pid_a, pid_b)`` and traversal
        statistics.
        """
        aug = AugmentedView(self.network, self.points)
        seeds = [(0.0, point_vertex(p.point_id), p.point_id) for p in self.points]
        # Phase 1: the network Voronoi diagram of the objects.
        with _span("singlelink.voronoi"):
            dist, owner = multi_source(aug, seeds)

        # Phase 2: cheapest bridge per adjacent owner pair.
        with _span("singlelink.bridges"):
            best: dict[tuple[int, int], float] = {}
            vertices = [node_vertex(n) for n in self.network.nodes()]
            vertices.extend(point_vertex(p.point_id) for p in self.points)
            for vertex in vertices:
                dv = dist.get(vertex)
                if dv is None:
                    continue  # vertex in a component without objects
                ov = owner[vertex]
                for nbr, seg in aug.neighbors(vertex):
                    du = dist.get(nbr)
                    if du is None:
                        continue
                    ou = owner[nbr]
                    if ou == ov:
                        continue
                    pair = (ov, ou) if ov < ou else (ou, ov)
                    weight = dv + seg + du
                    if weight < best.get(pair, float("inf")):
                        best[pair] = weight
            bridges = sorted((w, a, b) for (a, b), w in best.items())
        stats = {
            "vertices_settled": len(dist),
            "candidate_pairs": len(bridges),
        }
        if _OBS.enabled:
            _obs_add("singlelink.vertices_settled", len(dist))
            _obs_add("singlelink.candidate_pairs", len(bridges))
        return bridges, stats

    # ------------------------------------------------------------------
    # Phase 3: Kruskal with the delta heuristic
    # ------------------------------------------------------------------
    def _kruskal(
        self,
        bridges: list[tuple[float, int, int]],
        stats: dict,
        resume: dict | None = None,
    ) -> Dendrogram:
        with _span("singlelink.kruskal"):
            return self._kruskal_inner(bridges, stats, resume)

    def _kruskal_inner(
        self,
        bridges: list[tuple[float, int, int]],
        stats: dict,
        resume: dict | None = None,
    ) -> Dendrogram:
        point_ids = sorted(self.points.point_ids())
        uf = UnionFind(point_ids)

        if resume is not None and resume["phase"] == "kruskal":
            uf._parent = {int(k): v for k, v in resume["uf_parent"].items()}
            uf._size = {int(k): v for k, v in resume["uf_size"].items()}
            uf.num_sets = resume["uf_num_sets"]
            split = resume["split"]
            leaf_members = [list(m) for m in resume["leaf_members"]]
            cluster_of_root = {
                int(k): v for k, v in resume["cluster_of_root"].items()
            }
            merges = [Merge(*row) for row in resume["merges"]]
            next_id = resume["next_id"]
            cursor = resume["cursor"]
            stats["initial_clusters"] = len(leaf_members)
            stats["premerged_pairs"] = split
        else:
            # Delta pre-merge phase: apply cheap merges without recording
            # them (Section 4.4.2 -- "we immediately merge points whose
            # distance is at most delta ... we lose the first merges of the
            # dendrogram").
            split = 0
            if self.delta > 0:
                while split < len(bridges) and bridges[split][0] <= self.delta:
                    _, a, b = bridges[split]
                    uf.union(a, b)
                    split += 1

            # Leaves: current components of the pre-merge graph.
            leaf_of: dict[int, int] = {}
            leaf_members = []
            for root, members in sorted(
                uf.sets().items(), key=lambda kv: kv[1][0]
            ):
                leaf_of[root] = len(leaf_members)
                leaf_members.append(members)
            stats["initial_clusters"] = len(leaf_members)
            stats["premerged_pairs"] = split

            # Recorded merge phase.
            cluster_of_root = {root: leaf_of[root] for root in leaf_of}
            merges = []
            next_id = len(leaf_members)
            cursor = split

        if self.checkpoint is not None:
            self._live.update(
                phase="kruskal",
                uf=uf,
                split=split,
                leaf_members=leaf_members,
                cluster_of_root=cluster_of_root,
                merges=merges,
            )
        for cursor in range(cursor, len(bridges)):
            if _RES.engaged:
                _res_check("singlelink.kruskal", partial=merges)
            weight, a, b = bridges[cursor]
            ra, rb = uf.find(a), uf.find(b)
            if ra != rb:
                left = cluster_of_root.pop(ra)
                right = cluster_of_root.pop(rb)
                uf.union(a, b)
                new_root = uf.find(a)
                cluster_of_root[new_root] = next_id
                merges.append(
                    Merge(
                        distance=weight,
                        left=left,
                        right=right,
                        merged=next_id,
                        size=uf.set_size(a),
                    )
                )
                next_id += 1
            if self.checkpoint is not None:
                self._live.update(cursor=cursor + 1, next_id=next_id)
                self._ckpt_tick()

        self.last_stats = stats
        if _OBS.enabled:
            _obs_add("singlelink.premerged_pairs", split)
            _obs_add("singlelink.recorded_merges", len(merges))
            _obs_add("singlelink.initial_clusters", len(leaf_members))
        return Dendrogram(leaf_members, merges, premerge_distance=self.delta)

    def _checkpoint_state(self) -> dict:
        live = self._live
        state = {
            "phase": live["phase"],
            "bridges": [list(b) for b in live["bridges"]],
            "stats": live["stats"],
        }
        if live["phase"] == "kruskal":
            uf = live["uf"]
            state.update(
                uf_parent=uf._parent,
                uf_size=uf._size,
                uf_num_sets=uf.num_sets,
                split=live["split"],
                leaf_members=live["leaf_members"],
                cluster_of_root=live["cluster_of_root"],
                merges=[
                    [m.distance, m.left, m.right, m.merged, m.size]
                    for m in live["merges"]
                ],
                next_id=live["next_id"],
                cursor=live["cursor"],
            )
        return state
