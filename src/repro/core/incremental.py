"""Incremental maintenance of an ε-Link clustering.

A location-based service rarely re-clusters from scratch: restaurants open
and close one at a time.  Because ε-Link's clusters are exactly the
connected components of the ≤ε network-distance graph, they can be
maintained under updates:

* **insert** — one network range query around the new object; it joins the
  (union of the) clusters it can reach within ε, possibly bridging several
  into one.  Cost: one localized expansion.
* **remove** — deleting an object can *split* its cluster (it may have been
  the bridge), so the affected component — and only it — is re-clustered by
  local expansions; every other cluster is untouched.

The maintained clustering is always identical to running
:class:`~repro.core.epslink.EpsLink` from scratch on the current point set
(a tested invariant).
"""

from __future__ import annotations

from repro.core.epslink import EpsLink
from repro.core.result import ClusteringResult
from repro.core.unionfind import UnionFind
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.network.augmented import AugmentedView
from repro.network.points import NetworkPoint, PointSet
from repro.network.queries import range_query

__all__ = ["IncrementalEpsLink"]


class IncrementalEpsLink:
    """An ε-Link clustering maintained under insertions and deletions.

    Parameters
    ----------
    network:
        The (static) network the objects live on.
    eps:
        Chaining radius, as in :class:`~repro.core.epslink.EpsLink`.
    min_sup:
        Minimum cluster size below which clusters are reported as noise
        (applied at :meth:`result` time, so it never interferes with
        maintenance).

    Examples
    --------
    >>> from repro import SpatialNetwork
    >>> net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
    >>> live = IncrementalEpsLink(net, eps=1.0)
    >>> a = live.insert(1, 2, 1.0)
    >>> b = live.insert(1, 2, 3.0)
    >>> live.num_clusters
    2
    >>> bridge = live.insert(1, 2, 2.0)   # links a and b
    >>> live.num_clusters
    1
    >>> live.remove(bridge.point_id)      # the split is detected
    >>> live.num_clusters
    2
    """

    def __init__(self, network, eps: float, min_sup: int = 1) -> None:
        if eps <= 0:
            raise ParameterError(f"eps must be positive, got {eps!r}")
        if min_sup < 1:
            raise ParameterError(f"min_sup must be >= 1, got {min_sup!r}")
        self.network = network
        self.eps = float(eps)
        self.min_sup = int(min_sup)
        self._points = PointSet(network)
        self._uf = UnionFind()

    # ------------------------------------------------------------------
    @property
    def points(self) -> PointSet:
        """The live point set (treat as read-only; mutate via this class)."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    @property
    def num_clusters(self) -> int:
        """Current component count (min_sup not applied)."""
        return self._uf.num_sets

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(
        self,
        u: int,
        v: int,
        offset: float,
        point_id: int | None = None,
        label: int | None = None,
    ) -> NetworkPoint:
        """Add an object; it joins/bridges every cluster within ε."""
        point = self._points.add(u, v, offset, point_id=point_id, label=label)
        self._uf.add(point.point_id)
        aug = AugmentedView(self.network, self._points)
        for neighbor, _ in range_query(aug, point, self.eps, include_query=False):
            self._uf.union(point.point_id, neighbor.point_id)
        return point

    def remove(self, point_id: int) -> None:
        """Delete an object, re-clustering (only) its component."""
        self._points.get(point_id)  # raises PointNotFoundError when absent
        root = self._uf.find(point_id)
        affected = [pid for pid in self._component_members(root) if pid != point_id]
        self._points.remove(point_id)
        # Rebuild the union-find: untouched components keep their unions,
        # the affected component is re-linked by local expansions.
        rebuilt = UnionFind(self._points.point_ids())
        for comp_root, members in self._uf.sets().items():
            if comp_root == root:
                continue
            for other in members[1:]:
                rebuilt.union(members[0], other)
        self._uf = rebuilt
        self._relink(affected)

    def _component_members(self, root) -> list[int]:
        return self._uf.sets().get(root, [])

    def _relink(self, affected: list[int]) -> None:
        """Re-discover the ≤ε components among the affected points.

        Uses ε-Link's expansion machinery seeded only inside the affected
        set; the expansions cannot reach any other cluster (they are farther
        than ε by definition of components), so the rest of the clustering
        is provably unchanged.
        """
        if not affected:
            return
        aug = AugmentedView(self.network, self._points)
        helper = EpsLink(self.network, self._points, eps=self.eps)
        seen: set[int] = set()
        for seed in affected:
            if seed in seen:
                continue
            members, _ = helper._expand_cluster(aug, seed, {})
            seen |= members
            first = next(iter(members))
            for other in members:
                self._uf.union(first, other)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def result(self) -> ClusteringResult:
        """The current flat clustering (labels are arbitrary but stable
        within one call; min_sup demotes small clusters to noise)."""
        assignment: dict[int, int] = {}
        label_of_root: dict = {}
        sizes: dict[int, int] = {}
        for pid in self._points.point_ids():
            root = self._uf.find(pid)
            label = label_of_root.setdefault(root, len(label_of_root))
            assignment[pid] = label
            sizes[label] = sizes.get(label, 0) + 1
        if self.min_sup > 1:
            for pid, label in assignment.items():
                if sizes[label] < self.min_sup:
                    assignment[pid] = NOISE
        return ClusteringResult(
            assignment,
            algorithm="incremental-eps-link",
            params={"eps": self.eps, "min_sup": self.min_sup},
            stats={"points": len(self._points)},
        )
