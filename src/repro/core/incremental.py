"""Incremental maintenance of an ε-Link clustering.

A location-based service rarely re-clusters from scratch: restaurants open
and close one at a time.  Because ε-Link's clusters are exactly the
connected components of the ≤ε network-distance graph, they can be
maintained under updates:

* **insert** — one network range query around the new object; it joins the
  (union of the) clusters it can reach within ε, possibly bridging several
  into one.  Cost: one localized expansion.
* **remove** — deleting an object can *split* its cluster (it may have been
  the bridge), so the affected component — and only it — is re-clustered by
  local expansions; every other cluster is untouched.
* **reweigh** — an edge's traversal cost changes (traffic).  Links can
  appear or vanish only between points within ε of the edge: the objects
  on the edge itself plus everything within ε of either endpoint, in the
  old *or* the new network.  Those points' components — and only those —
  are re-linked; objects on the edge keep their relative position (offsets
  rescale by ``new/old``).

The maintained clustering is always identical to running
:class:`~repro.core.epslink.EpsLink` from scratch on the current point set
(a tested invariant).
"""

from __future__ import annotations

import heapq
import math

from repro.core.epslink import EpsLink
from repro.core.result import ClusteringResult
from repro.core.unionfind import UnionFind
from repro.eval.metrics import NOISE
from repro.exceptions import InvalidWeightError, ParameterError
from repro.network.augmented import POINT, AugmentedView, node_vertex
from repro.network.points import NetworkPoint, PointSet
from repro.network.queries import range_query

__all__ = ["IncrementalEpsLink"]


class IncrementalEpsLink:
    """An ε-Link clustering maintained under insertions and deletions.

    Parameters
    ----------
    network:
        The (static) network the objects live on.
    eps:
        Chaining radius, as in :class:`~repro.core.epslink.EpsLink`.
    min_sup:
        Minimum cluster size below which clusters are reported as noise
        (applied at :meth:`result` time, so it never interferes with
        maintenance).
    points:
        An existing :class:`~repro.network.points.PointSet` to *adopt*
        (the live serve tier passes its served set so mutations maintain
        the world queries run against).  The initial clustering is
        derived from it; omitted, maintenance starts from an empty set.

    Examples
    --------
    >>> from repro import SpatialNetwork
    >>> net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
    >>> live = IncrementalEpsLink(net, eps=1.0)
    >>> a = live.insert(1, 2, 1.0)
    >>> b = live.insert(1, 2, 3.0)
    >>> live.num_clusters
    2
    >>> bridge = live.insert(1, 2, 2.0)   # links a and b
    >>> live.num_clusters
    1
    >>> live.remove(bridge.point_id)      # the split is detected
    >>> live.num_clusters
    2
    """

    def __init__(self, network, eps: float, min_sup: int = 1,
                 points: PointSet | None = None) -> None:
        if eps <= 0:
            raise ParameterError(f"eps must be positive, got {eps!r}")
        if min_sup < 1:
            raise ParameterError(f"min_sup must be >= 1, got {min_sup!r}")
        self.network = network
        self.eps = float(eps)
        self.min_sup = int(min_sup)
        self._points = PointSet(network) if points is None else points
        self._uf = UnionFind(self._points.point_ids())
        #: Point ids whose cluster membership the last update *may* have
        #: changed — the precise invalidation region for downstream
        #: distance caches.
        self.last_affected: set[int] = set()
        if points is not None and len(self._points):
            self._relink(list(self._points.point_ids()))

    # ------------------------------------------------------------------
    @property
    def points(self) -> PointSet:
        """The live point set (treat as read-only; mutate via this class)."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    @property
    def num_clusters(self) -> int:
        """Current component count (min_sup not applied)."""
        return self._uf.num_sets

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(
        self,
        u: int,
        v: int,
        offset: float,
        point_id: int | None = None,
        label: int | None = None,
    ) -> NetworkPoint:
        """Add an object; it joins/bridges every cluster within ε."""
        point = self._points.add(u, v, offset, point_id=point_id, label=label)
        self._uf.add(point.point_id)
        affected = {point.point_id}
        aug = AugmentedView(self.network, self._points)
        for neighbor, _ in range_query(aug, point, self.eps, include_query=False):
            self._uf.union(point.point_id, neighbor.point_id)
            affected.add(neighbor.point_id)
        self.last_affected = affected
        return point

    def remove(self, point_id: int) -> None:
        """Delete an object, re-clustering (only) its component."""
        self._points.get(point_id)  # raises PointNotFoundError when absent
        root = self._uf.find(point_id)
        affected = [pid for pid in self._component_members(root) if pid != point_id]
        self.last_affected = set(affected) | {point_id}
        self._points.remove(point_id)
        # Rebuild the union-find: untouched components keep their unions,
        # the affected component is re-linked by local expansions.
        rebuilt = UnionFind(self._points.point_ids())
        for comp_root, members in self._uf.sets().items():
            if comp_root == root:
                continue
            for other in members[1:]:
                rebuilt.union(members[0], other)
        self._uf = rebuilt
        self._relink(affected)

    def reweigh(self, u: int, v: int, weight: float) -> None:
        """Change an edge's traversal cost, re-linking only what can move.

        A ≤ε link can appear or vanish under a reweigh only if its
        witness path crosses the edge, which puts both endpoints of the
        link within ε of the edge — i.e. among the objects *on* the edge
        or within ε of either endpoint node, measured in the old or the
        new network.  Those points' whole components are re-linked (a
        vanished link can split a component anywhere inside it); every
        other component is provably unchanged.  Objects on the edge keep
        their relative position: offsets rescale by ``weight / old``.
        """
        if not (isinstance(weight, (int, float)) and math.isfinite(weight)
                and weight > 0):
            raise InvalidWeightError(
                f"edge weight must be a positive finite number, "
                f"got {weight!r}"
            )
        old = self.network.edge_weight(u, v)  # raises EdgeNotFoundError
        on_edge = list(self._points.points_on_edge(u, v))
        affected: set[int] = {p.point_id for p in on_edge}
        # Range in the OLD network: links that may vanish.
        affected |= self._points_within_eps_of_node(u)
        affected |= self._points_within_eps_of_node(v)
        for p in on_edge:
            self._points.remove(p.point_id)
        self.network.add_edge(u, v, float(weight))  # re-add replaces weight
        for p in on_edge:
            # points_on_edge offsets are canonical (from the smaller
            # endpoint), so re-adding with (p.u, p.v) keeps orientation.
            self._points.add(
                p.u, p.v, p.offset / old * float(weight),
                point_id=p.point_id, label=p.label,
            )
        # Range in the NEW network: links that may appear.
        affected |= self._points_within_eps_of_node(u)
        affected |= self._points_within_eps_of_node(v)
        # Expand to whole components: a vanished link can split a
        # component at any depth, so everything reachable from an
        # affected point must be re-discovered.
        members: set[int] = set()
        roots = {self._uf.find(pid) for pid in affected}
        for comp_root, comp in self._uf.sets().items():
            if comp_root in roots:
                members.update(comp)
        self.last_affected = members
        rebuilt = UnionFind(self._points.point_ids())
        for comp_root, comp in self._uf.sets().items():
            if comp_root in roots:
                continue
            for other in comp[1:]:
                rebuilt.union(comp[0], other)
        self._uf = rebuilt
        self._relink(sorted(members))

    def _points_within_eps_of_node(self, node: int) -> set[int]:
        """Ids of objects within ε network distance of ``node``."""
        aug = AugmentedView(self.network, self._points)
        start = node_vertex(node)
        dist: dict = {start: 0.0}
        heap: list[tuple[float, tuple[int, int]]] = [(0.0, start)]
        found: set[int] = set()
        while heap:
            d, vertex = heapq.heappop(heap)
            if d > dist.get(vertex, math.inf):
                continue
            if vertex[0] == POINT:
                found.add(vertex[1])
            for nbr, seg in aug.neighbors(vertex):
                nd = d + seg
                if nd <= self.eps and nd < dist.get(nbr, math.inf):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        return found

    def _component_members(self, root) -> list[int]:
        return self._uf.sets().get(root, [])

    def _relink(self, affected: list[int]) -> None:
        """Re-discover the ≤ε components among the affected points.

        Uses ε-Link's expansion machinery seeded only inside the affected
        set; the expansions cannot reach any other cluster (they are farther
        than ε by definition of components), so the rest of the clustering
        is provably unchanged.
        """
        if not affected:
            return
        aug = AugmentedView(self.network, self._points)
        helper = EpsLink(self.network, self._points, eps=self.eps)
        seen: set[int] = set()
        for seed in affected:
            if seed in seen:
                continue
            members, _ = helper._expand_cluster(aug, seed, {})
            seen |= members
            first = next(iter(members))
            for other in members:
                self._uf.union(first, other)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def result(self) -> ClusteringResult:
        """The current flat clustering (labels are arbitrary but stable
        within one call; min_sup demotes small clusters to noise)."""
        assignment: dict[int, int] = {}
        label_of_root: dict = {}
        sizes: dict[int, int] = {}
        for pid in self._points.point_ids():
            root = self._uf.find(pid)
            label = label_of_root.setdefault(root, len(label_of_root))
            assignment[pid] = label
            sizes[label] = sizes.get(label, 0) + 1
        if self.min_sup > 1:
            for pid, label in assignment.items():
                if sizes[label] < self.min_sup:
                    assignment[pid] = NOISE
        return ClusteringResult(
            assignment,
            algorithm="incremental-eps-link",
            params={"eps": self.eps, "min_sup": self.min_sup},
            stats={"points": len(self._points)},
        )
