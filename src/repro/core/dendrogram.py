"""Dendrogram: the merge hierarchy produced by Single-Link.

A dendrogram starts from *leaves* (each holding one or more point ids — more
than one when the δ pre-merge heuristic of Section 4.4.2 collapsed nearby
points) and applies a sequence of merges in non-decreasing distance order.
Leaf clusters carry ids ``0 .. L-1``; each merge creates a new cluster id
``L, L+1, ...``.

Besides the usual cuts (:meth:`Dendrogram.cut_k`,
:meth:`Dendrogram.cut_distance`), the class implements the paper's Section
5.3 *interesting level* detection: maintain the running average of the
differences between consecutive merge distances and flag a merge whose
distance jumps "significantly larger than the average" — those levels
correspond to natural clusterings (the sharpest one occurring when the
merge distance reaches ε, i.e. when the original clusters have just been
discovered; Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import ClusteringResult
from repro.exceptions import ParameterError, TreeError

__all__ = ["Merge", "Dendrogram"]


@dataclass(frozen=True)
class Merge:
    """One agglomeration step: clusters ``left`` and ``right`` merge at
    ``distance`` into new cluster ``merged`` holding ``size`` points."""

    distance: float
    left: int
    right: int
    merged: int
    size: int


class Dendrogram:
    """The full merge history of a hierarchical clustering.

    Parameters
    ----------
    leaf_members:
        ``leaf_members[i]`` is the list of point ids of leaf cluster ``i``.
        Singletons in the plain algorithm; larger groups under the δ
        heuristic.
    merges:
        Merges in non-decreasing distance order; cluster ids must refer to
        leaves or previously created merges, each used at most once.
    premerge_distance:
        The δ under which leaf groups were pre-merged (0 when disabled);
        recorded so that cuts below δ can be rejected as meaningless.
    """

    def __init__(
        self,
        leaf_members: list[list[int]],
        merges: list[Merge],
        premerge_distance: float = 0.0,
    ) -> None:
        self.leaf_members = [list(m) for m in leaf_members]
        self.merges = list(merges)
        self.premerge_distance = float(premerge_distance)
        self._validate()

    def _validate(self) -> None:
        n_leaves = len(self.leaf_members)
        if any(not members for members in self.leaf_members):
            raise TreeError("every leaf must hold at least one point")
        active = set(range(n_leaves))
        expected_id = n_leaves
        last_distance = -float("inf")
        for merge in self.merges:
            if merge.distance < last_distance - 1e-9:
                raise TreeError(
                    "merge distances must be non-decreasing "
                    f"({merge.distance} after {last_distance})"
                )
            last_distance = max(last_distance, merge.distance)
            if merge.left not in active or merge.right not in active:
                raise TreeError(
                    f"merge {merge.merged} references inactive cluster ids"
                )
            if merge.merged != expected_id:
                raise TreeError(
                    f"merge ids must be sequential; expected {expected_id}, "
                    f"got {merge.merged}"
                )
            active.discard(merge.left)
            active.discard(merge.right)
            active.add(merge.merged)
            expected_id += 1

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return len(self.leaf_members)

    @property
    def num_points(self) -> int:
        return sum(len(m) for m in self.leaf_members)

    @property
    def num_roots(self) -> int:
        """Clusters remaining after all merges (>1 for a disconnected
        forest)."""
        return self.num_leaves - len(self.merges)

    def merge_distances(self) -> list[float]:
        """The distances of all merges, in merge order (non-decreasing)."""
        return [m.distance for m in self.merges]

    # ------------------------------------------------------------------
    # Cuts
    # ------------------------------------------------------------------
    def _assignment_after(self, n_merges: int) -> dict[int, int]:
        """Flat point assignment after applying the first ``n_merges``."""
        n_leaves = self.num_leaves
        # cluster id -> representative leaf-ids set, tracked via parent map.
        parent = list(range(n_leaves + len(self.merges)))
        for merge in self.merges[:n_merges]:
            parent[merge.left] = merge.merged
            parent[merge.right] = merge.merged

        def find(c: int) -> int:
            while parent[c] != c:
                parent[c] = parent[parent[c]]
                c = parent[c]
            return c

        # Relabel roots densely for a tidy result.
        root_label: dict[int, int] = {}
        assignment: dict[int, int] = {}
        for leaf in range(n_leaves):
            root = find(leaf)
            label = root_label.setdefault(root, len(root_label))
            for pid in self.leaf_members[leaf]:
                assignment[pid] = label
        return assignment

    def cut_k(self, k: int) -> ClusteringResult:
        """The flat clustering with (at most) ``k`` clusters.

        Merges are applied until ``k`` clusters remain; when the hierarchy
        has more than ``k`` roots (disconnected data) all roots are
        returned.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k!r}")
        n_merges = max(0, min(len(self.merges), self.num_leaves - k))
        assignment = self._assignment_after(n_merges)
        return ClusteringResult(
            assignment,
            algorithm="single-link",
            params={"cut": "k", "k": k},
            stats={"merges_applied": n_merges},
        )

    def cut_distance(self, eps: float) -> ClusteringResult:
        """The flat clustering after applying all merges at distance <= eps.

        By the paper's Section 5.1 observation, on the same data this equals
        the ε-Link result with the same ε (for ε >= the δ pre-merge
        threshold).
        """
        if eps < self.premerge_distance:
            raise ParameterError(
                f"cut distance {eps} is below the pre-merge threshold "
                f"{self.premerge_distance}; those merges were not recorded"
            )
        n_merges = 0
        for merge in self.merges:
            if merge.distance <= eps:
                n_merges += 1
            else:
                break
        assignment = self._assignment_after(n_merges)
        return ClusteringResult(
            assignment,
            algorithm="single-link",
            params={"cut": "distance", "eps": eps},
            stats={"merges_applied": n_merges},
        )

    # ------------------------------------------------------------------
    # Interesting levels (Section 5.3)
    # ------------------------------------------------------------------
    def interesting_levels(
        self, window: int = 10, factor: float = 3.0
    ) -> list[int]:
        """Indices of merges whose distance jumps sharply (Section 5.3).

        Maintains the running average ``d_avg`` of the differences between
        the last ``window`` consecutive merge distances; merge ``i`` is
        flagged when ``d_i - d_{i-1} > factor * d_avg``.  Each flagged index
        marks an interesting clustering level: the flat clustering *just
        before* the flagged merge (``cut_k`` with the then-current cluster
        count) is a natural grouping.
        """
        if window < 1:
            raise ParameterError(f"window must be >= 1, got {window!r}")
        if factor <= 0:
            raise ParameterError(f"factor must be positive, got {factor!r}")
        distances = self.merge_distances()
        flagged: list[int] = []
        diffs: list[float] = []
        for i in range(1, len(distances)):
            jump = distances[i] - distances[i - 1]
            recent = diffs[-window:]
            if recent:
                avg = sum(recent) / len(recent)
                if avg > 0 and jump > factor * avg:
                    flagged.append(i)
            diffs.append(jump)
        return flagged

    def sharpest_levels(self, top: int = 3, window: int = 10) -> list[int]:
        """The ``top`` merge indices with the largest *relative* distance
        jumps, most significant first.

        A convenience over :meth:`interesting_levels` for the common "show
        me the few levels that matter" question: the paper's Figure 15
        highlights exactly three such instances.  Significance is the jump
        divided by the running average of the preceding ``window`` jumps.
        """
        if top < 1:
            raise ParameterError(f"top must be >= 1, got {top!r}")
        distances = self.merge_distances()
        scored: list[tuple[float, int]] = []
        diffs: list[float] = []
        for i in range(1, len(distances)):
            jump = distances[i] - distances[i - 1]
            recent = diffs[-window:]
            if recent:
                avg = sum(recent) / len(recent)
                if avg > 0:
                    scored.append((jump / avg, i))
            diffs.append(jump)
        scored.sort(reverse=True)
        return [i for _, i in scored[:top]]

    def clusters_before_merge(self, merge_index: int) -> ClusteringResult:
        """The flat clustering immediately before merge ``merge_index``.

        Used together with :meth:`interesting_levels` to "trace back the
        history of merges and recover the interesting clustering level".
        """
        if not 0 <= merge_index <= len(self.merges):
            raise ParameterError(
                f"merge_index must be in [0, {len(self.merges)}]"
            )
        assignment = self._assignment_after(merge_index)
        return ClusteringResult(
            assignment,
            algorithm="single-link",
            params={"cut": "before_merge", "merge_index": merge_index},
            stats={"merges_applied": merge_index},
        )

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able representation (see :meth:`from_dict`)."""
        return {
            "format": "repro-dendrogram",
            "version": 1,
            "premerge_distance": self.premerge_distance,
            "leaves": [list(m) for m in self.leaf_members],
            "merges": [
                [m.distance, m.left, m.right, m.merged, m.size]
                for m in self.merges
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Dendrogram":
        """Rebuild a dendrogram serialised with :meth:`to_dict`."""
        if doc.get("format") != "repro-dendrogram" or doc.get("version") != 1:
            raise TreeError("not a version-1 repro-dendrogram document")
        merges = [
            Merge(
                distance=float(d), left=int(left), right=int(right),
                merged=int(merged), size=int(size),
            )
            for d, left, right, merged, size in doc["merges"]
        ]
        return cls(
            [list(map(int, members)) for members in doc["leaves"]],
            merges,
            premerge_distance=float(doc.get("premerge_distance", 0.0)),
        )

    def to_linkage_matrix(self):
        """SciPy-style ``(n_merges, 4)`` linkage array.

        Columns: left cluster id, right cluster id, merge distance, merged
        size — directly consumable by ``scipy.cluster.hierarchy`` tooling
        when the dendrogram is a complete tree over singleton leaves.
        """
        import numpy as np

        out = np.empty((len(self.merges), 4), dtype=float)
        for i, merge in enumerate(self.merges):
            out[i] = (merge.left, merge.right, merge.distance, merge.size)
        return out

    def __repr__(self) -> str:
        return (
            f"Dendrogram(leaves={self.num_leaves}, merges={len(self.merges)}, "
            f"roots={self.num_roots}, premerge={self.premerge_distance:g})"
        )
