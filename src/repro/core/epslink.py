"""The ε-Link density-based clustering algorithm (paper Section 4.3.1).

ε-Link is the paper's fast density-based method for the ``MinPts = 2`` case:
two objects belong to the same cluster whenever their network distance is at
most ε ("the sufficient condition that two points are placed in the same
cluster is that their distance is at most ε").  A cluster is therefore a
maximal set of objects chainable through hops of length ≤ ε — the connected
components of the ε-thresholded network-distance graph — and the algorithm
discovers each component with one localized network expansion, visiting
"only the edges which contain the points or are within ε distance from some
point".

Implementation
--------------
For each yet-unclustered seed object the algorithm runs a Dijkstra-style
expansion over the point-augmented graph in which every object settled
within distance ε of the growing cluster *joins* the cluster and becomes a
fresh distance-0 source (the paper phrases this as "the shortest path for
every node now changes dynamically as new points are assigned in the
cluster").  Distance labels may therefore decrease after a vertex was first
reached; the expansion uses lazy re-relaxation, which remains correct for
non-negative segment lengths and terminates because every relaxation
strictly decreases a label.

An optional ``min_sup`` turns clusters smaller than the threshold into
outliers, as described in the paper.
"""

from __future__ import annotations

import heapq
import math

from repro.core.base import NetworkClusterer
from repro.core.result import ClusteringResult
from repro.eval.metrics import NOISE
from repro.exceptions import ParameterError
from repro.faults.core import STATE as _FAULTS, fire as _fault
from repro.resilience.deadline import STATE as _RES, check as _res_check
from repro.network.augmented import AugmentedView, POINT, point_vertex
from repro.network.points import PointSet
from repro.obs.core import STATE as _OBS, add as _obs_add, span as _span

__all__ = ["EpsLink", "EpsLinkEdgewise"]


class EpsLink(NetworkClusterer):
    """ε-Link clustering of objects on a spatial network.

    Parameters
    ----------
    network:
        Network backend (in-memory or disk-backed).
    points:
        The objects to cluster.
    eps:
        Chaining radius ε > 0: objects within network distance ε end up in
        the same cluster (transitively).
    min_sup:
        Optional minimum cluster size; smaller clusters are reported as
        outliers (label ``NOISE``).

    Examples
    --------
    >>> from repro import SpatialNetwork, PointSet
    >>> net = SpatialNetwork.from_edge_list([(1, 2, 10.0)])
    >>> pts = PointSet(net)
    >>> for off in (1.0, 1.5, 8.0, 8.4):
    ...     _ = pts.add(1, 2, off)
    >>> result = EpsLink(net, pts, eps=1.0).run()
    >>> sorted(sorted(c) for c in result.as_partition())
    [[0, 1], [2, 3]]
    """

    algorithm_name = "eps-link"

    def __init__(
        self,
        network,
        points: PointSet,
        eps: float,
        min_sup: int = 1,
        budget=None,
        check_connectivity: bool | None = None,
        checkpoint=None,
        resume: dict | None = None,
        accelerator=None,
        backend: str | None = None,
    ) -> None:
        super().__init__(
            network, points, budget=budget, check_connectivity=check_connectivity,
            checkpoint=checkpoint, resume=resume, backend=backend,
        )
        if eps <= 0:
            raise ParameterError(f"eps must be positive, got {eps!r}")
        if min_sup < 1:
            raise ParameterError(f"min_sup must be >= 1, got {min_sup!r}")
        self.eps = float(eps)
        self.min_sup = int(min_sup)
        #: Optional :class:`repro.perf.DistanceAccelerator`: its
        #: :meth:`~repro.perf.DistanceAccelerator.isolated_points`
        #: prefilter lets the sweep emit provably-singleton clusters
        #: without running their expansion.  Labels and assignment are
        #: identical with or without it.
        self.accelerator = accelerator

    # ------------------------------------------------------------------
    def _cluster(self) -> ClusteringResult:
        resume = self._take_resume_state()
        aug = AugmentedView(self.network, self.points)
        assignment: dict[int, int] = {}
        vertices_visited = 0
        next_label = 0
        if resume is not None:
            # The seed sweep naturally skips already-clustered points, so
            # resuming is just restoring the assignment and the counters;
            # a cluster whose growth was interrupted mid-expansion was not
            # yet committed to `assignment` and is simply regrown.
            assignment = {int(k): v for k, v in resume["assignment"].items()}
            vertices_visited = resume["vertices_visited"]
            next_label = resume["next_label"]
        self._live = {
            "assignment": assignment,
            "vertices_visited": vertices_visited,
            "next_label": next_label,
        }
        isolated: frozenset[int] = frozenset()
        if self.accelerator is not None:
            # Isolation w.r.t. the full point set implies isolation
            # w.r.t. the not-yet-clustered remainder, so the prefilter is
            # valid for every seed the sweep reaches.
            isolated = self.accelerator.isolated_points(self.eps)
        with _span("epslink.sweep"):
            for seed in self.points:
                if seed.point_id in assignment:
                    continue
                if seed.point_id in isolated:
                    # Provably no neighbour within eps: a singleton
                    # cluster, exactly what the expansion would return.
                    members, visited = {seed.point_id}, 0
                else:
                    members, visited = self._expand_cluster(
                        aug, seed.point_id, assignment
                    )
                vertices_visited += visited
                for pid in members:
                    assignment[pid] = next_label
                next_label += 1
                if self.checkpoint is not None:
                    self._live.update(
                        vertices_visited=vertices_visited,
                        next_label=next_label,
                    )
                    self._ckpt_tick()

        n_outliers = self._apply_min_sup(assignment)
        if _OBS.enabled:
            _obs_add("epslink.expansions", next_label)
            _obs_add("epslink.vertices_visited", vertices_visited)
            _obs_add("epslink.outliers", n_outliers)
        return ClusteringResult(
            assignment,
            algorithm=self.algorithm_name,
            params={"eps": self.eps, "min_sup": self.min_sup},
            stats={
                "clusters_before_min_sup": next_label,
                "outliers": n_outliers,
                "vertices_visited": vertices_visited,
            },
        )

    def _checkpoint_state(self) -> dict:
        return {
            "assignment": self._live["assignment"],
            "vertices_visited": self._live["vertices_visited"],
            "next_label": self._live["next_label"],
        }

    def _expand_cluster(
        self,
        aug: AugmentedView,
        seed_id: int,
        assignment: dict[int, int],
    ) -> tuple[set[int], int]:
        """Grow one cluster from ``seed_id``.

        Returns the member point ids and the number of vertex relaxations
        (a hardware-independent cost measure).
        """
        eps = self.eps
        members: set[int] = set()
        best: dict[tuple[int, int], float] = {}
        seed_vertex = point_vertex(seed_id)
        best[seed_vertex] = 0.0
        heap: list[tuple[float, tuple[int, int]]] = [(0.0, seed_vertex)]
        visited = 0
        guard = _FAULTS.engaged or _RES.engaged
        budget = _FAULTS.budget if guard else None
        while heap:
            d, vertex = heapq.heappop(heap)
            if d > best.get(vertex, float("inf")):
                continue  # stale entry superseded by a closer source
            if guard:
                if _FAULTS.engaged:
                    _fault("epslink.expand")
                if _RES.engaged:
                    _res_check("epslink.expand", partial=assignment)
                if budget is not None:
                    budget.spend_expansions(1, partial=assignment)
            visited += 1
            kind, ident = vertex
            if kind == POINT and ident not in members:
                # A new object within eps of the cluster: absorb it and make
                # it a fresh distance-0 source.
                members.add(ident)
                best[vertex] = 0.0
                d = 0.0
            for nbr, seg in aug.neighbors(vertex):
                nd = d + seg
                if nd <= eps and nd < best.get(nbr, float("inf")):
                    best[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        return members, visited

    def _apply_min_sup(self, assignment: dict[int, int]) -> int:
        """Demote clusters smaller than ``min_sup`` to noise; returns the
        number of points demoted."""
        if self.min_sup <= 1:
            return 0
        sizes: dict[int, int] = {}
        for label in assignment.values():
            sizes[label] = sizes.get(label, 0) + 1
        demoted = 0
        for pid, label in assignment.items():
            if sizes[label] < self.min_sup:
                assignment[pid] = NOISE
                demoted += 1
        return demoted


class EpsLinkEdgewise(EpsLink):
    """The paper-literal ε-Link traversal (Figure 6).

    Identical clusters to :class:`EpsLink` (a tested invariant), but
    organised exactly as the paper's pseudocode: a priority queue of
    *network nodes* keyed by their (dynamically shrinking) distance to the
    cluster — the ``NNdist`` array — with whole point groups scanned
    edge-by-edge as nodes are dequeued.  Nodes are re-enqueued whenever
    newly clustered points bring the cluster closer to them ("we enqueue
    n 2 again, since its distance from the cluster has decreased").

    This variant reads points in group order (the physical layout of the
    paper's points file), which is why the paper prefers it over the
    per-point range queries of DBSCAN on disk-resident data.
    """

    algorithm_name = "eps-link-edgewise"

    def _expand_cluster(
        self,
        aug: AugmentedView,
        seed_id: int,
        assignment: dict[int, int],
    ) -> tuple[set[int], int]:
        eps = self.eps
        network = self.network
        points = self.points
        members: set[int] = set()
        nn_dist: dict[int, float] = {}  # the paper's NNdist array
        heap: list[tuple[float, int]] = []
        visited = 0

        def scan_edge(node: int, nbr: int, entry: float) -> None:
            """Walk edge (node, nbr) from ``node``, whose distance to the
            cluster is ``entry``; cluster reachable points and enqueue
            improved endpoint distances (paper lines 16-37)."""
            nonlocal visited
            visited += 1
            weight = network.edge_weight(node, nbr)
            group = points.points_from(node, nbr)
            pos = 0.0
            ref = entry  # distance to the cluster standing at `pos`
            best_from_node = math.inf  # node's distance via this edge
            for p in group:
                t = p.offset if p.u == node else weight - p.offset
                ref += t - pos
                pos = t
                if p.point_id in members:
                    ref = 0.0
                elif ref <= eps:
                    members.add(p.point_id)
                    ref = 0.0
                if ref == 0.0 and math.isinf(best_from_node):
                    best_from_node = t  # nearest clustered point to `node`
            far = ref + (weight - pos)  # nbr's distance via this walk
            if far <= eps and far < nn_dist.get(nbr, math.inf):
                nn_dist[nbr] = far
                heapq.heappush(heap, (far, nbr))
            if best_from_node <= eps and best_from_node < nn_dist.get(node, math.inf):
                nn_dist[node] = best_from_node
                heapq.heappush(heap, (best_from_node, node))

        # Initialisation (paper lines 3-11): cluster outward from the seed
        # along its own edge, then enqueue the edge's endpoints.
        seed = points.get(seed_id)
        members.add(seed_id)
        for start_node in (seed.u, seed.v):
            other = seed.v if start_node == seed.u else seed.u
            scan_edge(start_node, other, math.inf)
        # Standing at the seed: both endpoints reachable directly.
        for node in (seed.u, seed.v):
            d = points.distance_to_node(seed, node)
            if d <= eps and d < nn_dist.get(node, math.inf):
                nn_dist[node] = d
                heapq.heappush(heap, (d, node))

        # Expansion (paper lines 12-37).
        guard = _FAULTS.engaged or _RES.engaged
        budget = _FAULTS.budget if guard else None
        while heap:
            d, node = heapq.heappop(heap)
            if d > nn_dist.get(node, math.inf):
                continue  # stale entry (paper line 14's freshness check)
            if guard:
                if _FAULTS.engaged:
                    _fault("epslink.expand")
                if _RES.engaged:
                    _res_check("epslink.expand", partial=assignment)
                if budget is not None:
                    budget.spend_expansions(1, partial=assignment)
            for nbr, _ in network.neighbors(node):
                scan_edge(node, nbr, d)
        return members, visited
