"""Disjoint-set (Union-Find) with the weighted-union heuristic.

The paper's Single-Link uses "the weighted-union heuristic of Union Find
[Cormen et al.]" for efficient merging of clusters; this implementation adds
path compression as well, giving near-constant amortised operations.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint sets over hashable items.

    >>> uf = UnionFind([1, 2, 3])
    >>> uf.union(1, 2)
    True
    >>> uf.connected(1, 2)
    True
    >>> uf.connected(1, 3)
    False
    >>> uf.num_sets
    2
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict = {}
        self._size: dict = {}
        self.num_sets = 0
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register an item as a singleton set (no-op when present)."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1
            self.num_sets += 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable):
        """Canonical representative of the set containing ``item``."""
        root = item
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``.

        Returns True when a merge happened, False when they already shared a
        set.  The smaller set is attached under the larger one (weighted
        union).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.num_sets -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        return self.find(a) == self.find(b)

    def set_size(self, item: Hashable) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def sets(self) -> dict:
        """Mapping ``representative -> sorted member list``."""
        out: dict = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        for members in out.values():
            members.sort()
        return out
